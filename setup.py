"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e .`` code path (setup.py develop), which is the only
editable-install mechanism available offline here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.8.0",
    description=(
        "DSSDDI: Decision Support System for Chronic Diseases Based on "
        "Drug-Drug Interactions (ICDE 2023) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": [
            # The experiment pipeline CLI; equivalently:
            #   python -m repro.pipeline
            "repro=repro.pipeline.cli:main",
            # The online serving gateway; equivalently:
            #   python -m repro.server
            "repro-serve=repro.server.cli:main",
        ]
    },
)
