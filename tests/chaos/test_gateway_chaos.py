"""Gateway resilience under injected faults: deadlines, breaker, shedding.

The acceptance bar from the hardening issue: under injected scoring
errors and latency, **no request ever sees a 500** — every failure mode
maps to an orderly 503 with a ``Retry-After`` hint — and the gateway
flips into (and back out of) explicit degraded mode that ``/healthz``
and ``/metrics`` report truthfully.
"""

import http.client
import time

import pytest

from repro import chaos
from repro.core.config import ServerConfig
from repro.server import GatewayApp, ModelRegistry, publish_artifact
from repro.server.http import build_server, serve_in_thread


@pytest.fixture(scope="module")
def model_root(fitted_system, tmp_path_factory):
    system, _pool = fitted_system
    root = tmp_path_factory.mktemp("gateway-chaos") / "models"
    publish_artifact(system, root)
    return root


def make_app(model_root, **overrides):
    defaults = dict(
        max_batch_size=8,
        max_wait_ms=1.0,
        breaker_threshold=3,
        breaker_cooldown_s=0.2,
    )
    defaults.update(overrides)
    config = ServerConfig(**defaults)
    return GatewayApp(ModelRegistry(model_root), config)


@pytest.fixture()
def app(model_root):
    with make_app(model_root) as app:
        yield app


def suggest_body(app, **extra):
    dim = app.registry.active().service.feature_dim
    body = {"features": [[0.0] * dim], "k": 3}
    body.update(extra)
    return body


class TestDeadlines:
    def test_injected_latency_expires_the_budget(self, app):
        with chaos.chaos("gateway.score=sleep:120"):
            status, body = app.suggest(suggest_body(app, deadline_ms=40))
        assert status == 503
        assert body["shed"] == "deadline"
        assert body["retry_after_s"] > 0
        assert (
            app.metrics.counters.value(
                "repro_server_shed_total", {"reason": "deadline"}
            )
            == 1
        )

    def test_generous_deadline_still_succeeds(self, app):
        status, body = app.suggest(suggest_body(app, deadline_ms=5000))
        assert status == 200
        assert len(body["suggestions"][0]) == 3

    def test_config_deadline_caps_body_deadline(self, model_root):
        with make_app(model_root, deadline_ms=40.0) as app:
            with chaos.chaos("gateway.score=sleep:120"):
                # The body asks for more than the deployment allows.
                status, body = app.suggest(suggest_body(app, deadline_ms=60000))
            assert status == 503
            assert body["shed"] == "deadline"
            assert "40 ms" in body["error"]

    @pytest.mark.parametrize("bad", ["soon", 0, -5])
    def test_invalid_body_deadline_is_a_client_error(self, app, bad):
        status, body = app.suggest(suggest_body(app, deadline_ms=bad))
        assert status == 400
        assert "deadline_ms" in body["error"]


class TestCircuitBreaker:
    def test_scoring_faults_trip_the_breaker_into_degraded_mode(self, app):
        with chaos.chaos("gateway.score=err"):
            statuses = [
                app.suggest(suggest_body(app))[0] for _ in range(5)
            ]
        assert set(statuses) == {503}
        assert app.degraded
        assert app.breaker.state != "closed"

        status, health = app.healthz()
        assert status == 200  # degraded still serves: don't kill the pod
        assert health["status"] == "degraded"
        assert health["breaker"] in ("open", "half-open")

        text = app.metrics_text()
        assert "repro_server_degraded 1" in text
        assert "repro_server_scoring_failures_total" in text
        assert "repro_server_breaker_opens_total 1" in text

    def test_open_breaker_sheds_without_touching_scoring(self, app):
        with chaos.chaos("gateway.score=err"):
            for _ in range(3):
                app.suggest(suggest_body(app))
        flushes_when_open = app.batcher.flushes
        status, body = app.suggest(suggest_body(app))
        assert status == 503
        assert body["shed"] == "breaker"
        assert body["retry_after_s"] > 0
        assert app.batcher.flushes == flushes_when_open  # shed pre-queue
        assert (
            app.metrics.counters.value(
                "repro_server_shed_total", {"reason": "breaker"}
            )
            == 1
        )

    def test_breaker_recovers_after_cooldown(self, app):
        with chaos.chaos("gateway.score=err#3"):
            for _ in range(3):
                assert app.suggest(suggest_body(app))[0] == 503
        assert app.degraded
        time.sleep(app.config.breaker_cooldown_s + 0.05)
        # Faults exhausted (#3): the half-open probe succeeds and closes
        # the circuit.
        status, body = app.suggest(suggest_body(app))
        assert status == 200
        assert not app.degraded
        assert app.healthz()[1]["status"] == "ok"
        assert "repro_server_degraded 0" in app.metrics_text()

    def test_zero_500s_under_flaky_scoring(self, app):
        """The headline invariant: seeded 50%-flaky scoring, breaker
        flapping, every single response is 200 or 503."""
        statuses = []
        with chaos.chaos("gateway.score=err@0.5", seed=42):
            for _ in range(60):
                statuses.append(app.suggest(suggest_body(app))[0])
                if app.degraded:
                    time.sleep(app.config.breaker_cooldown_s + 0.02)
        assert set(statuses) <= {200, 503}, sorted(set(statuses))
        assert 200 in statuses
        assert 503 in statuses


class TestQueueShedding:
    def test_full_queue_sheds_with_retry_hint(self, model_root, monkeypatch):
        with make_app(model_root, queue_limit=4) as app:
            monkeypatch.setattr(
                type(app.batcher), "queue_depth", property(lambda self: 4)
            )
            status, body = app.suggest(suggest_body(app))
            assert status == 503
            assert body["shed"] == "queue_full"
            assert body["retry_after_s"] > 0
            assert (
                app.metrics.counters.value(
                    "repro_server_shed_total", {"reason": "queue_full"}
                )
                == 1
            )


class TestRetryAfterHeader:
    def test_http_layer_promotes_the_hint_to_a_header(self, model_root):
        import json

        with make_app(model_root) as app:
            server = build_server(app, host="127.0.0.1", port=0)
            _thread, stop = serve_in_thread(server)
            try:
                host, port = server.server_address[:2]
                body = json.dumps(suggest_body(app))
                with chaos.chaos("gateway.score=err"):
                    response = payload = None
                    for _ in range(4):  # trip the breaker, then get shed
                        conn = http.client.HTTPConnection(host, port, timeout=10)
                        conn.request(
                            "POST", "/v1/suggest", body=body,
                            headers={"Content-Type": "application/json"},
                        )
                        response = conn.getresponse()
                        payload = json.loads(response.read())
                        conn.close()
                assert response.status == 503, payload
                header = response.getheader("Retry-After")
                assert header is not None
                assert float(header) == payload["retry_after_s"] > 0
            finally:
                stop()


class TestDrainingHealth:
    def test_draining_reports_503(self, app):
        assert app.healthz()[0] == 200
        app.draining = True
        status, health = app.healthz()
        assert status == 503
        assert health["status"] == "draining"
        assert "repro_server_draining 1" in app.metrics_text()
