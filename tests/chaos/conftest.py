"""Shared fixtures for the chaos suite: one tiny fitted system.

Mirrors ``tests/server/conftest.py`` at an even smaller scale — the
chaos tests exercise failure paths, not model quality, so the cheapest
fit that produces a loadable artifact is the right one.  Session scope
shares the fit across every module here.
"""

import pytest

from repro import chaos
from repro.core import DSSDDI, DSSDDIConfig, DDIGCNConfig, MDGCNConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features


@pytest.fixture(autouse=True)
def clean_chaos():
    """No chaos rule may leak between tests (or in from the outer env)."""
    chaos.reset()
    yield
    chaos.reset()


@pytest.fixture(scope="session")
def fitted_system():
    """(fitted DSSDDI, standardized held-out features) at toy scale."""
    cohort = generate_chronic_cohort(num_patients=100, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(100, seed=1)
    config = DSSDDIConfig(
        ddi=DDIGCNConfig(epochs=8, hidden_dim=12),
        md=MDGCNConfig(epochs=20, hidden_dim=12),
    )
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]
