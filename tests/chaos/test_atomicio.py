"""Atomic-write idiom under fire: SIGKILL at every failpoint.

The unit half checks the happy-path contracts (replace semantics,
orphan sweep, rename-to-trash deletion).  The crash half re-runs a
small writer in a *subprocess* with ``REPRO_CHAOS=<site>.<sub>=kill``
armed for each :data:`repro.chaos.WRITE_SUBPOINTS` stage and asserts
the invariant that justifies the whole module: after the kill, the
destination holds either the complete old value or the complete new
value — never a torn hybrid — and a sweep-and-retry converges.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import atomicio, chaos

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_child(code, chaos_spec=None, log_path=None):
    """Run ``code`` in a fresh interpreter; returns the CompletedProcess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop(chaos.ENV_VAR, None)
    if chaos_spec is not None:
        env[chaos.ENV_VAR] = chaos_spec
    if log_path is not None:
        env[chaos.LOG_ENV] = str(log_path)
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True,
        timeout=120,
    )


class TestAtomicWriteUnit:
    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomicio.atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp

    def test_replace_existing(self, tmp_path):
        path = tmp_path / "doc.json"
        atomicio.atomic_write_json(path, {"v": 1})
        atomicio.atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_durable_false_still_atomic(self, tmp_path):
        path = tmp_path / "stats.json"
        atomicio.atomic_write_json(path, {"n": 3}, durable=False)
        assert json.loads(path.read_text()) == {"n": 3}

    def test_writer_error_leaves_old_value(self, tmp_path):
        path = tmp_path / "doc.txt"
        atomicio.atomic_write_text(path, "old")
        with chaos.chaos("site.payload=err"):
            with pytest.raises(OSError):
                atomicio.atomic_write_text(path, "new", site="site")
        assert path.read_text() == "old"
        assert list(tmp_path.iterdir()) == [path]

    def test_enospc_at_fsync_leaves_old_value(self, tmp_path):
        path = tmp_path / "doc.txt"
        atomicio.atomic_write_text(path, "old")
        with chaos.chaos("site.fsync=enospc"):
            with pytest.raises(OSError) as excinfo:
                atomicio.atomic_write_text(path, "new", site="site")
        assert excinfo.value.errno == __import__("errno").ENOSPC
        assert path.read_text() == "old"

    def test_dir_writer_error_leaves_old_dir(self, tmp_path):
        target = tmp_path / "entry"

        def good(tmp):
            (tmp / "a.txt").write_text("v1")

        def bad(tmp):
            (tmp / "a.txt").write_text("v2")
            raise OSError("disk on fire")

        atomicio.atomic_write_dir(target, good)
        with pytest.raises(OSError):
            atomicio.atomic_write_dir(target, bad)
        assert (target / "a.txt").read_text() == "v1"
        assert list(tmp_path.iterdir()) == [target]

    def test_replace_dir_over_populated_destination(self, tmp_path):
        src = tmp_path / ".tmp-new"
        dst = tmp_path / "final"
        src.mkdir()
        (src / "f").write_text("new")
        dst.mkdir()
        (dst / "f").write_text("old")
        (dst / "extra").write_text("old-only")
        atomicio.replace_dir(src, dst)
        assert (dst / "f").read_text() == "new"
        assert not (dst / "extra").exists()
        assert not src.exists()

    def test_sweep_orphans(self, tmp_path):
        for name in (".tmp-abc", ".ckpt-x", ".old-y-1", ".publish-z"):
            (tmp_path / name).mkdir()
        (tmp_path / ".doc.json.tmp-99").write_text("torn")
        (tmp_path / ".trash-gone-1").mkdir()
        (tmp_path / "real").mkdir()
        removed = atomicio.sweep_orphans(tmp_path)
        assert removed == 6
        assert [p.name for p in tmp_path.iterdir()] == ["real"]

    def test_sweep_missing_dir_is_zero(self, tmp_path):
        assert atomicio.sweep_orphans(tmp_path / "nope") == 0

    def test_remove_dir_is_atomic_to_readers(self, tmp_path):
        target = tmp_path / "entry"
        target.mkdir()
        (target / "payload").write_text("x")
        assert atomicio.remove_dir(target) is True
        assert not target.exists()
        # Nothing half-deleted or dot-prefixed left behind.
        assert list(tmp_path.iterdir()) == []

    def test_remove_dir_missing_returns_false(self, tmp_path):
        assert atomicio.remove_dir(tmp_path / "never-existed") is False


WRITE_FILE_CHILD = """
from repro import atomicio
atomicio.atomic_write_text({path!r}, "NEW" * 1000, site="site")
"""

WRITE_DIR_CHILD = """
from pathlib import Path
from repro import atomicio

def writer(tmp):
    (tmp / "a.txt").write_text("NEW")
    (tmp / "b.txt").write_text("NEW")

atomicio.atomic_write_dir(Path({path!r}), writer, site="site")
"""


class TestKillAtEveryFailpoint:
    @pytest.mark.parametrize("subpoint", chaos.WRITE_SUBPOINTS)
    def test_file_write_survives_kill(self, tmp_path, subpoint):
        path = tmp_path / "doc.txt"
        atomicio.atomic_write_text(path, "OLD")
        log = tmp_path / "chaos.log"
        if subpoint == "payload":
            # The torn write: half the bytes land on disk, then SIGKILL.
            spec = "site.payload=partial:0.5"
        else:
            spec = f"site.{subpoint}=kill"
        result = run_child(
            WRITE_FILE_CHILD.format(path=str(path)), chaos_spec=spec,
            log_path=log,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        # The kill really happened at the armed failpoint.
        assert log.read_text().startswith(f"site.{subpoint} ")
        content = path.read_text()
        assert content in ("OLD", "NEW" * 1000), f"torn write visible: {content[:40]!r}"
        if subpoint in ("setup", "payload", "fsync", "rename"):
            assert content == "OLD"  # promotion never happened
        # Recovery: sweep the orphan, rewrite, converge.
        atomicio.sweep_orphans(tmp_path)
        atomicio.atomic_write_text(path, "NEW" * 1000, site="site")
        assert path.read_text() == "NEW" * 1000
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "chaos.log", "doc.txt",
        ]

    @pytest.mark.parametrize("subpoint", chaos.WRITE_SUBPOINTS)
    def test_dir_write_survives_kill(self, tmp_path, subpoint):
        target = tmp_path / "entry"

        def old_writer(tmp):
            (tmp / "a.txt").write_text("OLD")
            (tmp / "b.txt").write_text("OLD")

        atomicio.atomic_write_dir(target, old_writer)
        result = run_child(
            WRITE_DIR_CHILD.format(path=str(target)),
            chaos_spec=f"site.{subpoint}=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        # Invariant: both files agree — the entry is entirely old or
        # entirely new, never one of each.
        values = {(target / n).read_text() for n in ("a.txt", "b.txt")}
        assert len(values) == 1, f"hybrid directory state: {values}"
        # Recovery: sweep orphans and rewrite.
        atomicio.sweep_orphans(tmp_path)

        def new_writer(tmp):
            (tmp / "a.txt").write_text("NEW")
            (tmp / "b.txt").write_text("NEW")

        atomicio.atomic_write_dir(target, new_writer)
        assert (target / "a.txt").read_text() == "NEW"
        assert [p.name for p in tmp_path.iterdir()] == ["entry"]
