"""Stage cache under crashes: kills mid-store, corruption, racing deletes.

A cache whose entries can be half-written is worse than no cache: a
pipeline run would silently build on torn intermediate results.  These
tests kill a storing process at every ``cache.store.*`` failpoint and
assert the reader-side contract — ``contains``/``load`` report either a
complete entry or a clean miss, never a hybrid — plus the ``verify=True``
digest check and the rename-to-trash deletion that keeps concurrent
readers safe during ``prune``/``clear``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import atomicio, chaos
from repro.pipeline import StageCache
from repro.pipeline.cache import CacheIntegrityError, META_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]

STORE_CHILD = """
import numpy as np
from repro.pipeline import StageCache

cache = StageCache({root!r})
value = {{"m": np.arange(64, dtype=np.float64).reshape(8, 8)}}
cache.store("k-chaos", "chaos.stage", "npz", value)
"""


def run_store_child(root, chaos_spec, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env[chaos.ENV_VAR] = chaos_spec
    env[chaos.LOG_ENV] = str(log_path)
    return subprocess.run(
        [sys.executable, "-c", STORE_CHILD.format(root=str(root))],
        env=env, capture_output=True, text=True, timeout=120,
    )


class TestKillDuringStore:
    @pytest.mark.parametrize("subpoint", chaos.WRITE_SUBPOINTS)
    def test_kill_leaves_complete_entry_or_clean_miss(self, tmp_path, subpoint):
        cache = StageCache(tmp_path)
        log = tmp_path / "chaos.log"
        result = run_store_child(
            tmp_path, f"cache.store.{subpoint}=kill", log
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert log.read_text().startswith(f"cache.store.{subpoint} ")

        survivor = StageCache(tmp_path)
        if survivor.contains("k-chaos"):
            # Visible means complete: the value loads and verifies.
            value, entry = survivor.load("k-chaos", verify=True)
            np.testing.assert_array_equal(
                value["m"], np.arange(64, dtype=np.float64).reshape(8, 8)
            )
            assert entry.stage == "chaos.stage"
        else:
            with pytest.raises(KeyError):
                survivor.load("k-chaos")
        # Recovery converges: a re-store (which sweeps orphans first)
        # produces a loadable entry and no junk siblings.
        survivor.store(
            "k-chaos", "chaos.stage", "npz",
            {"m": np.arange(64, dtype=np.float64).reshape(8, 8)},
        )
        value, _entry = survivor.load("k-chaos", verify=True)
        np.testing.assert_array_equal(value["m"].ravel(), np.arange(64.0))
        stray = [
            p.name
            for p in survivor.stages_dir.iterdir()
            if p.name.startswith(".")
        ]
        assert stray == [], f"orphans survived recovery: {stray}"


class TestIntegrityVerification:
    def test_verify_catches_flipped_bits(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("k", "s", "json", {"x": 1})
        payload = cache.stages_dir / "k" / "data.json"
        payload.write_text(json.dumps({"x": 2}))  # bit rot
        loaded, _ = cache.load("k")  # unverified load can't tell
        assert loaded == {"x": 2}
        with pytest.raises(CacheIntegrityError):
            cache.load("k", verify=True)

    def test_verify_passes_on_intact_entry(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("k", "s", "json", [1, 2, 3])
        loaded, _ = cache.load("k", verify=True)
        assert loaded == [1, 2, 3]


class TestRenameToTrashDeletion:
    def test_trash_dirs_never_listed_as_entries(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("keep", "s", "json", 1)
        cache.store("gone", "s", "json", 2)
        # A crashed deleter's trash dir still holds a complete payload.
        gone = cache.stages_dir / "gone"
        os.replace(gone, cache.stages_dir / ".trash-gone-999")
        assert [e.key for e in cache.entries()] == ["keep"]
        assert not cache.contains("gone")
        with pytest.raises(KeyError):
            cache.load("gone")
        assert atomicio.sweep_orphans(cache.stages_dir) == 1

    def test_clear_never_exposes_half_deleted_entries(self, tmp_path):
        """Concurrent readers during clear() see full entries or misses.

        Before rename-to-trash, ``shutil.rmtree`` could delete an
        entry's payload before its meta.json — ``contains`` said hit,
        ``load`` blew up with an unexpected error.  Here a reader
        hammers the cache while another thread clears it; every load is
        either a complete verified value or a clean ``KeyError``.
        """
        cache = StageCache(tmp_path)
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            cache.store(key, "s", "npz", {"m": np.full((32, 32), 7.0)})

        failures = []
        stop = threading.Event()

        def reader():
            reader_cache = StageCache(tmp_path)
            while not stop.is_set():
                for key in keys:
                    try:
                        value, _ = reader_cache.load(key, verify=True)
                        if value["m"][0, 0] != 7.0:
                            failures.append((key, "bad value"))
                    except KeyError:
                        pass  # clean miss: entry fully deleted
                    except Exception as exc:  # half-visible entry
                        failures.append((key, repr(exc)))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            assert cache.clear() == len(keys)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert failures == [], failures[:5]
        assert cache.entries() == []

    def test_prune_uses_trash_deletion(self, tmp_path):
        cache = StageCache(tmp_path)
        for i in range(4):
            cache.store(f"k{i}", "same.stage", "json", i)
            # Distinct created_at ordering without sleeping: bump mtimes.
            meta_path = cache.stages_dir / f"k{i}" / META_NAME
            meta = json.loads(meta_path.read_text())
            meta["created_at"] = 1000.0 + i
            meta_path.write_text(json.dumps(meta))
        removed = cache.prune(keep_last=2)
        assert sorted(e.key for e in removed) == ["k0", "k1"]
        assert sorted(e.key for e in cache.entries()) == ["k2", "k3"]
        stray = [
            p.name for p in cache.stages_dir.iterdir() if p.name.startswith(".")
        ]
        assert stray == []
