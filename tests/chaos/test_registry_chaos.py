"""Registry under corruption and mid-publish races.

The failure the registry must absorb: a version directory that *looks*
published but cannot be served — torn ``arrays.npz``, a digest that no
longer matches the manifest, a publisher writing byte-by-byte without
the atomic rename.  The contract proved here:

* a corrupt version is **quarantined** — never served, never retried
  for the same bytes, never crashes the watcher;
* the registry falls back to the newest *loadable* version, keeping the
  last-known-good handle when nothing newer loads;
* a republish of fixed content (different digest) gets a fresh chance;
* ``scan_versions`` / ``maybe_reload`` tolerate a non-atomic publisher
  revealing a version one byte at a time (the satellite regression).
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import chaos
from repro.serving import ArtifactIntegrityError, verify_artifact
from repro.serving.artifact import ARRAYS_NAME, MANIFEST_NAME
from repro.server import ModelRegistry, NoModelError, publish_artifact, scan_versions

REPO_ROOT = Path(__file__).resolve().parents[2]


def corrupt_arrays(version_path: Path) -> None:
    """Silently alter array *values* (valid zip, wrong bytes).

    This models the corruption the per-array digests exist for: the
    file parses fine, the numbers are wrong.  (Raw byte-flips are caught
    even earlier, by the zip CRC — see the dedicated test below.)
    """
    import numpy as np

    arrays_path = version_path / ARRAYS_NAME
    with np.load(arrays_path) as loaded:
        arrays = {name: np.array(loaded[name]) for name in loaded.files}
    name = sorted(arrays)[0]
    flat = arrays[name].reshape(-1)
    flat[: min(8, flat.size)] += 1
    np.savez(arrays_path, **arrays)


def flip_raw_bytes(version_path: Path) -> None:
    """Flip bytes mid-file: the torn-write corruption the CRC catches."""
    arrays = version_path / ARRAYS_NAME
    blob = bytearray(arrays.read_bytes())
    middle = len(blob) // 2
    for i in range(middle, min(middle + 64, len(blob))):
        blob[i] ^= 0xFF
    arrays.write_bytes(bytes(blob))


@pytest.fixture()
def root(fitted_system, tmp_path):
    system, _pool = fitted_system
    root = tmp_path / "models"
    publish_artifact(system, root)
    return root


class TestQuarantine:
    def test_corrupt_newest_falls_back_to_older(self, fitted_system, root):
        system, _ = fitted_system
        good = scan_versions(root)[-1]
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)

        registry = ModelRegistry(root)
        swapped, serving = registry.reload()
        assert swapped is True
        assert serving.name == good.name
        assert registry.reload_errors == 1
        assert len(registry.quarantined) == 1
        key = next(iter(registry.quarantined))
        assert key.startswith(bad.name + "@")
        assert "ArtifactIntegrityError" in registry.quarantined[key]

    def test_quarantined_version_not_retried(self, fitted_system, root):
        system, _ = fitted_system
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)
        registry = ModelRegistry(root)
        registry.reload()
        errors_after_first = registry.reload_errors
        for _ in range(3):
            registry.reload()
        assert registry.reload_errors == errors_after_first

    def test_last_known_good_when_everything_newer_is_corrupt(
        self, fitted_system, root
    ):
        system, _ = fitted_system
        registry = ModelRegistry(root)
        registry.reload()
        active = registry.active().version
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)
        # The corrupt bytes also invalidate the older version? No — only
        # the new version is bad; but make the *good* one disappear too
        # so last-known-good is all that's left.
        for version in scan_versions(root):
            if version.name == active.name:
                corrupt_arrays(version.path)
        swapped, serving = registry.reload()
        assert swapped is False
        assert serving.name == active.name  # still serving from memory
        assert registry.active().version.name == active.name

    def test_no_model_when_nothing_loadable_and_nothing_active(
        self, fitted_system, root
    ):
        for version in scan_versions(root):
            corrupt_arrays(version.path)
        registry = ModelRegistry(root)
        with pytest.raises(NoModelError) as excinfo:
            registry.reload()
        assert "quarantined" in str(excinfo.value)

    def test_republished_fix_gets_fresh_chance(self, fitted_system, root):
        system, _ = fitted_system
        registry = ModelRegistry(root)
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)
        registry.reload()  # serves the good original, quarantines `bad`
        assert len(registry.quarantined) == 1
        # "Fix" the broken version in place: republish healthy content
        # under the same name (different digest => different key).
        import shutil

        source = registry.active().version.path
        shutil.rmtree(bad.path)
        shutil.copytree(source, bad.path)
        swapped, serving = registry.reload()
        assert swapped is True
        assert serving.name == bad.name
        # The broken content is gone from disk, so its quarantine entry
        # is pruned — /healthz reports a clean registry again.
        assert registry.quarantined == {}

    def test_corrupt_pin_is_not_replaced_by_fallback(self, fitted_system, root):
        system, _ = fitted_system
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)
        registry = ModelRegistry(root, pinned_version=bad.name)
        with pytest.raises(NoModelError):
            registry.reload()  # pinning means exactly that version
        assert not registry.has_model

    def test_watcher_survives_corrupt_publish(self, fitted_system, root):
        system, _ = fitted_system
        registry = ModelRegistry(root)
        registry.reload()
        bad = publish_artifact(system, root, reuse_identical=False)
        corrupt_arrays(bad.path)
        # maybe_reload is the watcher's body: it must not raise and must
        # keep the registry serving.
        assert registry.maybe_reload() is False
        assert registry.has_model
        assert registry.active().version.name != bad.name


class TestArtifactIntegrity:
    def test_verify_artifact_detects_corruption(self, fitted_system, root):
        version = scan_versions(root)[-1]
        verify_artifact(version.path)  # intact: no raise
        corrupt_arrays(version.path)
        with pytest.raises(ArtifactIntegrityError):
            verify_artifact(version.path)

    def test_corrupt_artifact_is_never_loadable(self, fitted_system, root):
        from repro.serving import SuggestionService

        version = scan_versions(root)[-1]
        corrupt_arrays(version.path)
        with pytest.raises(ArtifactIntegrityError):
            SuggestionService.load(version.path)

    def test_raw_byte_flip_also_caught(self, fitted_system, root):
        """Torn-write corruption (invalid zip) is caught even before the
        digest layer — by the zip CRC — and quarantined all the same."""
        from repro.serving import SuggestionService

        version = scan_versions(root)[-1]
        flip_raw_bytes(version.path)
        with pytest.raises(Exception):
            SuggestionService.load(version.path)
        registry = ModelRegistry(root)
        with pytest.raises(NoModelError):
            registry.reload()
        assert len(registry.quarantined) == 1

    def test_manifest_tamper_detected(self, fitted_system, root):
        import json

        version = scan_versions(root)[-1]
        manifest_path = version.path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        digests = manifest["array_digests"]
        name = sorted(digests)[0]
        digests[name] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError):
            verify_artifact(version.path)


class TestMidPublishRaces:
    def test_byte_by_byte_publish_never_breaks_the_watcher(
        self, fitted_system, root
    ):
        """The satellite regression: a non-atomic publisher that reveals
        a version one byte at a time must never crash ``scan_versions``
        or the watcher, never get served half-written, and must be
        picked up once complete.
        """
        source = scan_versions(root)[-1]
        registry = ModelRegistry(root)
        registry.reload()
        baseline = registry.active().version.name

        target = root / "v9999-deadbeef"
        target.mkdir()
        for name in (MANIFEST_NAME, ARRAYS_NAME):
            blob = (source.path / name).read_bytes()
            out = target / name
            # Byte-by-byte in coarse steps (true 1-byte steps on a
            # multi-MB npz would take minutes; 113 is coprime to typical
            # structure sizes so every probe sees a differently torn file).
            with open(out, "wb") as fh:
                for offset in range(0, len(blob), 113):
                    fh.write(blob[offset : offset + 113])
                    fh.flush()
                    if offset % (113 * 50) == 0:
                        scanned = scan_versions(root)  # must not raise
                        names = [v.name for v in scanned]
                        if name == MANIFEST_NAME:
                            # arrays.npz absent: not a complete artifact.
                            assert "v9999-deadbeef" not in names
                        registry.maybe_reload()  # must not raise either
                        assert registry.active().version.name == baseline
        # Publish complete: the next poll serves it (content equals the
        # source artifact, so it loads cleanly).
        swapped = registry.maybe_reload()
        assert swapped is True
        assert registry.active().version.name == "v9999-deadbeef"
        assert registry.quarantined == {}

    def test_kill_mid_publish_leaves_no_visible_version(self, root, tmp_path):
        """SIGKILL a publisher at every registry.publish failpoint: the
        root afterwards holds only complete versions (plus possibly the
        new one, if the kill came after promotion).
        """
        child = """
from repro.server import publish_artifact
publish_artifact({source!r}, {root!r}, reuse_identical=False)
"""
        source = scan_versions(root)[-1]
        for subpoint in chaos.WRITE_SUBPOINTS:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            env[chaos.ENV_VAR] = f"registry.publish.{subpoint}=kill"
            result = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    child.format(source=str(source.path), root=str(root)),
                ],
                env=env, capture_output=True, text=True, timeout=120,
            )
            assert result.returncode == -signal.SIGKILL, (subpoint, result.stderr)
            # Every scanned version is complete and servable.
            for version in scan_versions(root):
                verify_artifact(version.path)
        # A healthy publish still works afterwards (no junk blocks it).
        published = publish_artifact(
            str(source.path), root, reuse_identical=False
        )
        verify_artifact(published.path)
