"""The chaos harness itself: rule grammar, determinism, activation."""

import os

import pytest

from repro import chaos


@pytest.fixture(autouse=True)
def clean_chaos():
    chaos.reset()
    yield
    chaos.reset()


class TestParseSpec:
    def test_simple_rule(self):
        (rule,) = chaos.parse_spec("cache.store.rename=kill")
        assert rule.point == "cache.store.rename"
        assert rule.action == "kill"
        assert rule.prob == 1.0
        assert rule.limit is None

    def test_full_grammar(self):
        (rule,) = chaos.parse_spec("gateway.score=sleep:200@0.5#3")
        assert rule.action == "sleep"
        assert rule.arg == 200.0
        assert rule.prob == 0.5
        assert rule.limit == 3

    def test_multiple_rules(self):
        rules = chaos.parse_spec(
            "ckpt.save.fsync=enospc#2, stats.publish.rename=err@0.5"
        )
        assert [r.action for r in rules] == ["enospc", "err"]

    def test_prefix_match(self):
        (rule,) = chaos.parse_spec("cache.store.*=err")
        assert rule.matches("cache.store.payload")
        assert rule.matches("cache.store.rename")
        assert not rule.matches("ckpt.save.payload")

    @pytest.mark.parametrize(
        "bad",
        [
            "no-equals-sign",
            "point=",
            "=kill",
            "point=unknown-action",
            "point=err@nan-ish-text",
            "point=err@1.5",
            "point=err#two",
            "point=sleep:fast",
            "point=partial:1.0",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(chaos.ChaosSpecError):
            chaos.parse_spec(bad)

    def test_empty_chunks_skipped(self):
        assert chaos.parse_spec(" , ,") == []


class TestDeterminism:
    def _fire_pattern(self, seed):
        config = chaos.ChaosConfig(
            chaos.parse_spec("p=err@0.5"), seed=seed
        )
        return [config.pick("p") is not None for _ in range(64)]

    def test_same_seed_same_schedule(self):
        assert self._fire_pattern(7) == self._fire_pattern(7)

    def test_different_seed_different_schedule(self):
        assert self._fire_pattern(7) != self._fire_pattern(8)

    def test_limit_budget(self):
        config = chaos.ChaosConfig(chaos.parse_spec("p=err#2"))
        fires = [config.pick("p") is not None for _ in range(5)]
        assert fires == [True, True, False, False, False]


class TestActivation:
    def test_inactive_by_default(self):
        assert not chaos.active()
        chaos.failpoint("anything")  # no-op, must not raise

    def test_context_manager_arms_and_restores(self):
        with chaos.chaos("p=err"):
            assert chaos.active()
            with pytest.raises(OSError):
                chaos.failpoint("p")
        assert not chaos.active()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with chaos.chaos("p=err"):
                raise RuntimeError("boom")
        assert not chaos.active()

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "p=enospc")
        chaos.reset()
        assert chaos.active()
        with pytest.raises(OSError) as excinfo:
            chaos.failpoint("p")
        assert excinfo.value.errno == __import__("errno").ENOSPC

    def test_from_env_none_when_unset(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        assert chaos.ChaosConfig.from_env() is None

    def test_skip_fsync_only_affects_fsync_enabled(self):
        with chaos.chaos("p=skip-fsync"):
            chaos.failpoint("p")  # must not raise
            assert chaos.fsync_enabled("p") is False
        assert chaos.fsync_enabled("p") is True

    def test_partial_fraction(self):
        with chaos.chaos("p=partial:0.5"):
            assert chaos.partial_fraction("p") == 0.5
        assert chaos.partial_fraction("p") is None

    def test_hit_log(self, tmp_path):
        log = tmp_path / "chaos.log"
        with chaos.chaos("p=err", log_path=str(log)):
            with pytest.raises(OSError):
                chaos.failpoint("p")
        assert log.read_text().splitlines() == ["p err"]

    def test_sleep_injects_latency(self):
        import time

        with chaos.chaos("p=sleep:30"):
            start = time.monotonic()
            chaos.failpoint("p")
            assert time.monotonic() - start >= 0.025


class TestSiteRegistry:
    def test_known_sites_name_real_modules(self):
        import importlib

        for site, module_name in chaos.KNOWN_SITES.items():
            module = importlib.import_module(module_name)
            assert module is not None, site

    def test_write_subpoints_cover_the_idiom(self):
        assert chaos.WRITE_SUBPOINTS == (
            "setup", "payload", "fsync", "rename", "after",
        )
