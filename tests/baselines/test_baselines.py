"""Tests for all eight baseline recommenders."""

import numpy as np
import pytest

from repro.baselines import (
    BiparGCN,
    CauseRec,
    ECC,
    GCMCRecommender,
    LightGCNRecommender,
    SafeDrug,
    SVMRecommender,
    UserSim,
    available_baselines,
)
from repro.data import generate_chronic_cohort, generate_mimic, standardize_features
from repro.metrics import recall_at_k


@pytest.fixture(scope="module")
def cohort_data():
    cohort = generate_chronic_cohort(num_patients=200, seed=11)
    x = standardize_features(cohort.features)
    y = cohort.medications
    return x[:140], y[:140], x[140:], y[140:], cohort


def quick_instances(cohort):
    return [
        UserSim(),
        ECC(num_chains=2, max_iter=40),
        SVMRecommender(epochs=10),
        GCMCRecommender(hidden_dim=16, epochs=40),
        LightGCNRecommender(hidden_dim=16, epochs=40),
        BiparGCN(hidden_dim=16, epochs=40),
        SafeDrug(hidden_dim=16, epochs=40, ddi_graph=cohort.ddi.graph),
        CauseRec(hidden_dim=16, epochs=40),
    ]


class TestRegistry:
    def test_all_eight_registered(self):
        names = set(available_baselines())
        assert names == {
            "UserSim",
            "ECC",
            "SVM",
            "GCMC",
            "LightGCN",
            "Bipar-GCN",
            "SafeDrug",
            "CauseRec",
        }


class TestSharedContract:
    def test_scores_shape_and_finite(self, cohort_data):
        x_train, y_train, x_test, _y_test, cohort = cohort_data
        for model in quick_instances(cohort):
            model.fit(x_train, y_train)
            scores = model.predict_scores(x_test)
            assert scores.shape == (x_test.shape[0], y_train.shape[1]), model.name
            assert np.isfinite(scores).all(), model.name

    def test_requires_fit(self, cohort_data):
        *_rest, cohort = cohort_data
        for model in quick_instances(cohort):
            with pytest.raises(RuntimeError):
                model.predict_scores(np.zeros((1, 71)))

    def test_shape_validation(self, cohort_data):
        *_rest, cohort = cohort_data
        for model in quick_instances(cohort):
            with pytest.raises(ValueError):
                model.fit(np.zeros((5, 3)), np.zeros((6, 4)))

    def test_graph_models_beat_random(self, cohort_data):
        """The graph-based methods must clearly beat random ranking."""
        x_train, y_train, x_test, y_test, cohort = cohort_data
        rng = np.random.default_rng(0)
        random_recall = recall_at_k(rng.random((len(x_test), 86)), y_test, 5)
        for model in [
            LightGCNRecommender(hidden_dim=16, epochs=120),
            BiparGCN(hidden_dim=16, epochs=120),
        ]:
            model.fit(x_train, y_train)
            model_recall = recall_at_k(model.predict_scores(x_test), y_test, 5)
            assert model_recall > 1.5 * random_recall, model.name


class TestUserSim:
    def test_identical_patient_recovers_profile(self):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        y = np.array([[1, 0, 0], [0, 0, 1]])
        model = UserSim().fit(x, y)
        scores = model.predict_scores(np.array([[1.0, 0.0]]))
        assert scores[0].argmax() == 0

    def test_eq20_formula(self):
        rng = np.random.default_rng(0)
        x_obs = rng.normal(size=(5, 4))
        y_obs = rng.integers(0, 2, size=(5, 3)).astype(float)
        x_new = rng.normal(size=(2, 4))
        model = UserSim().fit(x_obs, y_obs)
        scores = model.predict_scores(x_new)
        x_new_n = x_new / np.linalg.norm(x_new, axis=1, keepdims=True)
        x_obs_n = x_obs / np.linalg.norm(x_obs, axis=1, keepdims=True)
        expected = (x_new_n @ x_obs_n.T) @ y_obs
        assert np.allclose(scores, expected)


class TestECC:
    def test_chain_feeds_predictions_forward(self):
        """Label 1 = copy of label 0: the chain must learn the dependency."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 5))
        label0 = (x[:, 0] > 0).astype(float)
        y = np.stack([label0, label0], axis=1)
        model = ECC(num_chains=2, max_iter=150).fit(x, y)
        scores = model.predict_scores(x)
        assert ((scores[:, 1] > 0.5) == label0).mean() > 0.9

    def test_constant_labels_handled(self):
        x = np.random.default_rng(2).normal(size=(20, 3))
        y = np.zeros((20, 2))
        model = ECC(num_chains=1).fit(x, y)
        scores = model.predict_scores(x)
        assert np.allclose(scores, 0.0)

    def test_num_chains_validation(self):
        with pytest.raises(ValueError):
            ECC(num_chains=0)


class TestSafeDrug:
    def test_ddi_penalty_reduces_antagonistic_pairs(self, cohort_data):
        x_train, y_train, x_test, _y_test, cohort = cohort_data
        graph = cohort.ddi.graph
        mask = np.zeros((86, 86))
        for u, v, s in graph.edges_with_signs():
            if s == -1:
                mask[u, v] = mask[v, u] = 1.0

        def ddi_rate(scores, k=5):
            from repro.metrics import top_k_indices

            top = top_k_indices(scores, k)
            count = 0
            for row in top:
                for a in range(k):
                    for b in range(a + 1, k):
                        count += mask[row[a], row[b]]
            return count

        gentle = SafeDrug(hidden_dim=16, epochs=80, ddi_penalty=0.0, ddi_graph=graph)
        strict = SafeDrug(hidden_dim=16, epochs=80, ddi_penalty=5.0, ddi_graph=graph)
        gentle.fit(x_train, y_train)
        strict.fit(x_train, y_train)
        assert ddi_rate(strict.predict_scores(x_test)) <= ddi_rate(
            gentle.predict_scores(x_test)
        )

    def test_multivisit_mode(self):
        data = generate_mimic(num_patients=80, seed=5)
        from repro.data import visit_step_features

        steps = visit_step_features(data, max_visits=3)
        model = SafeDrug(hidden_dim=16, epochs=30)
        model.fit(data.features, data.labels, visit_steps=steps)
        scores = model.predict_scores(data.features, visit_steps=steps)
        assert scores.shape == data.labels.shape


class TestCauseRec:
    def test_contrastive_losses_logged(self, cohort_data):
        x_train, y_train, *_ = cohort_data
        model = CauseRec(hidden_dim=16, epochs=10)
        model.fit(x_train[:60], y_train[:60])
        assert len(model.training_log.losses) == 10
        assert model.training_log.epochs_run == 10

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CauseRec(num_blocks=1)
        with pytest.raises(ValueError):
            CauseRec(mask_fraction=0.0)

    def test_masking_changes_representation(self, cohort_data):
        x_train, y_train, *_ = cohort_data
        model = CauseRec(hidden_dim=16, epochs=5)
        model.fit(x_train[:40], y_train[:40])
        from repro.nn import Tensor

        x_t = Tensor(x_train[:10])
        full = model._encode(x_t).numpy()
        masked = model._encode_masked(
            x_t, np.zeros((10, 2), dtype=int)
        ).numpy()
        assert not np.allclose(full, masked)


class TestLightGCNAnalysis:
    def test_oversmoothing_mechanism(self, cohort_data):
        """Fig. 7's cause: graph convolution makes patient representations
        far more mutually similar than the raw (pre-propagation) ones —
        which is exactly why DSSDDI decodes with the pre-propagation h_i."""
        from repro.gnn import LightGCNPropagation
        from repro.metrics import cosine_similarity_matrix, offdiagonal_mean
        from repro.nn import Tensor

        x_train, y_train, _x_test, _y_test, _cohort = cohort_data
        model = LightGCNRecommender(hidden_dim=16, epochs=60)
        model.fit(x_train, y_train)
        raw = model._patient_fc(Tensor(x_train))
        drugs = model._drug_fc(Tensor(np.eye(y_train.shape[1])))
        one_hop = LightGCNPropagation(2, [0.0, 1.0, 0.0])
        smoothed, _ = one_hop(raw, drugs, model._p2d, model._d2p)
        raw_sim = offdiagonal_mean(cosine_similarity_matrix(raw.numpy()))
        smooth_sim = offdiagonal_mean(cosine_similarity_matrix(smoothed.numpy()))
        assert smooth_sim > raw_sim + 0.2


class TestTrainingLog:
    """Satellite contract: every baseline reports convergence uniformly."""

    def test_all_baselines_expose_uniform_training_log(self, cohort_data):
        x_train, y_train, *_ , cohort = cohort_data
        for model in quick_instances(cohort):
            with pytest.raises(RuntimeError, match="fit"):
                model.training_log
            model.fit(x_train[:60], y_train[:60])
            log = model.training_log
            assert log.epochs_run >= 0
            assert log.wall_seconds >= 0.0
            assert isinstance(log.stopped_early, bool)
            if log.losses:
                assert np.isfinite(log.final_loss)

    def test_iterative_baselines_report_epochs(self, cohort_data):
        x_train, y_train, *_ , cohort = cohort_data
        model = LightGCNRecommender(hidden_dim=16, epochs=12)
        model.fit(x_train[:60], y_train[:60])
        log = model.training_log
        assert log.epochs_run == 12 and log.total_epochs == 12
        assert len(log.losses) == 12
        assert log.to_dict()["final_loss"] == log.final_loss

    def test_lightgcn_predict_cache_invalidated_on_refit(self, cohort_data):
        x_train, y_train, x_test, *_ , cohort = cohort_data
        model = LightGCNRecommender(hidden_dim=16, epochs=5)
        model.fit(x_train[:60], y_train[:60])
        first = model.predict_scores(x_test[:5])
        # Refit on different data must not serve the old cached reps.
        model.fit(x_train[60:120], y_train[60:120])
        second = model.predict_scores(x_test[:5])
        assert not np.array_equal(first, second)
        # And the cache itself is bit-transparent.
        cached = model.predict_scores(x_test[:5])
        model._rep_cache = None
        np.testing.assert_array_equal(model.predict_scores(x_test[:5]), cached)
