"""Tests for the GNN layer package."""

import numpy as np
import pytest

from repro.gnn import (
    BilinearDecoder,
    EdgeAttentionHead,
    GCMCEncoder,
    GINConv,
    GINEncoder,
    GRUCell,
    GRUEncoder,
    LightGCNPropagation,
    SGCNConv,
    SGCNEncoder,
    SiGATEncoder,
    SNEAEncoder,
    bipartite_propagation,
    default_layer_weights,
    interaction_mean_adjacency,
    mean_adjacency,
    signed_edge_arrays,
    signed_mean_adjacencies,
    symmetric_adjacency,
)
from repro.graph import BipartiteGraph, SignedGraph
from repro.nn import Adam, Tensor, mse_loss


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def signed_graph():
    return SignedGraph.from_signed_edges(
        5, [(0, 1, 1), (1, 2, -1), (2, 3, 1), (3, 4, -1), (0, 4, 0)]
    )


class TestPropagationHelpers:
    def test_mean_adjacency_rows_sum_to_one_or_zero(self):
        adj = np.array([[0, 1, 1], [1, 0, 0], [0, 0, 0]], dtype=float)
        mean = mean_adjacency(adj)
        sums = mean.sum(axis=1)
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == pytest.approx(1.0)
        assert sums[2] == 0.0

    def test_symmetric_adjacency_eigenvalues_bounded(self):
        adj = np.array([[0, 1], [1, 0]], dtype=float)
        sym = symmetric_adjacency(adj, self_loops=True)
        eigs = np.linalg.eigvalsh(sym)
        assert eigs.max() <= 1.0 + 1e-9

    def test_signed_mean_adjacencies_split(self, signed_graph):
        pos, neg = signed_mean_adjacencies(signed_graph)
        assert pos[0, 1] > 0 and neg[0, 1] == 0
        assert neg[1, 2] > 0 and pos[1, 2] == 0
        # zero-sign edge contributes to neither
        assert pos[0, 4] == 0 and neg[0, 4] == 0

    def test_interaction_adjacency_includes_zero_edges(self, signed_graph):
        with_zero = interaction_mean_adjacency(signed_graph, include_zero=True)
        without = interaction_mean_adjacency(signed_graph, include_zero=False)
        assert with_zero[0, 4] > 0
        assert without[0, 4] == 0

    def test_signed_edge_arrays_bidirectional(self, signed_graph):
        src, dst, signs = signed_edge_arrays(signed_graph)
        assert len(src) == 2 * signed_graph.num_edges
        # every (u, v) has its (v, u) twin with the same sign
        pairs = set(zip(src.tolist(), dst.tolist(), signs.tolist()))
        assert all((v, u, s) in pairs for u, v, s in pairs)

    def test_bipartite_propagation_shapes(self):
        graph = BipartiteGraph.from_matrix(np.array([[1, 0], [1, 1], [0, 1]], dtype=float))
        p2d, d2p = bipartite_propagation(graph)
        assert p2d.shape == (3, 2)
        assert d2p.shape == (2, 3)


class TestGIN:
    def test_shapes(self, rng, signed_graph):
        adj = interaction_mean_adjacency(signed_graph)
        conv = GINConv(4, 8, rng)
        out = conv(Tensor(np.ones((5, 4))), adj)
        assert out.shape == (5, 8)

    def test_encoder_stacks(self, rng, signed_graph):
        adj = interaction_mean_adjacency(signed_graph)
        enc = GINEncoder(4, 16, 3, rng)
        out = enc(Tensor(rng.normal(size=(5, 4))), adj)
        assert out.shape == (5, 16)
        assert enc.out_dim == 16

    def test_encoder_validates_layers(self, rng):
        with pytest.raises(ValueError):
            GINEncoder(4, 8, 0, rng)

    def test_gradients_reach_eps_and_mlp(self, rng, signed_graph):
        adj = interaction_mean_adjacency(signed_graph)
        conv = GINConv(3, 3, rng)
        out = conv(Tensor(rng.normal(size=(5, 3))), adj)
        (out * out).sum().backward()
        assert conv.eps.grad is not None
        assert all(p.grad is not None for p in conv.mlp.parameters())

    def test_isolated_node_keeps_self_signal(self, rng):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, 1)  # node 2 isolated
        adj = interaction_mean_adjacency(graph)
        conv = GINConv(2, 2, rng)
        x = np.zeros((3, 2))
        x[2] = [1.0, -1.0]
        out = conv(Tensor(x), adj).numpy()
        assert not np.allclose(out[2], 0.0)


class TestSGCN:
    def test_conv_shapes(self, rng, signed_graph):
        pos, neg = signed_mean_adjacencies(signed_graph)
        conv = SGCNConv(4, 4, rng)
        hb, hu = conv(Tensor(np.ones((5, 4))), Tensor(np.ones((5, 4))), pos, neg)
        assert hb.shape == (5, 4)
        assert hu.shape == (5, 4)

    def test_encoder_output_is_concat(self, rng, signed_graph):
        pos, neg = signed_mean_adjacencies(signed_graph)
        enc = SGCNEncoder(6, 8, 2, rng)
        out = enc(Tensor(rng.normal(size=(5, 6))), pos, neg)
        assert out.shape == (5, 8)
        assert enc.out_dim == 8

    def test_encoder_rejects_odd_hidden(self, rng):
        with pytest.raises(ValueError):
            SGCNEncoder(4, 7, 2, rng)

    def test_sign_paths_differ(self, rng):
        """Flipping an edge sign must change the output (signs are used)."""
        x = np.random.default_rng(1).normal(size=(3, 4))
        pos_graph = SignedGraph.from_signed_edges(3, [(0, 1, 1), (1, 2, 1)])
        neg_graph = SignedGraph.from_signed_edges(3, [(0, 1, -1), (1, 2, -1)])
        enc = SGCNEncoder(4, 8, 2, rng)
        out_pos = enc(Tensor(x), *signed_mean_adjacencies(pos_graph)).numpy()
        out_neg = enc(Tensor(x), *signed_mean_adjacencies(neg_graph)).numpy()
        assert not np.allclose(out_pos, out_neg)


class TestAttentionBackbones:
    def test_attention_head_zero_edges(self, rng):
        head = EdgeAttentionHead(4, 6, rng)
        out = head(
            Tensor(np.ones((3, 4))), np.array([], dtype=int), np.array([], dtype=int), 3
        )
        assert out.shape == (3, 6)
        assert np.allclose(out.numpy(), 0.0)

    def test_attention_weights_sum_to_one_effect(self, rng):
        """With identical neighbours the aggregate equals the message itself."""
        head = EdgeAttentionHead(2, 2, rng)
        feats = np.ones((4, 2))
        src = np.array([1, 2, 3])
        dst = np.array([0, 0, 0])
        out = head(Tensor(feats), src, dst, 4).numpy()
        single = head(Tensor(feats), np.array([1]), np.array([0]), 4).numpy()
        assert np.allclose(out[0], single[0], atol=1e-9)

    def test_sigat_encoder_shapes(self, rng, signed_graph):
        src, dst, signs = signed_edge_arrays(signed_graph)
        enc = SiGATEncoder(4, 8, 2, rng)
        out = enc(Tensor(np.ones((5, 4))), src, dst, signs, 5)
        assert out.shape == (5, 8)

    def test_snea_encoder_shapes(self, rng, signed_graph):
        src, dst, signs = signed_edge_arrays(signed_graph)
        enc = SNEAEncoder(4, 8, 2, rng)
        out = enc(Tensor(np.ones((5, 4))), src, dst, signs, 5)
        assert out.shape == (5, 8)

    def test_snea_rejects_odd_hidden(self, rng):
        with pytest.raises(ValueError):
            SNEAEncoder(4, 9, 1, rng)

    def test_sigat_gradients_flow(self, rng, signed_graph):
        src, dst, signs = signed_edge_arrays(signed_graph)
        enc = SiGATEncoder(3, 4, 1, rng)
        out = enc(Tensor(rng.normal(size=(5, 3))), src, dst, signs, 5)
        (out * out).sum().backward()
        grads = [p.grad for p in enc.parameters()]
        assert sum(g is not None for g in grads) >= len(grads) - 1


class TestLightGCN:
    def test_default_weights_match_paper(self):
        weights = default_layer_weights(2)
        assert weights == pytest.approx([0.5, 1.0 / 3.0, 0.25])

    def test_propagation_shapes(self):
        graph = BipartiteGraph.from_matrix(
            np.array([[1, 0, 1], [0, 1, 0]], dtype=float)
        )
        p2d, d2p = bipartite_propagation(graph)
        prop = LightGCNPropagation(2)
        hp, hd = prop(Tensor(np.ones((2, 4))), Tensor(np.ones((3, 4))), p2d, d2p)
        assert hp.shape == (2, 4)
        assert hd.shape == (3, 4)

    def test_layer0_weight_keeps_self_features(self):
        """With zero adjacency, output = beta_0 * input (only layer 0 term)."""
        prop = LightGCNPropagation(2)
        p2d = np.zeros((2, 3))
        d2p = np.zeros((3, 2))
        x_p = np.ones((2, 4))
        hp, _ = prop(Tensor(x_p), Tensor(np.ones((3, 4))), p2d, d2p)
        assert np.allclose(hp.numpy(), 0.5 * x_p)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            LightGCNPropagation(0)
        with pytest.raises(ValueError):
            LightGCNPropagation(2, layer_weights=[1.0])
        with pytest.raises(ValueError):
            LightGCNPropagation(1, layer_weights=[0.5, -0.1])

    def test_two_hop_reaches_other_patients(self):
        """After 2 layers a patient's rep reflects co-prescribed patients."""
        mat = np.array([[1, 0], [1, 0], [0, 1]], dtype=float)
        graph = BipartiteGraph.from_matrix(mat)
        p2d, d2p = bipartite_propagation(graph)
        prop = LightGCNPropagation(2, layer_weights=[0.0, 0.0, 1.0])  # isolate t=2
        x_p = np.eye(3, 4)
        x_d = np.zeros((2, 4))
        hp, _ = prop(Tensor(x_p), Tensor(x_d), p2d, d2p)
        # patient 0 and 1 share drug 0 => patient 0's t=2 rep includes e1
        assert hp.numpy()[0, 1] > 0
        assert hp.numpy()[0, 2] == 0  # patient 2 shares nothing


class TestGCMC:
    def test_encoder_decoder_shapes(self, rng):
        graph = BipartiteGraph.from_matrix(np.array([[1, 0], [1, 1]], dtype=float))
        channels = [bipartite_propagation(graph)]
        enc = GCMCEncoder(5, 3, 8, 6, 1, rng)
        hp, hd = enc(Tensor(np.ones((2, 5))), Tensor(np.ones((2, 3))), channels)
        assert hp.shape == (2, 6)
        assert hd.shape == (2, 6)
        dec = BilinearDecoder(6, rng)
        scores = dec(hp, hd)
        assert scores.shape == (2, 2)

    def test_channel_count_validated(self, rng):
        enc = GCMCEncoder(5, 3, 8, 6, 2, rng)
        with pytest.raises(ValueError):
            enc(Tensor(np.ones((2, 5))), Tensor(np.ones((2, 3))), [])

    def test_gcmc_learns_to_rank_observed_link(self, rng):
        mat = np.array([[1.0, 0.0], [0.0, 1.0]])
        graph = BipartiteGraph.from_matrix(mat)
        channels = [bipartite_propagation(graph)]
        x_p = Tensor(np.eye(2))
        x_d = Tensor(np.eye(2))
        enc = GCMCEncoder(2, 2, 8, 8, 1, rng)
        dec = BilinearDecoder(8, rng)
        params = enc.parameters() + dec.parameters()
        opt = Adam(params, lr=0.01)
        for _ in range(200):
            opt.zero_grad()
            hp, hd = enc(x_p, x_d, channels)
            scores = dec(hp, hd).sigmoid()
            loss = mse_loss(scores, Tensor(mat))
            loss.backward()
            opt.step()
        final = dec(*enc(x_p, x_d, channels)).sigmoid().numpy()
        assert final[0, 0] > final[0, 1]
        assert final[1, 1] > final[1, 0]


class TestGRU:
    def test_cell_shapes(self, rng):
        cell = GRUCell(3, 5, rng)
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_encoder_requires_steps(self, rng):
        enc = GRUEncoder(3, 5, rng)
        with pytest.raises(ValueError):
            enc([])

    def test_encoder_batch_consistency(self, rng):
        enc = GRUEncoder(3, 5, rng)
        with pytest.raises(ValueError):
            enc([Tensor(np.ones((2, 3))), Tensor(np.ones((3, 3)))])

    def test_hidden_state_bounded_by_tanh(self, rng):
        enc = GRUEncoder(2, 4, rng)
        steps = [Tensor(np.random.default_rng(i).normal(size=(3, 2)) * 10) for i in range(6)]
        h = enc(steps).numpy()
        assert np.all(np.abs(h) <= 1.0 + 1e-9)

    def test_order_sensitivity(self, rng):
        """GRU output must depend on step order."""
        enc = GRUEncoder(2, 4, rng)
        a = Tensor(np.full((1, 2), 1.0))
        b = Tensor(np.full((1, 2), -1.0))
        h_ab = enc([a, b]).numpy()
        h_ba = enc([b, a]).numpy()
        assert not np.allclose(h_ab, h_ba)

    def test_gru_learns_last_input(self, rng):
        """Train the GRU to output the final step's first feature."""
        enc = GRUEncoder(1, 4, rng)
        from repro.nn import Linear

        head = Linear(4, 1, rng)
        opt = Adam(enc.parameters() + head.parameters(), lr=0.02)
        data_rng = np.random.default_rng(5)
        for _ in range(150):
            seq = [Tensor(data_rng.normal(size=(8, 1))) for _ in range(3)]
            target = seq[-1].numpy()
            opt.zero_grad()
            loss = mse_loss(head(enc(seq)), Tensor(target))
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
