"""Sparse-vs-dense equivalence suite for the CSR propagation backend.

Every adjacency producer must yield the same matrix (within 1e-9, in
practice bitwise) whether the dense or the CSR path is forced, the
sparse ``matmul_fixed`` must match its dense twin in both the forward
and the backward pass, and the end-to-end module outputs
(``MDModule.predict_scores``, ``DDIModule.fit`` embeddings) must agree
across backends.
"""

import numpy as np
import pytest

from repro.core import DDIGCNConfig, DDIModule, MDGCNConfig, MDModule
from repro.gnn import (
    bipartite_propagation,
    interaction_mean_adjacency,
    mean_adjacency,
    signed_mean_adjacencies,
    symmetric_adjacency,
)
from repro.graph import BipartiteGraph, SignedGraph
from repro.nn import Tensor, matmul_fixed
from repro.nn import sparse as sparse_backend
from repro.serving import BatchScorer

pytest.importorskip("scipy.sparse")

ATOL = 1e-9


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def signed_graph(rng):
    graph = SignedGraph(30)
    pairs = {
        (int(u), int(v))
        for u, v in rng.integers(0, 30, size=(120, 2))
        if u != v
    }
    for i, (u, v) in enumerate(sorted(pairs)):
        graph.add_edge(u, v, (-1, 0, 1)[i % 3])
    return graph


@pytest.fixture
def bipartite_graph(rng):
    matrix = (rng.random((40, 18)) < 0.15).astype(float)
    matrix[0] = 0.0  # isolated patient
    matrix[:, 1] = 0.0  # unused drug
    matrix[1, 2] = 1.0
    return BipartiteGraph.from_matrix(matrix)


def _dense(mat):
    return sparse_backend.to_dense(mat)


class TestPolicy:
    def test_backends_validate(self):
        with pytest.raises(ValueError):
            sparse_backend.set_backend("csr")
        with sparse_backend.use_backend("dense"):
            assert sparse_backend.get_backend() == "dense"
        assert sparse_backend.get_backend() == "auto"

    def test_auto_keeps_small_matrices_dense(self):
        # Far below the size floor: even a very sparse matrix stays dense.
        assert not sparse_backend.should_sparsify((30, 30), 4, "auto")

    def test_auto_sparsifies_large_sparse_matrices(self):
        assert sparse_backend.should_sparsify((5000, 500), 25000, "auto")

    def test_forced_backends_override_policy(self):
        assert sparse_backend.should_sparsify((3, 3), 9, "sparse")
        assert not sparse_backend.should_sparsify((5000, 500), 1, "dense")

    def test_maybe_sparse_round_trip(self, rng):
        dense = (rng.random((20, 20)) < 0.1).astype(float)
        csr = sparse_backend.maybe_sparse(dense, "sparse")
        assert sparse_backend.is_sparse(csr)
        back = sparse_backend.maybe_sparse(csr, "dense")
        assert isinstance(back, np.ndarray)
        np.testing.assert_array_equal(back, dense)

    def test_matmul_mixed_operands(self, rng):
        a = (rng.random((12, 9)) < 0.3).astype(float)
        b = rng.normal(size=(9, 5))
        a_csr = sparse_backend.as_csr(a)
        b_csr = sparse_backend.as_csr(b)
        expected = a @ b
        np.testing.assert_allclose(sparse_backend.matmul(a_csr, b), expected, atol=ATOL)
        np.testing.assert_allclose(sparse_backend.matmul(a, b_csr), expected, atol=ATOL)
        np.testing.assert_allclose(
            sparse_backend.matmul(a_csr, b_csr), expected, atol=ATOL
        )


class TestNormalizerEquivalence:
    def test_mean_adjacency(self, rng):
        adj = (rng.random((25, 25)) < 0.2).astype(float)
        dense = mean_adjacency(adj, backend="dense")
        sparse = mean_adjacency(adj, backend="sparse")
        assert sparse_backend.is_sparse(sparse)
        np.testing.assert_allclose(_dense(sparse), dense, atol=ATOL)

    def test_mean_adjacency_accepts_sparse_input(self, rng):
        adj = (rng.random((25, 25)) < 0.2).astype(float)
        from_sparse = mean_adjacency(sparse_backend.as_csr(adj), backend="sparse")
        np.testing.assert_allclose(
            _dense(from_sparse), mean_adjacency(adj, backend="dense"), atol=ATOL
        )

    @pytest.mark.parametrize("self_loops", [False, True])
    def test_symmetric_adjacency(self, rng, self_loops):
        base = (rng.random((25, 25)) < 0.2).astype(float)
        adj = np.maximum(base, base.T)
        dense = symmetric_adjacency(adj, self_loops=self_loops, backend="dense")
        sparse = symmetric_adjacency(adj, self_loops=self_loops, backend="sparse")
        assert sparse_backend.is_sparse(sparse)
        np.testing.assert_allclose(_dense(sparse), dense, atol=ATOL)
        from_sparse = symmetric_adjacency(
            sparse_backend.as_csr(adj), self_loops=self_loops, backend="sparse"
        )
        np.testing.assert_allclose(_dense(from_sparse), dense, atol=ATOL)

    def test_signed_mean_adjacencies(self, signed_graph):
        pos_d, neg_d = signed_mean_adjacencies(signed_graph, backend="dense")
        pos_s, neg_s = signed_mean_adjacencies(signed_graph, backend="sparse")
        assert sparse_backend.is_sparse(pos_s) and sparse_backend.is_sparse(neg_s)
        np.testing.assert_allclose(_dense(pos_s), pos_d, atol=ATOL)
        np.testing.assert_allclose(_dense(neg_s), neg_d, atol=ATOL)

    @pytest.mark.parametrize("include_zero", [True, False])
    def test_interaction_mean_adjacency(self, signed_graph, include_zero):
        dense = interaction_mean_adjacency(
            signed_graph, include_zero=include_zero, backend="dense"
        )
        sparse = interaction_mean_adjacency(
            signed_graph, include_zero=include_zero, backend="sparse"
        )
        assert sparse_backend.is_sparse(sparse)
        np.testing.assert_allclose(_dense(sparse), dense, atol=ATOL)

    def test_bipartite_propagation(self, bipartite_graph):
        p2d_d, d2p_d = bipartite_propagation(bipartite_graph, backend="dense")
        p2d_s, d2p_s = bipartite_propagation(bipartite_graph, backend="sparse")
        assert sparse_backend.is_sparse(p2d_s) and sparse_backend.is_sparse(d2p_s)
        np.testing.assert_allclose(_dense(p2d_s), p2d_d, atol=ATOL)
        np.testing.assert_allclose(_dense(d2p_s), d2p_d, atol=ATOL)

    def test_normalized_adjacency_backend_arg(self, bipartite_graph):
        p2d, d2p = bipartite_graph.normalized_adjacency(backend="sparse")
        assert sparse_backend.is_sparse(p2d)
        dense_p2d, _ = bipartite_graph.normalized_adjacency(backend="dense")
        np.testing.assert_allclose(_dense(p2d), dense_p2d, atol=ATOL)
        np.testing.assert_allclose(_dense(d2p), dense_p2d.T, atol=ATOL)


class TestSparseMatmulFixed:
    def test_forward_matches_dense(self, rng):
        a = (rng.random((14, 10)) < 0.3) * rng.normal(size=(14, 10))
        x = Tensor(rng.normal(size=(10, 6)), requires_grad=True)
        dense_out = matmul_fixed(a, x)
        sparse_out = matmul_fixed(sparse_backend.as_csr(a), x)
        assert isinstance(sparse_out.data, np.ndarray)
        np.testing.assert_allclose(sparse_out.data, dense_out.data, atol=ATOL)

    def test_backward_matches_dense(self, rng):
        a = (rng.random((14, 10)) < 0.3) * rng.normal(size=(14, 10))
        seed_grad = rng.normal(size=(14, 6))

        x_dense = Tensor(rng.normal(size=(10, 6)), requires_grad=True)
        matmul_fixed(a, x_dense).backward(seed_grad)
        x_sparse = Tensor(x_dense.data.copy(), requires_grad=True)
        matmul_fixed(sparse_backend.as_csr(a), x_sparse).backward(seed_grad)
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=ATOL)

    def test_gradient_check_numeric(self, rng):
        a = sparse_backend.as_csr(
            (rng.random((6, 5)) < 0.5) * rng.normal(size=(6, 5))
        )
        x0 = rng.normal(size=(5, 3))
        w = rng.normal(size=(6, 3))

        def loss_value(values: np.ndarray) -> float:
            return float((np.asarray(a @ values) * w).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        (matmul_fixed(a, x) * Tensor(w)).sum().backward()
        eps = 1e-6
        numeric = np.zeros_like(x0)
        for i in range(x0.shape[0]):
            for j in range(x0.shape[1]):
                bumped = x0.copy()
                bumped[i, j] += eps
                dipped = x0.copy()
                dipped[i, j] -= eps
                numeric[i, j] = (loss_value(bumped) - loss_value(dipped)) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestFusedOps:
    """The fused hot-path ops must replay the generic autograd ops bitwise."""

    def test_pair_interaction_logits_matches_generic(self, rng):
        from repro.nn import MLP, concat, gather_rows
        from repro.nn.fused import can_fuse_pair_mlp, pair_interaction_logits

        h = 8
        mlp = MLP([h + 1, h, 1], rng, activation="relu")
        assert can_fuse_pair_mlp(mlp)
        hp = Tensor(rng.normal(size=(20, h)), requires_grad=True)
        hd = Tensor(rng.normal(size=(6, h)), requires_grad=True)
        li = rng.integers(0, 20, size=40)
        ri = rng.integers(0, 6, size=40)
        extra = rng.integers(0, 2, size=40).astype(float)
        seed_grad = rng.normal(size=40)

        fused = pair_interaction_logits(hp, hd, li, ri, extra, mlp)
        fused.backward(seed_grad)
        fused_grads = (
            hp.grad.copy(), hd.grad.copy(),
            *[p.grad.copy() for p in mlp.parameters()],
        )
        hp.zero_grad(); hd.zero_grad()
        for p in mlp.parameters():
            p.zero_grad()
        generic = mlp(
            concat(
                [gather_rows(hp, li) * gather_rows(hd, ri),
                 Tensor(extra.reshape(-1, 1))],
                axis=1,
            )
        ).reshape(-1)
        np.testing.assert_array_equal(fused.data, generic.data)
        generic.backward(seed_grad)
        generic_grads = (
            hp.grad, hd.grad, *[p.grad for p in mlp.parameters()]
        )
        for got, expected in zip(fused_grads, generic_grads):
            np.testing.assert_array_equal(got, expected)

    def test_lightgcn_scan_matches_generic(self, rng, bipartite_graph):
        from repro.gnn import LightGCNPropagation, default_layer_weights
        from repro.nn import matmul_fixed

        p2d, d2p = bipartite_graph.normalized_adjacency(backend="dense")
        num_layers = 3
        weights = default_layer_weights(num_layers)
        prop = LightGCNPropagation(num_layers, weights)
        hp = Tensor(rng.normal(size=(p2d.shape[0], 5)), requires_grad=True)
        hd = Tensor(rng.normal(size=(p2d.shape[1], 5)), requires_grad=True)

        out_p, out_d = prop(hp, hd, p2d, d2p)
        ((out_p * out_p).sum() + (out_d * out_d).sum()).backward()
        scan_grads = (hp.grad.copy(), hd.grad.copy())
        hp.zero_grad(); hd.zero_grad()

        # op-by-op reference
        pc = hp * weights[0]
        dc = hd * weights[0]
        cur_p, cur_d = hp, hd
        for t in range(1, num_layers + 1):
            cur_p, cur_d = matmul_fixed(p2d, cur_d), matmul_fixed(d2p, cur_p)
            pc = pc + cur_p * weights[t]
            dc = dc + cur_d * weights[t]
        np.testing.assert_array_equal(out_p.data, pc.data)
        np.testing.assert_array_equal(out_d.data, dc.data)
        ((pc * pc).sum() + (dc * dc).sum()).backward()
        np.testing.assert_allclose(scan_grads[0], hp.grad, atol=ATOL)
        np.testing.assert_allclose(scan_grads[1], hd.grad, atol=ATOL)

    def test_scatter_add_rows_matches_add_at(self, rng):
        index = rng.integers(0, 50, size=6000)
        values = rng.normal(size=(6000, 4))
        expected = np.zeros((50, 4))
        np.add.at(expected, index, values)
        got = sparse_backend.scatter_add_rows(index, values, 50)
        np.testing.assert_array_equal(got, expected)  # bitwise: same order


def _small_cohort(rng, m=36, n=14):
    x = rng.normal(size=(m, 6))
    y = (rng.random((m, n)) < 0.25).astype(np.int64)
    y[np.arange(m), rng.integers(0, n, size=m)] = 1  # no empty patients
    graph = SignedGraph(n)
    pairs = {
        (int(u), int(v)) for u, v in rng.integers(0, n, size=(25, 2)) if u != v
    }
    for i, (u, v) in enumerate(sorted(pairs)):
        graph.add_edge(u, v, 1 if i % 2 == 0 else -1)
    return x, y, np.eye(n), graph


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def fitted_dense(self):
        rng = np.random.default_rng(3)
        x, y, z, graph = _small_cohort(rng)
        cfg = MDGCNConfig(
            epochs=25, hidden_dim=16, use_counterfactual=False,
            num_clusters=4, propagation_backend="dense",
        )
        module = MDModule(cfg)
        module.fit(x, y, z, graph, None)
        return module, x, graph

    def test_md_predict_scores_across_backends(self, fitted_dense):
        module, x, graph = fitted_dense
        state = module.export_state()
        sparse_cfg = MDGCNConfig(**{
            **module.config.to_dict(), "propagation_backend": "sparse"
        })
        rebuilt = MDModule.from_state(sparse_cfg, state, graph)
        assert sparse_backend.is_sparse(rebuilt._p2d)
        np.testing.assert_allclose(
            rebuilt.predict_scores(x[:9]), module.predict_scores(x[:9]), atol=ATOL
        )
        np.testing.assert_array_equal(
            rebuilt.treatment_for(x[:9]), module.treatment_for(x[:9])
        )

    def test_treatment_factors_cached_and_sparse(self, fitted_dense):
        module, _x, graph = fitted_dense
        first = module._treatment_factors()
        assert module._treatment_factors() is first  # cached, not recomputed
        sparse_cfg = MDGCNConfig(**{
            **module.config.to_dict(), "propagation_backend": "sparse"
        })
        rebuilt = MDModule.from_state(sparse_cfg, module.export_state(), graph)
        _, synergy = rebuilt._treatment_factors()
        assert sparse_backend.is_sparse(synergy)
        np.testing.assert_allclose(_dense(synergy), _dense(first[1]), atol=ATOL)

    def test_drug_representations_cached(self, fitted_dense):
        module, _x, _graph = fitted_dense
        cached = module._fitted_drug_reps()
        assert module._fitted_drug_reps() is cached
        np.testing.assert_array_equal(module.drug_representations(), cached)

    def test_chunked_scoring_matches_unchunked(self, fitted_dense):
        module, x, _graph = fitted_dense
        full = module.predict_scores(x[:12])
        chunked = module.predict_scores(x[:12], chunk_rows=5)
        np.testing.assert_allclose(chunked, full, atol=ATOL)

    def test_batch_scorer_consumes_sparse_synergy(self, fitted_dense):
        module, x, graph = fitted_dense
        sparse_cfg = MDGCNConfig(**{
            **module.config.to_dict(), "propagation_backend": "sparse"
        })
        rebuilt = MDModule.from_state(sparse_cfg, module.export_state(), graph)
        scorer = BatchScorer.from_md_module(rebuilt)
        assert sparse_backend.is_sparse(scorer.synergy)
        np.testing.assert_allclose(
            scorer.scores(x[:9]), module.predict_scores(x[:9]), atol=ATOL
        )
        np.testing.assert_array_equal(
            scorer.treatment_for(x[:9]), module.treatment_for(x[:9])
        )

    @pytest.mark.parametrize("backbone", ["gin", "sgcn"])
    def test_ddi_fit_across_backends(self, backbone):
        rng = np.random.default_rng(11)
        _x, _y, _z, graph = _small_cohort(rng, n=20)
        embeddings = {}
        for backend in ("dense", "sparse"):
            cfg = DDIGCNConfig(
                backbone=backbone, hidden_dim=8, num_layers=2, epochs=5,
                zero_edge_ratio=0.5, propagation_backend=backend,
            )
            module = DDIModule(cfg)
            module.fit(graph)
            embeddings[backend] = module.drug_embeddings()
        np.testing.assert_allclose(
            embeddings["sparse"], embeddings["dense"], atol=ATOL
        )
