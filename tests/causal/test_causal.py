"""Tests for treatment construction and counterfactual links."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causal import (
    build_counterfactual_links,
    build_treatment,
    pairwise_distances,
    suggest_gammas,
)
from repro.graph import SignedGraph


def tiny_setup():
    """4 patients x 4 drugs; synergy 0-1, antagonism 2-3."""
    features = np.array(
        [[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]]
    )
    y = np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    )
    graph = SignedGraph.from_signed_edges(4, [(0, 1, 1), (2, 3, -1)])
    return features, y, graph


class TestTreatment:
    def test_stage1_is_observed_links(self):
        features, y, graph = tiny_setup()
        result = build_treatment(features, y, graph, num_clusters=2, seed=0)
        assert np.array_equal(result.stage1, y)

    def test_stage2_cluster_propagation(self):
        features, y, graph = tiny_setup()
        result = build_treatment(features, y, graph, num_clusters=2, seed=0)
        # patients 0/1 cluster together, 2/3 together (well separated blobs)
        assert result.clusters[0] == result.clusters[1]
        assert result.clusters[2] == result.clusters[3]
        assert result.clusters[0] != result.clusters[2]
        # patient 0 inherits drug 2 from patient 1
        assert result.stage2[0, 2] == 1
        assert result.stage2[1, 0] == 1
        # no leakage across clusters
        assert result.stage2[0, 1] == 0

    def test_stage3_synergy_propagation(self):
        features, y, graph = tiny_setup()
        result = build_treatment(features, y, graph, num_clusters=2, seed=0)
        # patient 0 treats drug 0; synergy (0,1) adds drug 1
        assert result.matrix[0, 1] == 1
        # antagonism must NOT propagate: patient 2 has drug 1 (cluster) but
        # drug 1 has no synergy to drug 2 or 3
        assert result.matrix[2, 3] == 0 or result.stage2[2, 3] == 1

    def test_monotone_stages(self):
        features, y, graph = tiny_setup()
        result = build_treatment(features, y, graph, num_clusters=2, seed=0)
        assert np.all(result.stage1 <= result.stage2)
        assert np.all(result.stage2 <= result.matrix)

    def test_precomputed_clusters(self):
        features, y, graph = tiny_setup()
        clusters = np.array([0, 0, 1, 1])
        result = build_treatment(
            features, y, graph, num_clusters=2, clusters=clusters
        )
        assert np.array_equal(result.clusters, clusters)

    def test_arbitrary_cluster_labels(self):
        """Caller-provided labels may be negative or non-contiguous; the
        grouping must match the equivalent contiguous labelling."""
        features, y, graph = tiny_setup()
        reference = build_treatment(
            features, y, graph, num_clusters=2,
            clusters=np.array([0, 0, 1, 1]),
        )
        for odd in ([-2, -2, 7, 7], [10**9, 10**9, -1, -1]):
            result = build_treatment(
                features, y, graph, num_clusters=2,
                clusters=np.array(odd),
            )
            assert np.array_equal(result.stage2, reference.stage2)
            assert np.array_equal(result.matrix, reference.matrix)

    def test_validation(self):
        features, y, graph = tiny_setup()
        with pytest.raises(ValueError):
            build_treatment(features[:2], y, graph, 2)
        with pytest.raises(ValueError):
            build_treatment(features, y[:, :2], graph, 2)
        with pytest.raises(ValueError):
            build_treatment(features, y, graph, 2, clusters=np.zeros(7, dtype=int))

    def test_more_clusters_than_patients_clamped(self):
        features, y, graph = tiny_setup()
        result = build_treatment(features, y, graph, num_clusters=40, seed=0)
        assert result.matrix.shape == y.shape


class TestPairwiseDistances:
    def test_self_distances_zero_diagonal(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        dist = pairwise_distances(x)
        assert np.allclose(np.diag(dist), 0.0)
        assert np.allclose(dist, dist.T)

    def test_matches_manual(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distances(a)
        assert dist[0, 1] == pytest.approx(5.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 5))
    def test_triangle_inequality(self, n, d):
        rng = np.random.default_rng(n * 10 + d)
        x = rng.normal(size=(n, d))
        dist = pairwise_distances(x)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9


class TestCounterfactualLinks:
    def test_matched_pairs_flip_treatment(self):
        rng = np.random.default_rng(0)
        px = rng.normal(size=(10, 3))
        dx = rng.normal(size=(5, 2))
        treatment = rng.integers(0, 2, size=(10, 5))
        outcomes = rng.integers(0, 2, size=(10, 5))
        links = build_counterfactual_links(px, dx, treatment, outcomes, 10.0, 10.0)
        flipped = links.treatment_cf[links.matched]
        original = treatment[links.matched]
        assert np.array_equal(flipped, 1 - original)

    def test_unmatched_pairs_keep_factual(self):
        px = np.array([[0.0], [100.0]])
        dx = np.array([[0.0], [100.0]])
        treatment = np.array([[1, 1], [1, 1]])  # no opposite treatment exists
        outcomes = np.array([[1, 0], [0, 1]])
        links = build_counterfactual_links(px, dx, treatment, outcomes, 1.0, 1.0)
        assert not links.matched.any()
        assert np.array_equal(links.treatment_cf, treatment)
        assert np.array_equal(links.outcome_cf, outcomes)

    def test_neighbor_outcome_copied(self):
        # patient 0 ~ patient 1 (close), drug 0 ~ drug 1 (close)
        px = np.array([[0.0], [0.1]])
        dx = np.array([[0.0], [0.05]])
        treatment = np.array([[1, 1], [0, 0]])
        outcomes = np.array([[1, 1], [0, 0]])
        links = build_counterfactual_links(px, dx, treatment, outcomes, 1.0, 1.0)
        # pair (0, 0) has T=1; nearest opposite-treatment pair is patient 1
        assert links.matched[0, 0]
        assert links.neighbor_patient[0, 0] == 1
        assert links.outcome_cf[0, 0] == 0

    def test_nearest_neighbor_is_chosen(self):
        # Two donors with opposite treatment; the closer one must win.
        px = np.array([[0.0], [0.2], [0.9]])
        dx = np.array([[0.0]])
        treatment = np.array([[1], [0], [0]])
        outcomes = np.array([[1], [0], [1]])
        links = build_counterfactual_links(px, dx, treatment, outcomes, 5.0, 5.0)
        assert links.neighbor_patient[0, 0] == 1  # distance 0.2 < 0.9
        assert links.outcome_cf[0, 0] == 0

    def test_thresholds_exclude_far_donors(self):
        px = np.array([[0.0], [3.0]])
        dx = np.array([[0.0]])
        treatment = np.array([[1], [0]])
        outcomes = np.array([[1], [0]])
        links = build_counterfactual_links(px, dx, treatment, outcomes, 1.0, 1.0)
        assert not links.matched[0, 0]

    def test_match_rate_bounds(self):
        rng = np.random.default_rng(1)
        px = rng.normal(size=(12, 2))
        dx = rng.normal(size=(6, 2))
        treatment = rng.integers(0, 2, size=(12, 6))
        outcomes = rng.integers(0, 2, size=(12, 6))
        links = build_counterfactual_links(px, dx, treatment, outcomes, 100.0, 100.0)
        assert 0.0 <= links.match_rate <= 1.0
        # with huge thresholds and mixed treatments everything matches
        assert links.match_rate == 1.0

    def test_validation(self):
        px = np.zeros((2, 1))
        dx = np.zeros((2, 1))
        t = np.zeros((2, 2), dtype=int)
        y = np.zeros((2, 2), dtype=int)
        with pytest.raises(ValueError):
            build_counterfactual_links(px, dx, t, y[:1], 1.0, 1.0)
        with pytest.raises(ValueError):
            build_counterfactual_links(px[:1], dx, t, y, 1.0, 1.0)
        with pytest.raises(ValueError):
            build_counterfactual_links(px, dx[:1], t, y, 1.0, 1.0)
        with pytest.raises(ValueError):
            build_counterfactual_links(px, dx, t, y, 0.0, 1.0)

    def test_outcome_cf_only_changes_on_match(self):
        rng = np.random.default_rng(2)
        px = rng.normal(size=(8, 2))
        dx = rng.normal(size=(4, 2))
        treatment = rng.integers(0, 2, size=(8, 4))
        outcomes = rng.integers(0, 2, size=(8, 4))
        links = build_counterfactual_links(px, dx, treatment, outcomes, 0.5, 0.5)
        unmatched = ~links.matched
        assert np.array_equal(links.outcome_cf[unmatched], outcomes[unmatched])

    def test_suggest_gammas_monotone_in_quantile(self):
        rng = np.random.default_rng(3)
        px = rng.normal(size=(20, 3))
        dx = rng.normal(size=(10, 3))
        g1 = suggest_gammas(px, dx, quantile=0.1)
        g2 = suggest_gammas(px, dx, quantile=0.5)
        assert g1[0] < g2[0] and g1[1] < g2[1]

    def test_suggest_gammas_validation(self):
        with pytest.raises(ValueError):
            suggest_gammas(np.zeros((3, 1)), np.zeros((3, 1)), quantile=1.5)
