"""Tests for the classic-ML substrate (K-means, logistic regression, SVM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import KMeansResult, LinearSVM, LogisticRegression, MultiLabelSVM, kmeans


def two_blobs(n=100, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-3, 0), scale=0.5, size=(n // 2, 2))
    b = rng.normal(loc=(3, 0), scale=0.5, size=(n // 2, 2))
    x = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestKMeans:
    def test_separates_blobs(self):
        x, y = two_blobs()
        result = kmeans(x, 2, seed=0)
        # cluster labels must align with blob identity (up to permutation)
        same = (result.labels == y).mean()
        assert max(same, 1 - same) > 0.95

    def test_labels_match_nearest_center(self):
        x, _ = two_blobs(seed=1)
        result = kmeans(x, 3, seed=1)
        dists = ((x[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(result.labels, dists.argmin(axis=1))

    def test_inertia_decreases_with_k(self):
        x, _ = two_blobs(seed=2)
        inertias = [kmeans(x, k, seed=0).inertia for k in (1, 2, 4)]
        assert inertias[0] >= inertias[1] >= inertias[2]

    def test_k_equals_n(self):
        x = np.arange(10, dtype=float).reshape(5, 2)
        result = kmeans(x, 5, seed=0)
        assert result.inertia == pytest.approx(0.0)
        assert len(np.unique(result.labels)) == 5

    def test_k1(self):
        x, _ = two_blobs()
        result = kmeans(x, 1)
        assert np.allclose(result.centers[0], x.mean(axis=0))

    def test_validation(self):
        x = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(x, 0)
        with pytest.raises(ValueError):
            kmeans(x, 6)
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_identical_points(self):
        x = np.ones((20, 3))
        result = kmeans(x, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_predict_new_points(self):
        x, _ = two_blobs()
        result = kmeans(x, 2, seed=0)
        pred = result.predict(np.array([[-3.0, 0.0], [3.0, 0.0]]))
        assert pred[0] != pred[1]

    def test_deterministic(self):
        x, _ = two_blobs(seed=3)
        a = kmeans(x, 3, seed=7)
        b = kmeans(x, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5))
    def test_every_cluster_nonempty_on_spread_data(self, k):
        rng = np.random.default_rng(k)
        x = rng.normal(size=(50, 3))
        result = kmeans(x, k, seed=0)
        assert len(np.unique(result.labels)) == k


class TestLogisticRegression:
    def test_learns_separable(self):
        x, y = two_blobs()
        model = LogisticRegression(lr=0.5, max_iter=500).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.98

    def test_proba_bounds(self):
        x, y = two_blobs()
        probs = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_l2_shrinks_weights(self):
        x, y = two_blobs()
        small = LogisticRegression(l2=0.0, lr=0.5, max_iter=400).fit(x, y)
        large = LogisticRegression(l2=1.0, lr=0.5, max_iter=400).fit(x, y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)


class TestSVM:
    def test_learns_separable(self):
        x, y = two_blobs(seed=5)
        model = LinearSVM(epochs=80).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.97

    def test_decision_sign_matches_prediction(self):
        x, y = two_blobs(seed=6)
        model = LinearSVM().fit(x, y)
        scores = model.decision_function(x)
        assert np.array_equal(model.predict(x), (scores >= 0).astype(int))

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 2)))

    def test_invalid_reg(self):
        with pytest.raises(ValueError):
            LinearSVM(reg=0.0)

    def test_multilabel_ranking(self):
        """The OvR SVM must rank the true label drug above a random one."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 6))
        w = rng.normal(size=(6, 4))
        y = ((x @ w) > 0.5).astype(int)
        model = MultiLabelSVM(epochs=40).fit(x, y)
        scores = model.decision_matrix(x)
        assert scores.shape == (200, 4)
        # AUC-flavoured check: mean score on positives above negatives per label
        for label in range(4):
            pos, neg = y[:, label] == 1, y[:, label] == 0
            if pos.any() and neg.any():
                assert scores[pos, label].mean() > scores[neg, label].mean()

    def test_multilabel_constant_column(self):
        x = np.random.default_rng(1).normal(size=(30, 3))
        y = np.zeros((30, 2), dtype=int)
        y[:, 1] = 1
        model = MultiLabelSVM().fit(x, y)
        scores = model.decision_matrix(x)
        assert np.allclose(scores[:, 0], -1.0)
        assert np.allclose(scores[:, 1], 1.0)

    def test_multilabel_requires_2d(self):
        with pytest.raises(ValueError):
            MultiLabelSVM().fit(np.zeros((3, 2)), np.zeros(3))

    def test_multilabel_requires_fit(self):
        with pytest.raises(RuntimeError):
            MultiLabelSVM().decision_matrix(np.zeros((1, 2)))
