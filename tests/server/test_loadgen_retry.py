"""Load-generator retry policy: shed responses retried with backoff."""

import random

import pytest

from repro.server.loadgen import (
    RETRYABLE_STATUSES,
    InprocTarget,
    RetryPolicy,
    send_with_retries,
)


class ScriptedConnection:
    """A fake worker connection answering from a scripted status list."""

    def __init__(self, statuses, hints=None):
        self.statuses = list(statuses)
        self.hints = list(hints or [])
        self.calls = 0

    def request_with_hint(self, payload):
        self.calls += 1
        status = self.statuses.pop(0)
        hint = self.hints.pop(0) if self.hints else None
        return status, hint


class PlainConnection:
    """A conn with only the legacy ``request`` method (no hint support)."""

    def __init__(self, statuses):
        self.statuses = list(statuses)

    def request(self, payload):
        return self.statuses.pop(0)


@pytest.fixture()
def rng():
    return random.Random(11)


# Backoff bases are tiny so the sleeps inside send_with_retries are
# microseconds — these tests must stay fast.
FAST = RetryPolicy(retries=2, backoff_s=1e-6, backoff_cap_s=1e-5)


class TestSendWithRetries:
    def test_success_first_try_uses_no_retries(self, rng):
        conn = ScriptedConnection([200])
        assert send_with_retries(conn, {}, FAST, rng) == (200, 0)

    def test_shed_then_success(self, rng):
        conn = ScriptedConnection([503, 200])
        status, retries = send_with_retries(conn, {}, FAST, rng)
        assert (status, retries) == (200, 1)
        assert conn.calls == 2

    def test_budget_exhausted_returns_last_status(self, rng):
        conn = ScriptedConnection([503, 503, 503, 200])
        status, retries = send_with_retries(conn, {}, FAST, rng)
        assert (status, retries) == (503, 2)  # 1 try + 2 retries, gave up
        assert conn.calls == 3

    @pytest.mark.parametrize("status", sorted(RETRYABLE_STATUSES))
    def test_retryable_statuses(self, rng, status):
        conn = ScriptedConnection([status, 200])
        assert send_with_retries(conn, {}, FAST, rng) == (200, 1)

    @pytest.mark.parametrize("status", [400, 404, 500])
    def test_non_retryable_statuses_fail_fast(self, rng, status):
        conn = ScriptedConnection([status, 200])
        assert send_with_retries(conn, {}, FAST, rng) == (status, 0)
        assert conn.calls == 1

    def test_no_policy_means_fire_once(self, rng):
        conn = ScriptedConnection([503, 200])
        assert send_with_retries(conn, {}, None, rng) == (503, 0)
        assert conn.calls == 1

    def test_legacy_connection_without_hint_support(self, rng):
        conn = PlainConnection([503, 200])
        assert send_with_retries(conn, {}, FAST, rng) == (200, 1)

    def test_server_hint_floors_the_backoff(self, rng, monkeypatch):
        import repro.server.loadgen as loadgen

        slept = []
        monkeypatch.setattr(loadgen.time, "sleep", slept.append)
        conn = ScriptedConnection([503, 200], hints=[0.25, None])
        status, retries = send_with_retries(conn, {}, FAST, rng)
        assert (status, retries) == (200, 1)
        assert slept == [0.25]  # tiny jitter ceiling, hint dominates


class TestInprocTargetHints:
    def test_request_with_hint_surfaces_retry_after(self, monkeypatch):
        class FakeApp:
            def suggest(self, payload):
                return 503, {"error": "shed", "retry_after_s": 0.7}

        target = InprocTarget(FakeApp())
        conn = target.connect()
        assert conn.request_with_hint({}) == (503, 0.7)

    def test_request_with_hint_none_on_success(self):
        class FakeApp:
            def suggest(self, payload):
                return 200, {"suggestions": [[1, 2, 3]]}

        target = InprocTarget(FakeApp())
        assert target.connect().request_with_hint({}) == (200, None)
