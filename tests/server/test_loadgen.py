"""Load-generator unit tests (transport wiring, schedules, fast-paths)."""

import json

import numpy as np
import pytest

from repro.core import ServerConfig
from repro.server import GatewayApp, ModelRegistry
from repro.server.loadgen import (
    HTTPTarget,
    InprocTarget,
    burst_schedule,
    make_feature_pool,
    merge_report,
    poisson_schedule,
    run_load,
    run_open_loop,
)


class TestRunLoad:
    def test_inproc_load_reports_sane_numbers(self, model_root):
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0, score_block=8),
        )
        try:
            pool = make_feature_pool(app.registry.active().service.feature_dim)
            report = run_load(
                InprocTarget(app), pool, duration_s=0.3, concurrency=4, k=3
            )
        finally:
            app.close()
        assert report.errors == 0
        assert report.requests > 0
        assert report.throughput_rps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        assert report.mean_batch_rows >= 1.0

    def test_unreachable_target_fails_fast_instead_of_hanging(self):
        # Nothing listens on the discard port; every worker's connect
        # fails, which must break the start barrier and return promptly
        # (previously this dead-locked the caller forever).
        report = run_load(
            HTTPTarget("http://127.0.0.1:9"),
            make_feature_pool(4),
            duration_s=0.2,
            concurrency=4,
        )
        assert report.requests == 0
        assert report.errors >= 1
        assert report.throughput_rps == 0.0

    def test_validates_concurrency(self):
        with pytest.raises(ValueError):
            run_load(InprocTarget(None), make_feature_pool(4), concurrency=0)


class TestSchedules:
    def test_poisson_same_seed_is_bitwise_identical(self):
        first = poisson_schedule(300.0, 1.5, seed=42)
        second = poisson_schedule(300.0, 1.5, seed=42)
        assert np.array_equal(first, second)

    def test_poisson_different_seed_differs(self):
        assert not np.array_equal(
            poisson_schedule(300.0, 1.5, seed=1),
            poisson_schedule(300.0, 1.5, seed=2),
        )

    def test_poisson_shape_and_rate(self):
        schedule = poisson_schedule(500.0, 2.0, seed=7)
        assert (np.diff(schedule) >= 0).all()
        assert schedule[0] > 0 and schedule[-1] <= 2.0
        # Poisson count concentrates near rate*duration = 1000.
        assert 750 < schedule.size < 1250

    def test_poisson_validates_inputs(self):
        with pytest.raises(ValueError):
            poisson_schedule(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_schedule(10.0, -1.0)

    def test_burst_same_seed_is_bitwise_identical(self):
        kwargs = dict(period_s=0.5, burst_fraction=0.2, seed=9)
        assert np.array_equal(
            burst_schedule(100.0, 500.0, 2.0, **kwargs),
            burst_schedule(100.0, 500.0, 2.0, **kwargs),
        )

    def test_burst_windows_are_denser_than_base(self):
        schedule = burst_schedule(
            50.0, 400.0, 4.0, period_s=0.5, burst_fraction=0.25, seed=3
        )
        phase = np.mod(schedule, 0.5)
        in_burst = int((phase < 0.125).sum())
        outside = int((phase >= 0.125).sum())
        # Arrival *density* (count / window share) must reflect the
        # 8x rate ratio, not just the raw counts.
        assert in_burst / 0.25 > 2.0 * outside / 0.75

    def test_burst_validates_inputs(self):
        with pytest.raises(ValueError):
            burst_schedule(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            burst_schedule(100.0, 50.0, 1.0)  # peak below base
        with pytest.raises(ValueError):
            burst_schedule(10.0, 20.0, 1.0, burst_fraction=1.5)


class TestRunOpenLoop:
    def test_inproc_open_loop_reports_offered_rate(self, model_root):
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0),
        )
        try:
            pool = make_feature_pool(app.registry.active().service.feature_dim)
            schedule = poisson_schedule(150.0, 0.4, seed=5)
            report = run_open_loop(
                InprocTarget(app), pool, schedule, k=3, max_inflight=8
            )
        finally:
            app.close()
        assert report.mode == "poisson"
        assert report.errors == 0
        # Open loop: every scheduled arrival is dispatched, exactly once.
        assert report.requests == schedule.size
        assert report.offered_rps == pytest.approx(
            schedule.size / schedule[-1]
        )
        assert 0 < report.p50_ms <= report.p99_ms
        assert report.duration_s >= schedule[-1]

    def test_open_loop_validates_inputs(self):
        with pytest.raises(ValueError):
            run_open_loop(InprocTarget(None), make_feature_pool(4), np.array([]))
        with pytest.raises(ValueError):
            run_open_loop(
                InprocTarget(None),
                make_feature_pool(4),
                np.array([0.1]),
                max_inflight=0,
            )

    def test_open_loop_merges_into_bench_report(self, model_root, tmp_path):
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0),
        )
        try:
            pool = make_feature_pool(app.registry.active().service.feature_dim)
            schedule = burst_schedule(
                60.0, 240.0, 0.4, period_s=0.2, burst_fraction=0.25, seed=11
            )
            report = run_open_loop(
                InprocTarget(app), pool, schedule, mode="burst", max_inflight=8
            )
        finally:
            app.close()
        path = tmp_path / "BENCH_server.json"
        merge_report(str(path), "loadgen_closed", {"requests": 10})
        merge_report(str(path), "loadgen_open_loop", report.to_dict())
        merged = json.loads(path.read_text())
        assert set(merged) == {"loadgen_closed", "loadgen_open_loop"}
        section = merged["loadgen_open_loop"]
        assert section["mode"] == "burst"
        assert section["requests"] == schedule.size
        assert section["offered_rps"] > 0


class TestHelpers:
    def test_make_feature_pool_is_seeded(self):
        assert np.array_equal(make_feature_pool(8), make_feature_pool(8))
        assert make_feature_pool(8, pool_size=16).shape == (16, 8)

    def test_merge_report_preserves_other_sections(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_report(str(path), "a", {"x": 1})
        merge_report(str(path), "b", {"y": 2})
        merge_report(str(path), "a", {"x": 3})
        import json

        report = json.loads(path.read_text())
        assert report == {"a": {"x": 3}, "b": {"y": 2}}

    def test_http_target_rejects_non_http(self):
        with pytest.raises(ValueError):
            HTTPTarget("https://example.com")
