"""Load-generator unit tests (transport wiring, failure fast-paths)."""

import numpy as np
import pytest

from repro.core import ServerConfig
from repro.server import GatewayApp, ModelRegistry
from repro.server.loadgen import (
    HTTPTarget,
    InprocTarget,
    make_feature_pool,
    merge_report,
    run_load,
)


class TestRunLoad:
    def test_inproc_load_reports_sane_numbers(self, model_root):
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0, score_block=8),
        )
        try:
            pool = make_feature_pool(app.registry.active().service.feature_dim)
            report = run_load(
                InprocTarget(app), pool, duration_s=0.3, concurrency=4, k=3
            )
        finally:
            app.close()
        assert report.errors == 0
        assert report.requests > 0
        assert report.throughput_rps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        assert report.mean_batch_rows >= 1.0

    def test_unreachable_target_fails_fast_instead_of_hanging(self):
        # Nothing listens on the discard port; every worker's connect
        # fails, which must break the start barrier and return promptly
        # (previously this dead-locked the caller forever).
        report = run_load(
            HTTPTarget("http://127.0.0.1:9"),
            make_feature_pool(4),
            duration_s=0.2,
            concurrency=4,
        )
        assert report.requests == 0
        assert report.errors >= 1
        assert report.throughput_rps == 0.0

    def test_validates_concurrency(self):
        with pytest.raises(ValueError):
            run_load(InprocTarget(None), make_feature_pool(4), concurrency=0)


class TestHelpers:
    def test_make_feature_pool_is_seeded(self):
        assert np.array_equal(make_feature_pool(8), make_feature_pool(8))
        assert make_feature_pool(8, pool_size=16).shape == (16, 8)

    def test_merge_report_preserves_other_sections(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_report(str(path), "a", {"x": 1})
        merge_report(str(path), "b", {"y": 2})
        merge_report(str(path), "a", {"x": 3})
        import json

        report = json.loads(path.read_text())
        assert report == {"a": {"x": 3}, "b": {"y": 2}}

    def test_http_target_rejects_non_http(self):
        with pytest.raises(ValueError):
            HTTPTarget("https://example.com")
