"""CircuitBreaker state machine and the jittered retry backoff."""

import random

import pytest

from repro.server.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    backoff_delay,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)


class TestClosedState:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow() is True
        assert breaker.retry_after() == 0.0

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow() is True
        assert breaker.opens == 0

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never reached 3 consecutive

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0, clock=clock)


class TestOpenState:
    def test_threshold_trips_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_open_rejects_and_counts(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.allow() is False
        assert breaker.allow() is False
        assert breaker.rejections == 2

    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == 5.0
        clock.advance(2.0)
        assert breaker.retry_after() == 3.0
        clock.advance(10.0)
        assert breaker.retry_after() == 0.0


class TestHalfOpenState:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_cooldown_elapsed_reports_half_open(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

    def test_exactly_one_probe_allowed(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow() is True  # the probe
        assert breaker.allow() is False  # everyone else waits
        assert breaker.allow() is False

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() is True
        assert breaker.opens == 1

    def test_probe_failure_reopens_immediately(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow() is True
        breaker.record_failure()  # one bad probe is proof enough
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert breaker.allow() is False
        # A fresh cooldown starts from the failed probe.
        assert breaker.retry_after() == 5.0

    def test_reopen_then_recover(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED


class TestBackoffDelay:
    def test_deterministic_for_a_seeded_rng(self):
        a = [backoff_delay(i, 0.1, random.Random(3)) for i in range(5)]
        b = [backoff_delay(i, 0.1, random.Random(3)) for i in range(5)]
        assert a == b

    def test_bounded_by_exponential_ceiling(self):
        rng = random.Random(0)
        for attempt in range(10):
            delay = backoff_delay(attempt, 0.1, rng, cap_s=2.0)
            assert 0.0 <= delay <= min(2.0, 0.1 * 2**attempt)

    def test_cap_limits_growth(self):
        rng = random.Random(0)
        assert all(
            backoff_delay(attempt, 1.0, rng, cap_s=3.0) <= 3.0
            for attempt in range(20)
        )

    def test_never_undercuts_retry_after(self):
        rng = random.Random(0)
        for attempt in range(6):
            delay = backoff_delay(
                attempt, 0.001, rng, retry_after_s=1.5
            )
            assert delay >= 1.5

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1, 0.1, random.Random(0))
