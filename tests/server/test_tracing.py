"""Gateway tracing tests: phase decomposition, /v1/trace, propagation.

The acceptance property of the tracing subsystem lives here: one traced
``/v1/suggest`` produces a ``request.suggest`` root whose five phase
children (parse / queue_wait / batch_wait / score / serialize) account
for at least 90% of the root's duration, and the trace exports as valid
Chrome ``trace_event`` JSON.
"""

import http.client
import json

import pytest

import repro
from repro.core import ServerConfig
from repro.obs.trace import TRACE_HEADER, spans_from_chrome
from repro.server import GatewayApp, ModelRegistry, build_server, serve_in_thread
from repro.server.app import SUGGEST_PHASES


def make_app(model_root, **overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=1.0, score_block=8)
    defaults.update(overrides)
    return GatewayApp(ModelRegistry(model_root), ServerConfig(**defaults))


@pytest.fixture()
def traced_app(model_root):
    app = make_app(model_root, trace_sample=1.0)
    yield app
    app.close()


@pytest.fixture()
def untraced_app(model_root):
    app = make_app(model_root, trace_sample=0.0)
    yield app
    app.close()


def spans_by_trace(app, trace_id):
    return [s for s in app.tracer.drain() if s["trace"] == trace_id]


class TestPhaseDecomposition:
    def test_five_phases_cover_root(self, traced_app, fitted_system):
        """The acceptance criterion: phases sum to >= 90% of the root."""
        _system, pool = fitted_system
        status, body = traced_app.suggest(
            {"features": pool[:4].tolist(), "k": 3}
        )
        assert status == 200
        assert "trace_id" in body
        spans = spans_by_trace(traced_app, body["trace_id"])
        roots = [s for s in spans if s["name"] == "request.suggest"]
        assert len(roots) == 1
        root = roots[0]
        children = [
            s
            for s in spans
            if s["parent"] == root["span"] and s["name"] in SUGGEST_PHASES
        ]
        assert [c["name"] for c in children] == list(SUGGEST_PHASES)
        phase_total = sum(c["dur_s"] for c in children)
        assert root["dur_s"] > 0
        assert phase_total >= 0.9 * root["dur_s"]
        # Phases are contiguous: each starts where the previous ended
        # (modulo the scoring-thread wakeup gap before serialize).
        for earlier, later in zip(children, children[1:]):
            assert later["start"] >= earlier["start"]

    def test_root_records_status_and_batch(self, traced_app, fitted_system):
        _system, pool = fitted_system
        status, body = traced_app.suggest({"features": pool[0].tolist()})
        assert status == 200
        spans = spans_by_trace(traced_app, body["trace_id"])
        root = next(s for s in spans if s["name"] == "request.suggest")
        assert root["attrs"]["status"] == 200
        batch_events = [e for e in root["events"] if e["name"] == "batch"]
        assert len(batch_events) == 1

    def test_batch_score_span_links_request(self, traced_app, fitted_system):
        _system, pool = fitted_system
        status, body = traced_app.suggest({"features": pool[:2].tolist()})
        assert status == 200
        spans = spans_by_trace(traced_app, body["trace_id"])
        batches = [s for s in spans if s["name"] == "batch_score"]
        assert len(batches) == 1
        batch = batches[0]
        root = next(s for s in spans if s["name"] == "request.suggest")
        assert batch["parent"] == root["span"]
        assert body["trace_id"] in batch["attrs"]["traces"]
        assert batch["attrs"]["rows"] >= 2
        assert batch["attrs"]["version"] == body["version"]

    def test_error_requests_traced_without_phases(self, traced_app):
        status, body = traced_app.suggest({"features": "nonsense"})
        assert status == 400
        assert "trace_id" in body
        spans = spans_by_trace(traced_app, body["trace_id"])
        root = next(s for s in spans if s["name"] == "request.suggest")
        assert root["attrs"]["status"] == 400


class TestSampling:
    def test_disabled_records_nothing(self, untraced_app, fitted_system):
        _system, pool = fitted_system
        status, body = untraced_app.suggest({"features": pool[0].tolist()})
        assert status == 200
        assert "trace_id" not in body
        assert untraced_app.tracer.drain() == []

    def test_header_forces_sampling_at_rate_zero(
        self, untraced_app, fitted_system
    ):
        """A caller-provided trace context always samples the request."""
        _system, pool = fitted_system
        caller = "00000000feedc0de-0000beef"
        status, body = untraced_app.suggest(
            {"features": pool[0].tolist()}, trace_parent=caller
        )
        assert status == 200
        assert body["trace_id"] == "00000000feedc0de"
        spans = spans_by_trace(untraced_app, "00000000feedc0de")
        root = next(s for s in spans if s["name"] == "request.suggest")
        assert root["parent"] == "0000beef"

    def test_malformed_header_never_400s(self, untraced_app, fitted_system):
        _system, pool = fitted_system
        status, _body = untraced_app.suggest(
            {"features": pool[0].tolist()}, trace_parent="not a trace!!"
        )
        assert status == 200

    def test_partial_rate_samples_some(self, model_root, fitted_system):
        _system, pool = fitted_system
        app = make_app(model_root, trace_sample=0.5)
        try:
            traced = 0
            for _ in range(8):
                status, body = app.suggest({"features": pool[0].tolist()})
                assert status == 200
                traced += "trace_id" in body
            assert traced == 4  # deterministic accumulator at rate 0.5
        finally:
            app.close()


class TestTraceEndpoint:
    def test_spans_format(self, traced_app, fitted_system):
        _system, pool = fitted_system
        _status, body = traced_app.suggest({"features": pool[0].tolist()})
        status, payload = traced_app.trace_payload({})
        assert status == 200
        assert payload["sample"] == 1.0
        assert payload["count"] == len(payload["spans"])
        names = {s["name"] for s in payload["spans"]}
        assert "request.suggest" in names

    def test_trace_filter_and_limit(self, traced_app, fitted_system):
        _system, pool = fitted_system
        _s, first = traced_app.suggest({"features": pool[0].tolist()})
        _s, second = traced_app.suggest({"features": pool[1].tolist()})
        status, payload = traced_app.trace_payload(
            {"trace": first["trace_id"]}
        )
        assert status == 200
        assert payload["spans"]
        assert {s["trace"] for s in payload["spans"]} == {first["trace_id"]}
        status, payload = traced_app.trace_payload({"limit": "2"})
        assert len(payload["spans"]) == 2
        status, _payload = traced_app.trace_payload({"limit": "many"})
        assert status == 400

    def test_chrome_format_round_trips(self, traced_app, fitted_system):
        _system, pool = fitted_system
        _s, body = traced_app.suggest({"features": pool[0].tolist()})
        status, document = traced_app.trace_payload({"format": "chrome"})
        assert status == 200
        assert document["displayTimeUnit"] == "ms"
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        spans = spans_from_chrome(document)
        assert any(
            s["trace"] == body["trace_id"] and s["name"] == "request.suggest"
            for s in spans
        )


class TestHttpPropagation:
    @pytest.fixture()
    def live(self, traced_app):
        server = build_server(traced_app, port=0)
        _thread, stop = serve_in_thread(server)
        yield traced_app, server.server_address[1]
        stop()

    def request(self, port, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15.0)
        try:
            send = {"Content-Type": "application/json"}
            send.update(headers or {})
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=send,
            )
            response = conn.getresponse()
            raw = response.read()
            return response.status, json.loads(raw), dict(response.getheaders())
        finally:
            conn.close()

    def test_response_carries_trace_header(self, live, fitted_system):
        _app, port = live
        _system, pool = fitted_system
        status, body, headers = self.request(
            port, "POST", "/v1/suggest", {"features": pool[0].tolist()}
        )
        assert status == 200
        assert headers.get(TRACE_HEADER) == body["trace_id"]

    def test_client_trace_joins_server_spans(self, live, fitted_system):
        app, port = live
        _system, pool = fitted_system
        caller = "00000000cafef00d-deadbeef"
        status, body, headers = self.request(
            port,
            "POST",
            "/v1/suggest",
            {"features": pool[0].tolist()},
            headers={TRACE_HEADER: caller},
        )
        assert status == 200
        assert body["trace_id"] == "00000000cafef00d"
        status, payload, _ = self.request(
            port, "GET", "/v1/trace?trace=00000000cafef00d&format=spans"
        )
        assert status == 200
        root = next(
            s for s in payload["spans"] if s["name"] == "request.suggest"
        )
        assert root["parent"] == "deadbeef"

    def test_get_trace_endpoint_over_http(self, live, fitted_system):
        _app, port = live
        _system, pool = fitted_system
        self.request(
            port, "POST", "/v1/suggest", {"features": pool[0].tolist()}
        )
        status, payload, _ = self.request(port, "GET", "/v1/trace")
        assert status == 200
        assert payload["count"] >= 1


class TestSurfacing:
    def test_healthz_reports_version_and_sample(self, traced_app):
        status, body = traced_app.healthz()
        assert status == 200
        assert body["repro_version"] == repro.__version__
        assert body["trace_sample"] == 1.0
        assert "uptime_seconds" in body

    def test_metrics_phase_histograms(self, traced_app, fitted_system):
        _system, pool = fitted_system
        traced_app.suggest({"features": pool[0].tolist()})
        text = traced_app.metrics_text()
        assert "# TYPE repro_server_phase_latency_seconds histogram" in text
        assert "# HELP repro_server_phase_latency_seconds" in text
        for phase in SUGGEST_PHASES:
            assert f'phase="{phase}"' in text
        assert 'le="+Inf"' in text
        assert "repro_server_trace_sample 1.0" in text

    def test_phase_metrics_collected_even_unsampled(
        self, untraced_app, fitted_system
    ):
        """Histograms are always-on; spans obey the sample switch."""
        _system, pool = fitted_system
        untraced_app.suggest({"features": pool[0].tolist()})
        text = untraced_app.metrics_text()
        assert 'phase="score"' in text
        assert untraced_app.tracer.drain() == []

    def test_registry_swap_emits_instant(self, traced_app):
        status, _body = traced_app.reload()
        assert status == 200
        names = {s["name"] for s in traced_app.tracer.drain()}
        # An unchanged root means no swap happened — but the wiring is
        # live: force one event through the observer hook directly.
        traced_app._registry_event("registry.swap", {"version": "vX"})
        spans = traced_app.tracer.drain()
        # The startup reload records a real swap instant too — take the
        # newest.
        swap = next(
            s for s in reversed(spans) if s["name"] == "registry.swap"
        )
        assert swap["attrs"]["version"] == "vX"
        assert swap["dur_s"] == 0.0
        assert names is not None


class TestTraceLogSink:
    def test_spans_written_to_jsonl(self, model_root, fitted_system, tmp_path):
        from repro.obs.log import read_jsonl

        _system, pool = fitted_system
        log_path = tmp_path / "trace.jsonl"
        app = make_app(model_root, trace_sample=1.0, trace_log=str(log_path))
        try:
            status, body = app.suggest({"features": pool[0].tolist()})
            assert status == 200
        finally:
            app.close()
        records = read_jsonl(log_path)
        assert any(
            r["name"] == "request.suggest" and r["trace"] == body["trace_id"]
            for r in records
        )
