"""Shared fixtures for the gateway tests: one tiny fitted system.

The fit (120 patients, hidden 16, short epochs) takes well under a
second; session scope shares it across every test module here.

The pool tests additionally get ``pool_factory``: launch a real
``python -m repro.server <root> --workers N`` subprocess (a supervisor
plus forked workers — pre-fork pools cannot be exercised from inside a
threaded pytest process) and a :class:`PoolHandle` to talk to it.
"""

import http.client
import itertools
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import DSSDDI, DSSDDIConfig, DDIGCNConfig, MDGCNConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.server import publish_artifact, read_pool_state

REPO_ROOT = Path(__file__).resolve().parents[2]


def http_json(host, port, method, path, body=None, timeout=15.0, headers=None):
    """One request, fresh connection; returns (status, parsed body)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        if body is not None:
            conn.request(method, path, body=json.dumps(body), headers=send_headers)
        else:
            conn.request(method, path)
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw)
        except ValueError:
            parsed = raw.decode("utf-8", "replace")
        return response.status, parsed
    finally:
        conn.close()


class PoolHandle:
    """A running ``repro-serve --workers N`` subprocess under test."""

    def __init__(self, proc, stats_dir):
        self.proc = proc
        self.stats_dir = Path(stats_dir)
        self.host = None
        self.port = None

    def state(self):
        """Current pool.json contents (None before the first write)."""
        return read_pool_state(self.stats_dir)

    def worker_pids(self):
        state = self.state() or {}
        return {int(wid): pid for wid, pid in (state.get("workers") or {}).items()}

    def wait_ready(self, workers, timeout=120.0):
        """Block until every worker is spawned and /healthz answers 200."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                out = self.proc.stdout.read() if self.proc.stdout else ""
                raise RuntimeError(
                    f"pool exited early (code {self.proc.returncode}): {out[-2000:]}"
                )
            state = self.state()
            if state and len(state.get("workers") or {}) == workers:
                self.host, self.port = state["host"], int(state["port"])
                try:
                    status, _ = http_json(
                        self.host, self.port, "GET", "/healthz", timeout=5.0
                    )
                    if status == 200:
                        return state
                except OSError:
                    pass
            time.sleep(0.1)
        raise TimeoutError(f"pool not ready after {timeout}s")

    def get(self, path, **kwargs):
        return http_json(self.host, self.port, "GET", path, **kwargs)

    def post(self, path, body, **kwargs):
        return http_json(self.host, self.port, "POST", path, body=body, **kwargs)

    def wait_for_respawn(self, dead_pid, workers, timeout=30.0):
        """Block until the pool is back to ``workers`` pids without ``dead_pid``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pids = self.worker_pids()
            if len(pids) == workers and dead_pid not in pids.values():
                return pids
            time.sleep(0.1)
        raise TimeoutError(
            f"worker pool did not respawn within {timeout}s "
            f"(pids now: {self.worker_pids()})"
        )

    def terminate(self, timeout=40.0):
        """SIGTERM the supervisor and wait; returns its exit code."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


@pytest.fixture
def pool_factory(model_root, tmp_path):
    """Launcher for real pre-fork pool subprocesses, with cleanup."""
    handles = []
    counter = itertools.count()

    def launch(workers=2, root=None, extra_args=(), wait=True):
        stats_dir = tmp_path / f"pool-{next(counter)}"
        cmd = [
            sys.executable,
            "-m",
            "repro.server",
            str(root if root is not None else model_root),
            "--workers",
            str(workers),
            "--port",
            "0",
            "--stats-dir",
            str(stats_dir),
            "--stats-interval",
            "0.2",
            *extra_args,
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            cmd,
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        handle = PoolHandle(proc, stats_dir)
        handles.append(handle)
        if wait:
            handle.wait_ready(workers)
        return handle

    yield launch

    for handle in handles:
        try:
            if handle.proc.poll() is None:
                handle.proc.send_signal(signal.SIGTERM)
                try:
                    handle.proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    handle.proc.kill()
                    handle.proc.wait(timeout=10)
        except OSError:
            pass
        # Belt and braces: no orphaned workers may outlive the test.
        for pid in handle.worker_pids().values():
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass


@pytest.fixture(scope="session")
def fitted_system():
    """(fitted DSSDDI, standardized held-out features) at toy scale."""
    cohort = generate_chronic_cohort(num_patients=120, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=1)
    config = DSSDDIConfig(
        ddi=DDIGCNConfig(epochs=10, hidden_dim=16),
        md=MDGCNConfig(epochs=30, hidden_dim=16),
    )
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]


@pytest.fixture(scope="session")
def model_root(fitted_system, tmp_path_factory):
    """An artifact root with one published version of the tiny system."""
    system, _pool = fitted_system
    root = tmp_path_factory.mktemp("registry") / "models"
    publish_artifact(system, root)
    return root
