"""Shared fixtures for the gateway tests: one tiny fitted system.

The fit (120 patients, hidden 16, short epochs) takes well under a
second; session scope shares it across every test module here.
"""

import pytest

from repro.core import DSSDDI, DSSDDIConfig, DDIGCNConfig, MDGCNConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.server import publish_artifact


@pytest.fixture(scope="session")
def fitted_system():
    """(fitted DSSDDI, standardized held-out features) at toy scale."""
    cohort = generate_chronic_cohort(num_patients=120, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=1)
    config = DSSDDIConfig(
        ddi=DDIGCNConfig(epochs=10, hidden_dim=16),
        md=MDGCNConfig(epochs=30, hidden_dim=16),
    )
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]


@pytest.fixture(scope="session")
def model_root(fitted_system, tmp_path_factory):
    """An artifact root with one published version of the tiny system."""
    system, _pool = fitted_system
    root = tmp_path_factory.mktemp("registry") / "models"
    publish_artifact(system, root)
    return root
