"""Unit tests for the gateway telemetry collectors."""

import threading

from repro.server import (
    BatchSizeHistogram,
    CounterSet,
    GatewayMetrics,
    LatencyReservoir,
)
from repro.server.metrics import (
    PHASE_BUCKETS,
    LatencyHistogram,
    _escape_label_value,
    _help_text,
)


class TestCounterSet:
    def test_inc_and_value(self):
        counters = CounterSet()
        assert counters.value("x") == 0
        counters.inc("x")
        counters.inc("x", by=2)
        assert counters.value("x") == 3

    def test_labels_are_separate_series(self):
        counters = CounterSet()
        counters.inc("req", {"endpoint": "suggest"})
        counters.inc("req", {"endpoint": "explain"})
        counters.inc("req", {"endpoint": "suggest"})
        assert counters.value("req", {"endpoint": "suggest"}) == 2
        assert counters.value("req", {"endpoint": "explain"}) == 1
        assert counters.value("req") == 0

    def test_concurrent_increments_lose_nothing(self):
        counters = CounterSet()

        def spin():
            for _ in range(2000):
                counters.inc("n")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.value("n") == 16000


class TestLatencyReservoir:
    def test_exact_quantiles_when_under_capacity(self):
        reservoir = LatencyReservoir(size=1000)
        for ms in range(1, 101):  # 1..100 ms
            reservoir.observe(ms / 1000)
        assert abs(reservoir.quantile(0.5) - 0.051) < 0.002
        assert reservoir.quantile(0.99) >= 0.099
        assert reservoir.count == 100
        assert abs(reservoir.total - sum(range(1, 101)) / 1000) < 1e-9

    def test_reservoir_stays_bounded(self):
        reservoir = LatencyReservoir(size=64)
        for i in range(10000):
            reservoir.observe(float(i))
        count, total, sample = reservoir.snapshot()
        assert count == 10000
        assert len(sample) == 64
        assert total == sum(range(10000))

    def test_empty_reservoir_reports_zero(self):
        assert LatencyReservoir(size=8).quantile(0.99) == 0.0


class TestBatchSizeHistogram:
    def test_buckets_and_mean(self):
        hist = BatchSizeHistogram()
        for size in (1, 1, 2, 8, 300):
            hist.observe(size)
        cumulative = dict(hist.cumulative())
        assert cumulative["1"] == 2
        assert cumulative["2"] == 3
        assert cumulative["8"] == 4
        assert cumulative["256"] == 4
        assert cumulative["+Inf"] == 5
        assert hist.count == 5
        assert hist.mean == (1 + 1 + 2 + 8 + 300) / 5


class TestRender:
    def test_prometheus_text_contains_all_families(self):
        metrics = GatewayMetrics(reservoir_size=128)
        metrics.observe_request("suggest", 200, 0.004)
        metrics.observe_request("suggest", 400, 0.001)
        metrics.batch_sizes.observe(16)
        text = metrics.render(
            extra_gauges=[("repro_server_model_info", {"version": "v0001-abc"}, 1.0)]
        )
        assert (
            'repro_server_requests_total{endpoint="suggest",status="200"} 1' in text
        )
        assert (
            'repro_server_requests_total{endpoint="suggest",status="400"} 1' in text
        )
        assert 'quantile="0.99"' in text
        assert 'repro_server_request_latency_seconds_count{endpoint="suggest"} 2' in text
        assert 'repro_server_batch_size_bucket{le="16"} 1' in text
        assert 'repro_server_batch_size_bucket{le="+Inf"} 1' in text
        assert 'repro_server_model_info{version="v0001-abc"} 1.0' in text
        assert text.endswith("\n")

    def test_latency_reservoirs_created_per_endpoint(self):
        metrics = GatewayMetrics()
        assert metrics.latency("a") is metrics.latency("a")
        assert metrics.latency("a") is not metrics.latency("b")

    def test_every_family_has_help_and_type(self):
        """Prometheus text-format compliance: # HELP precedes # TYPE."""
        metrics = GatewayMetrics(reservoir_size=16)
        metrics.observe_request("suggest", 200, 0.004)
        metrics.batch_sizes.observe(4)
        metrics.observe_phases([("parse", 0.0001), ("score", 0.002)])
        text = metrics.render(
            extra_gauges=[("repro_server_uptime_seconds", {}, 1.5)]
        )
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[i - 1] == f"# HELP {family} {_help_text(family)}", (
                    f"family {family} lacks a preceding HELP line"
                )

    def test_escaped_label_values_in_render(self):
        metrics = GatewayMetrics(reservoir_size=16)
        metrics.counters.inc("weird_total", {"path": 'a\\b"c\nd'})
        text = metrics.render()
        assert 'path="a\\\\b\\"c\\nd"' in text


class TestLabelEscaping:
    def test_backslash_escaped_first(self):
        # A pre-escaped quote must not be double-escaped out of order.
        assert _escape_label_value('\\"') == '\\\\\\"'

    def test_plain_values_untouched(self):
        assert _escape_label_value("v0001-abc") == "v0001-abc"

    def test_newline_becomes_literal_backslash_n(self):
        assert _escape_label_value("a\nb") == "a\\nb"


class TestLatencyHistogram:
    def test_cumulative_buckets(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for seconds in (0.0005, 0.002, 0.05, 5.0):
            hist.observe(seconds)
        cumulative = dict(hist.cumulative())
        assert cumulative["0.001"] == 1
        assert cumulative["0.01"] == 2
        assert cumulative["0.1"] == 3
        assert cumulative["+Inf"] == 4
        assert hist.count == 4
        assert abs(hist.total - 5.0525) < 1e-9

    def test_default_phase_buckets_are_monotone(self):
        assert list(PHASE_BUCKETS) == sorted(PHASE_BUCKETS)

    def test_phase_histograms_shared_per_name(self):
        metrics = GatewayMetrics()
        assert metrics.phase("parse") is metrics.phase("parse")
        metrics.observe_phases([("parse", -0.5)])  # clamped, not negative
        assert metrics.phase("parse").total == 0.0
        assert metrics.phase("parse").count == 1

    def test_phase_section_rendered_only_when_observed(self):
        metrics = GatewayMetrics(reservoir_size=16)
        assert "phase_latency" not in metrics.render()
        metrics.observe_phases([("queue_wait", 0.003)])
        text = metrics.render()
        assert (
            'repro_server_phase_latency_seconds_bucket{le="0.0025",'
            'phase="queue_wait"} 0' in text
            or 'repro_server_phase_latency_seconds_bucket{phase="queue_wait",'
            'le="0.0025"} 0' in text
        )
        assert 'repro_server_phase_latency_seconds_count{phase="queue_wait"} 1' in text
