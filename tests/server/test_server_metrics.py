"""Unit tests for the gateway telemetry collectors."""

import threading

from repro.server import (
    BatchSizeHistogram,
    CounterSet,
    GatewayMetrics,
    LatencyReservoir,
)


class TestCounterSet:
    def test_inc_and_value(self):
        counters = CounterSet()
        assert counters.value("x") == 0
        counters.inc("x")
        counters.inc("x", by=2)
        assert counters.value("x") == 3

    def test_labels_are_separate_series(self):
        counters = CounterSet()
        counters.inc("req", {"endpoint": "suggest"})
        counters.inc("req", {"endpoint": "explain"})
        counters.inc("req", {"endpoint": "suggest"})
        assert counters.value("req", {"endpoint": "suggest"}) == 2
        assert counters.value("req", {"endpoint": "explain"}) == 1
        assert counters.value("req") == 0

    def test_concurrent_increments_lose_nothing(self):
        counters = CounterSet()

        def spin():
            for _ in range(2000):
                counters.inc("n")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.value("n") == 16000


class TestLatencyReservoir:
    def test_exact_quantiles_when_under_capacity(self):
        reservoir = LatencyReservoir(size=1000)
        for ms in range(1, 101):  # 1..100 ms
            reservoir.observe(ms / 1000)
        assert abs(reservoir.quantile(0.5) - 0.051) < 0.002
        assert reservoir.quantile(0.99) >= 0.099
        assert reservoir.count == 100
        assert abs(reservoir.total - sum(range(1, 101)) / 1000) < 1e-9

    def test_reservoir_stays_bounded(self):
        reservoir = LatencyReservoir(size=64)
        for i in range(10000):
            reservoir.observe(float(i))
        count, total, sample = reservoir.snapshot()
        assert count == 10000
        assert len(sample) == 64
        assert total == sum(range(10000))

    def test_empty_reservoir_reports_zero(self):
        assert LatencyReservoir(size=8).quantile(0.99) == 0.0


class TestBatchSizeHistogram:
    def test_buckets_and_mean(self):
        hist = BatchSizeHistogram()
        for size in (1, 1, 2, 8, 300):
            hist.observe(size)
        cumulative = dict(hist.cumulative())
        assert cumulative["1"] == 2
        assert cumulative["2"] == 3
        assert cumulative["8"] == 4
        assert cumulative["256"] == 4
        assert cumulative["+Inf"] == 5
        assert hist.count == 5
        assert hist.mean == (1 + 1 + 2 + 8 + 300) / 5


class TestRender:
    def test_prometheus_text_contains_all_families(self):
        metrics = GatewayMetrics(reservoir_size=128)
        metrics.observe_request("suggest", 200, 0.004)
        metrics.observe_request("suggest", 400, 0.001)
        metrics.batch_sizes.observe(16)
        text = metrics.render(
            extra_gauges=[("repro_server_model_info", {"version": "v0001-abc"}, 1.0)]
        )
        assert (
            'repro_server_requests_total{endpoint="suggest",status="200"} 1' in text
        )
        assert (
            'repro_server_requests_total{endpoint="suggest",status="400"} 1' in text
        )
        assert 'quantile="0.99"' in text
        assert 'repro_server_request_latency_seconds_count{endpoint="suggest"} 2' in text
        assert 'repro_server_batch_size_bucket{le="16"} 1' in text
        assert 'repro_server_batch_size_bucket{le="+Inf"} 1' in text
        assert 'repro_server_model_info{version="v0001-abc"} 1.0' in text
        assert text.endswith("\n")

    def test_latency_reservoirs_created_per_endpoint(self):
        metrics = GatewayMetrics()
        assert metrics.latency("a") is metrics.latency("a")
        assert metrics.latency("a") is not metrics.latency("b")
