"""HTTP parsing hardening: structured 4xx for garbage, gateway survives.

The transport promises: any malformed input — bad JSON, wrong
content-type, oversize or truncated bodies, invalid Content-Length,
unknown routes, raw byte noise — earns a *structured* 4xx (a JSON error
body), never a 5xx and never a wedged handler thread.  A seeded fuzz
loop (stdlib ``random`` only) hammers those paths, and every test ends
by proving the gateway still serves normal traffic.
"""

import http.client
import json
import random
import socket

import pytest

from repro.core import ServerConfig
from repro.server import GatewayApp, ModelRegistry, build_server, serve_in_thread
from repro.server.http import MAX_BODY_BYTES


def http_json(host, port, method, path, body=None, timeout=15.0, headers=None):
    """One request on a fresh connection; returns (status, parsed body)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        if body is not None:
            conn.request(method, path, body=json.dumps(body), headers=send_headers)
        else:
            conn.request(method, path)
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw)
        except ValueError:
            parsed = raw.decode("utf-8", "replace")
        return response.status, parsed
    finally:
        conn.close()


@pytest.fixture(scope="module")
def live_gateway(model_root):
    """A threaded single-process gateway on an ephemeral port."""
    app = GatewayApp(
        ModelRegistry(model_root),
        ServerConfig(max_batch_size=8, max_wait_ms=1.0),
    )
    server = build_server(app, port=0)
    _thread, stop = serve_in_thread(server)
    host, port = server.server_address[:2]
    yield app, host, port
    stop()
    app.close()


def raw_exchange(host, port, data: bytes, timeout=10.0) -> bytes:
    """Send raw bytes, half-close, read whatever the server answers."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


def _status_of(raw: bytes) -> int:
    line = raw.split(b"\r\n", 1)[0]
    parts = line.split()
    return int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else -1


def assert_gateway_alive(host, port):
    """The invariant every fuzz case must leave behind."""
    status, health = http_json(host, port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


class TestStructuredErrors:
    def test_malformed_json_is_400_with_error_body(self, live_gateway):
        _app, host, port = live_gateway
        for garbage in (b"{not json", b"[1, 2", b"\xff\xfe\x00", b"nan nan"):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request(
                "POST", "/v1/suggest", body=garbage,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            assert response.status == 400
            assert "error" in body
        assert_gateway_alive(host, port)

    def test_wrong_content_type_is_415(self, live_gateway):
        _app, host, port = live_gateway
        status, body = http_json(
            host, port, "POST", "/v1/suggest",
            body={"features": [[0.0]]},
            headers={"Content-Type": "text/csv"},
        )
        assert status == 415
        assert "Content-Type" in body["error"]
        assert_gateway_alive(host, port)

    def test_json_content_type_with_charset_is_accepted(
        self, live_gateway, fitted_system
    ):
        _system, x_pool = fitted_system
        _app, host, port = live_gateway
        status, _body = http_json(
            host, port, "POST", "/v1/suggest",
            body={"features": [x_pool[0].tolist()], "k": 2},
            headers={"Content-Type": "application/json; charset=utf-8"},
        )
        assert status == 200

    def test_missing_content_type_is_tolerated(self, live_gateway, fitted_system):
        # Lenient by design: plenty of tools omit the header entirely.
        _system, x_pool = fitted_system
        _app, host, port = live_gateway
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request(
            "POST", "/v1/suggest",
            body=json.dumps({"features": [x_pool[0].tolist()], "k": 2}),
            headers={"Content-Type": ""},
        )
        response = conn.getresponse()
        status = response.status
        response.read()
        conn.close()
        assert status == 200

    def test_oversize_body_is_400_not_read(self, live_gateway):
        _app, host, port = live_gateway
        # Advertise > MAX_BODY_BYTES; the server must refuse up front
        # rather than buffer a gigabyte.
        request = (
            b"POST /v1/suggest HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        raw = raw_exchange(host, port, request + b"{}")
        assert _status_of(raw) == 400
        assert b"too large" in raw
        assert_gateway_alive(host, port)

    def test_truncated_body_is_400_naming_truncation(self, live_gateway):
        _app, host, port = live_gateway
        request = (
            b"POST /v1/suggest HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 500\r\n\r\n"
            b'{"features": ['  # 486 bytes never arrive
        )
        raw = raw_exchange(host, port, request)
        assert _status_of(raw) == 400
        assert b"truncated" in raw
        assert_gateway_alive(host, port)

    def test_invalid_content_length_is_400(self, live_gateway):
        _app, host, port = live_gateway
        for bad in (b"banana", b"-5", b"1e3"):
            request = (
                b"POST /v1/suggest HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: " + bad + b"\r\n\r\n"
            )
            raw = raw_exchange(host, port, request)
            assert _status_of(raw) == 400, bad
        assert_gateway_alive(host, port)

    def test_unknown_routes_are_404(self, live_gateway):
        _app, host, port = live_gateway
        status, body = http_json(host, port, "GET", "/v1/nope")
        assert status == 404 and "no such endpoint" in body["error"]
        status, body = http_json(host, port, "POST", "/admin", body={})
        assert status == 404 and "no such endpoint" in body["error"]


class TestFuzz:
    def test_seeded_byte_noise_never_kills_the_gateway(self, live_gateway):
        """Raw fuzz: random request lines, headers, bodies — no 5xx."""
        _app, host, port = live_gateway
        rng = random.Random(0xDD1)
        methods = [b"POST", b"GET", b"PUT", b"GARBAGE", b"\x01\x02"]
        paths = [b"/v1/suggest", b"/v1/explain", b"/", b"/%00", b"/../../etc"]
        for i in range(40):
            if rng.random() < 0.3:
                # Pure byte noise — not even an HTTP request line.
                blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            else:
                body = bytes(
                    rng.randrange(256) for _ in range(rng.randrange(0, 64))
                )
                headers = b"Host: fuzz\r\n"
                if rng.random() < 0.8:
                    headers += b"Content-Length: %d\r\n" % len(body)
                if rng.random() < 0.5:
                    headers += b"Content-Type: application/json\r\n"
                blob = (
                    rng.choice(methods) + b" " + rng.choice(paths)
                    + b" HTTP/1.1\r\n" + headers + b"\r\n" + body
                )
            try:
                raw = raw_exchange(host, port, blob, timeout=5.0)
            except OSError:
                continue  # server closed on us — allowed, crash is not
            status = _status_of(raw)
            # 4xx and the stdlib's 501 (unsupported method) are fine;
            # an internal 500 means a handler blew up on byte noise.
            assert status != 500, (i, blob[:60], raw[:120])
        assert_gateway_alive(host, port)

    def test_seeded_structured_fuzz_of_suggest_bodies(self, live_gateway):
        """JSON-level fuzz: wrong shapes/types/values earn 400s only."""
        _app, host, port = live_gateway
        rng = random.Random(97)
        nasty_values = [
            None, {}, [], "features", 12, -1, 1e308, "NaN",
            [[]], [["a", "b"]], [[None]], [[1e400]],
            {"nested": "dict"}, [[1.0] * 3], [[float("inf")]],
        ]
        for _ in range(40):
            body = {}
            if rng.random() < 0.9:
                body["features"] = rng.choice(nasty_values)
            if rng.random() < 0.5:
                body["k"] = rng.choice([0, -3, "three", 10**9, None, 2.5])
            status, parsed = http_json(
                host, port, "POST", "/v1/suggest", body=body
            )
            assert status in (200, 400), (body, status, parsed)
            if status == 400:
                assert "error" in parsed
        assert_gateway_alive(host, port)

    def test_handler_threads_survive_connection_aborts(self, live_gateway):
        """Clients that vanish mid-request must not leak broken state."""
        _app, host, port = live_gateway
        for _ in range(10):
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(b"POST /v1/suggest HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
            sock.close()  # abort before sending the body
        assert_gateway_alive(host, port)
