"""Tests for the versioned model registry: publish, scan, swap, prune."""

import numpy as np
import pytest

from repro.serving import SuggestionService
from repro.server import (
    ModelRegistry,
    NoModelError,
    prune_versions,
    publish_artifact,
    scan_versions,
)


class TestPublish:
    def test_publish_creates_sequential_versions(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        v1 = publish_artifact(system, root)
        v2 = publish_artifact(system, root, reuse_identical=False)
        assert v1.name.startswith("v0001-")
        assert v2.name.startswith("v0002-")
        assert v1.digest == v2.digest  # same weights, distinct versions
        assert (v1.path / "manifest.json").is_file()
        assert (v2.path / "arrays.npz").is_file()

    def test_publish_is_idempotent_for_identical_content(
        self, fitted_system, tmp_path
    ):
        system, _ = fitted_system
        root = tmp_path / "models"
        v1 = publish_artifact(system, root)
        again = publish_artifact(system, root)
        assert again.name == v1.name
        assert len(scan_versions(root)) == 1

    def test_publish_copies_existing_artifact_dir(self, fitted_system, tmp_path):
        system, pool = fitted_system
        saved = tmp_path / "plain_artifact"
        system.save(saved)
        root = tmp_path / "models"
        version = publish_artifact(saved, root)
        service = SuggestionService.load(version.path)
        assert np.array_equal(
            service.predict_scores(pool), system.predict_scores(pool)
        )

    def test_publish_missing_source_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            publish_artifact(tmp_path / "nope", tmp_path / "models")

    def test_publish_steps_over_conflicting_seq_dir(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        # A junk directory squatting on the next sequence number (e.g. a
        # racing publisher's different-content version) must be stepped
        # over, not fought or looped on.
        (root / "v0002-deadbeef").mkdir()
        version = publish_artifact(system, root, reuse_identical=False)
        assert version.name.startswith("v0003-")


class TestScan:
    def test_scan_ignores_incomplete_and_hidden_dirs(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        (root / "half-written").mkdir()
        (root / "half-written" / "manifest.json").write_text("{}")
        (root / ".publish-inflight").mkdir()
        assert [v.name.startswith("v0001-") for v in scan_versions(root)] == [True]

    def test_single_artifact_dir_is_a_pseudo_version(self, fitted_system, tmp_path):
        system, _ = fitted_system
        saved = tmp_path / "model_dir"
        system.save(saved)
        versions = scan_versions(saved)
        assert len(versions) == 1
        assert versions[0].name == "model_dir"

    def test_scan_missing_root_is_empty(self, tmp_path):
        assert scan_versions(tmp_path / "missing") == []


class TestRegistry:
    def test_reload_serves_latest_and_is_stable(self, model_root, fitted_system):
        _system, pool = fitted_system
        registry = ModelRegistry(model_root)
        swapped, version = registry.reload()
        assert swapped and version.name.startswith("v0001-")
        # A second reload with nothing new is a no-op.
        swapped, _ = registry.reload()
        assert not swapped
        assert registry.swaps == 1
        suggestions = registry.active().service.suggest(pool[:3], k=3)
        assert suggestions.shape == (3, 3)

    def test_hot_swap_on_new_version(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        registry = ModelRegistry(root)
        registry.reload()
        old_handle = registry.active()
        publish_artifact(system, root, reuse_identical=False)
        swapped, version = registry.reload()
        assert swapped and version.name.startswith("v0002-")
        # Old handle object still fully functional for in-flight requests.
        assert old_handle.version.name.startswith("v0001-")
        assert old_handle.service.num_drugs == registry.active().service.num_drugs

    def test_pinned_version_wins_over_latest(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        v1 = publish_artifact(system, root)
        publish_artifact(system, root, reuse_identical=False)
        registry = ModelRegistry(root, pinned_version=v1.name)
        registry.reload()
        assert registry.active().version.name == v1.name
        with pytest.raises(NoModelError, match="pinned"):
            ModelRegistry(root, pinned_version="v9999-zzzzzzzz").reload()

    def test_active_before_reload_raises(self, model_root):
        registry = ModelRegistry(model_root)
        with pytest.raises(NoModelError):
            registry.active()
        assert not registry.has_model

    def test_empty_root_raises_no_model(self, tmp_path):
        with pytest.raises(NoModelError):
            ModelRegistry(tmp_path / "empty").reload()

    def test_score_block_override_applies(self, model_root, fitted_system):
        _system, pool = fitted_system
        registry = ModelRegistry(model_root, score_block=8)
        registry.reload()
        service = registry.active().service
        assert service.config.score_block == 8
        batched = service.predict_scores(pool)
        rows = np.vstack([service.predict_scores(pool[i : i + 1]) for i in range(len(pool))])
        assert np.array_equal(batched, rows)


class TestPrune:
    def test_prune_keeps_newest(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        names = [
            publish_artifact(system, root, reuse_identical=False).name
            for _ in range(4)
        ]
        removed = prune_versions(root, keep_last=2)
        assert removed == names[:2]
        assert [v.name for v in scan_versions(root)] == names[2:]

    def test_registry_prune_never_removes_active(self, fitted_system, tmp_path):
        system, _ = fitted_system
        root = tmp_path / "models"
        v1 = publish_artifact(system, root)
        for _ in range(3):
            publish_artifact(system, root, reuse_identical=False)
        registry = ModelRegistry(root, pinned_version=v1.name)
        registry.reload()
        removed = registry.prune(keep_last=1)
        remaining = [v.name for v in scan_versions(root)]
        assert v1.name in remaining  # active-but-old survives
        assert len(remaining) == 2  # newest + active
        assert v1.name not in removed

    def test_prune_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError):
            prune_versions(tmp_path, keep_last=0)
