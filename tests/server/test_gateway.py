"""End-to-end gateway tests: app routes, validation, HTTP transport."""

import json
import http.client

import numpy as np
import pytest

from repro.core import ServerConfig
from repro.serving import SuggestionService
from repro.server import (
    GatewayApp,
    ModelRegistry,
    build_server,
    publish_artifact,
    serve_in_thread,
)


@pytest.fixture()
def app(model_root):
    gateway = GatewayApp(
        ModelRegistry(model_root),
        ServerConfig(max_batch_size=8, max_wait_ms=1.0, score_block=8),
    )
    yield gateway
    gateway.close()


class TestSuggestRoute:
    def test_matches_direct_service(self, app, model_root, fitted_system):
        _system, pool = fitted_system
        status, body = app.suggest({"features": pool[:4].tolist(), "k": 3})
        assert status == 200
        reference = SuggestionService.load(
            model_root / body["version"],
        )
        # Same artifact + same fixed-shape scoring config as the gateway.
        from dataclasses import replace

        reference = SuggestionService(
            reference._system, config=replace(reference.config, score_block=8)
        )
        assert body["suggestions"] == reference.suggest(pool[:4], k=3).tolist()
        assert body["k"] == 3

    def test_single_row_and_scores(self, app, fitted_system):
        _system, pool = fitted_system
        status, body = app.suggest(
            {"features": pool[0].tolist(), "k": 2, "return_scores": True}
        )
        assert status == 200
        assert len(body["suggestions"]) == 1
        assert len(body["suggestions"][0]) == 2
        scores = np.asarray(body["scores"])
        assert scores.shape == (1, 86)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_default_k_from_serving_config(self, app, fitted_system):
        _system, pool = fitted_system
        status, body = app.suggest({"features": pool[0].tolist()})
        assert status == 200
        assert body["k"] == 3  # ServingConfig.default_k

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({}, "missing required field"),
            ({"features": "text"}, "must be numeric"),
            ({"features": [[[1.0]]]}, "1-D or 2-D"),
            ({"features": []}, "at least one row"),
            ({"features": [[1.0, 2.0]]}, "dimension mismatch"),
        ],
    )
    def test_validation_errors(self, app, payload, message):
        status, body = app.suggest(payload)
        assert status == 400
        assert message in body["error"]

    def test_nan_and_bad_k_rejected(self, app, fitted_system):
        _system, pool = fitted_system
        row = pool[0].tolist()
        row[0] = float("nan")
        status, body = app.suggest({"features": [row]})
        assert status == 400 and "finite" in body["error"]
        status, body = app.suggest({"features": pool[0].tolist(), "k": 0})
        assert status == 400 and "k must be" in body["error"]

    def test_row_cap_enforced(self, model_root, fitted_system):
        _system, pool = fitted_system
        gateway = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0, max_request_rows=2),
        )
        try:
            status, body = gateway.suggest({"features": pool[:3].tolist()})
            assert status == 400
            assert "too many rows" in body["error"]
        finally:
            gateway.close()


class TestOtherRoutes:
    def test_explain_and_cache(self, app):
        status, first = app.suggest({"features": [[0.0] * 71], "k": 3})
        assert status == 200
        status, body = app.explain({"suggested": first["suggestions"][0]})
        assert status == 200
        assert body["suggested"] == sorted(set(first["suggestions"][0]))
        assert "satisfaction" in body and "text" in body
        # Second identical explain comes from the LRU cache.
        app.explain({"suggested": first["suggestions"][0]})
        stats = app.registry.active().service.stats()
        assert stats.cache_hits >= 1

    def test_explain_validation(self, app):
        assert app.explain({})[0] == 400
        assert app.explain({"suggested": []})[0] == 400
        assert app.explain({"suggested": ["x"]})[0] == 400
        status, body = app.explain({"suggested": [99999]})
        assert status == 400 and "unknown drug ids" in body["error"]

    def test_healthz_and_versions(self, app):
        status, health = app.healthz()
        assert status == 200
        assert health["status"] == "ok"
        assert health["feature_dim"] == 71
        assert health["num_drugs"] == 86
        status, versions = app.versions()
        assert status == 200
        assert versions["active"] == health["version"]
        assert versions["versions"][0]["active"] is True

    def test_reload_endpoint_reports_noop_and_swap(self, fitted_system, tmp_path):
        # Private artifact root: this test publishes into it, and the
        # session-scoped model_root must stay single-version for others.
        system, _pool = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        gateway = GatewayApp(
            ModelRegistry(root),
            ServerConfig(max_batch_size=8, max_wait_ms=1.0, score_block=8),
        )
        try:
            status, body = gateway.reload()
            assert status == 200 and body["reloaded"] is False
            publish_artifact(system, root, reuse_identical=False)
            status, body = gateway.reload()
            assert status == 200 and body["reloaded"] is True
            assert body["version"].startswith("v0002-")
        finally:
            gateway.close()

    def test_file_watcher_auto_swaps(self, fitted_system, tmp_path):
        import time

        system, _pool = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        gateway = GatewayApp(
            ModelRegistry(root),
            ServerConfig(max_batch_size=4, max_wait_ms=1.0, watch_interval_s=0.05),
        )
        try:
            _status, before = gateway.healthz()
            published = publish_artifact(system, root, reuse_identical=False)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _status, health = gateway.healthz()
                if health["version"] == published.name:
                    break
                time.sleep(0.02)
            assert gateway.healthz()[1]["version"] == published.name != before["version"]
            assert gateway.metrics.counters.value(
                "repro_server_model_swaps_total", {"trigger": "watch"}
            ) == 1
        finally:
            gateway.close()

    def test_metrics_text(self, app, fitted_system):
        _system, pool = fitted_system
        app.suggest({"features": pool[0].tolist()})
        text = app.metrics_text()
        assert 'repro_server_requests_total{endpoint="suggest",status="200"}' in text
        assert "repro_server_batch_size_bucket" in text
        assert "repro_server_model_info" in text
        assert "repro_server_uptime_seconds" in text

    def test_503_before_any_model(self, tmp_path):
        gateway = GatewayApp(
            ModelRegistry(tmp_path / "empty"),
            ServerConfig(max_batch_size=2, max_wait_ms=1.0),
            lazy=True,
        )
        try:
            assert gateway.suggest({"features": [[0.0] * 71]})[0] == 503
            assert gateway.explain({"suggested": [1]})[0] == 503
            assert gateway.healthz()[0] == 503
            assert gateway.reload()[0] == 503
        finally:
            gateway.close()


class TestHTTPTransport:
    @pytest.fixture()
    def live(self, app):
        server = build_server(app, port=0)
        _thread, stop = serve_in_thread(server)
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.server_address[1], timeout=10
        )
        yield conn
        conn.close()
        stop()

    def _get(self, conn, path):
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()

    def _post(self, conn, path, payload):
        conn.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()

    def test_full_surface(self, live, fitted_system):
        _system, pool = fitted_system
        status, raw = self._get(live, "/healthz")
        assert status == 200 and json.loads(raw)["status"] == "ok"

        status, raw = self._post(
            live, "/v1/suggest", {"features": [pool[0].tolist()], "k": 3}
        )
        body = json.loads(raw)
        assert status == 200 and len(body["suggestions"][0]) == 3

        status, raw = self._post(
            live, "/v1/explain", {"suggested": body["suggestions"][0]}
        )
        assert status == 200 and "text" in json.loads(raw)

        status, raw = self._get(live, "/metrics")
        assert status == 200 and b"repro_server_requests_total" in raw

        status, raw = self._post(live, "/-/reload", {})
        assert status == 200 and json.loads(raw)["reloaded"] is False

        status, raw = self._get(live, "/v1/versions")
        assert status == 200 and json.loads(raw)["active"]

    def test_unexpected_handler_error_returns_500(self, live, app, monkeypatch):
        def explode():
            raise RuntimeError("boom")

        monkeypatch.setattr(app, "healthz", explode)
        status, raw = self._get(live, "/healthz")
        assert status == 500
        assert b"internal error" in raw and b"boom" in raw
        # The connection was marked close; a fresh one still works.
        monkeypatch.undo()
        import http.client as hc

        conn = hc.HTTPConnection(
            live.host, live.port, timeout=10
        )
        conn.request("GET", "/healthz")
        assert conn.getresponse().status == 200
        conn.close()

    def test_http_errors(self, live):
        assert self._get(live, "/nope")[0] == 404
        assert self._post(live, "/v1/nope", {})[0] == 404
        status, raw = self._post(live, "/v1/suggest", {"features": [[1.0]]})
        assert status == 400
        live.request("POST", "/v1/suggest", body=b"not json")
        response = live.getresponse()
        assert response.status == 400
        assert b"invalid JSON" in response.read()
