"""Pre-fork pool: supervision units + one real multi-process pool.

The unit half covers the pieces in isolation (backoff policy, the
cross-process stats board, the drain-time request tracker, pool state
round-trips).  The subprocess half boots an actual
``python -m repro.server --workers 2`` pool — supervisor + forked
workers over one shared socket — and checks the full surface: pool.json
pids, per-worker identity in /healthz and /v1/suggest, mmap'd loading,
``repro_pool_*`` metric aggregation, bitwise score parity with the
single-process gateway, and a clean SIGTERM exit.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core import ServerConfig
from repro.server import (
    GatewayApp,
    ModelRegistry,
    RequestTracker,
    StatsBoard,
    backoff_delay,
    read_pool_state,
    write_pool_state,
)
from repro.server.loadgen import make_feature_pool


class TestBackoffDelay:
    def test_exponential_growth_from_base(self):
        assert backoff_delay(0) == 0.0
        assert backoff_delay(1, base=0.1, cap=5.0) == pytest.approx(0.1)
        assert backoff_delay(2, base=0.1, cap=5.0) == pytest.approx(0.2)
        assert backoff_delay(4, base=0.1, cap=5.0) == pytest.approx(0.8)

    def test_cap_bounds_a_crash_loop(self):
        assert backoff_delay(30, base=0.1, cap=5.0) == 5.0
        assert backoff_delay(1000, base=0.5, cap=2.0) == 2.0


class TestStatsBoard:
    def test_publish_read_roundtrip(self, tmp_path):
        board = StatsBoard(tmp_path)
        board.publish(0, {"requests_total": 5, "pid": 111})
        board.publish(1, {"requests_total": 7, "pid": 222})
        snaps = board.read_all()
        assert [s["worker"] for s in snaps] == [0, 1]
        assert sum(s["requests_total"] for s in snaps) == 12
        assert all("published_at" in s for s in snaps)

    def test_republish_replaces_not_appends(self, tmp_path):
        board = StatsBoard(tmp_path)
        board.publish(0, {"requests_total": 5})
        board.publish(0, {"requests_total": 9})
        snaps = board.read_all()
        assert len(snaps) == 1
        assert snaps[0]["requests_total"] == 9

    def test_clear_removes_worker(self, tmp_path):
        board = StatsBoard(tmp_path)
        board.publish(3, {"requests_total": 1})
        board.clear(3)
        board.clear(3)  # idempotent
        assert board.read_all() == []

    def test_corrupt_and_foreign_files_are_skipped(self, tmp_path):
        board = StatsBoard(tmp_path)
        board.publish(0, {"requests_total": 2})
        (tmp_path / "worker-1.json").write_text("{half a json")
        (tmp_path / "notes.txt").write_text("not a snapshot")
        snaps = board.read_all()
        assert len(snaps) == 1 and snaps[0]["worker"] == 0

    def test_render_aggregate_sums_workers(self, tmp_path):
        board = StatsBoard(tmp_path)
        board.publish(0, {"requests_total": 10, "errors_total": 1,
                          "patients_scored": 10, "inflight": 2, "pid": 11})
        board.publish(1, {"requests_total": 20, "errors_total": 0,
                          "patients_scored": 20, "inflight": 1, "pid": 22})
        text = board.render_aggregate()
        assert "repro_pool_workers_reporting 2" in text
        assert "repro_pool_requests_total 30" in text
        assert "repro_pool_errors_total 1" in text
        assert "repro_pool_patients_scored_total 30" in text
        assert "repro_pool_inflight_requests 3" in text
        assert 'repro_pool_worker_requests_total{worker="0"} 10' in text
        assert 'repro_pool_worker_requests_total{worker="1"} 20' in text

    def test_empty_board_renders_zeroes(self, tmp_path):
        text = StatsBoard(tmp_path / "fresh").render_aggregate()
        assert "repro_pool_workers_reporting 0" in text
        assert "repro_pool_requests_total 0" in text


class TestPoolState:
    def test_roundtrip(self, tmp_path):
        write_pool_state(tmp_path, {"port": 1234, "workers": {"0": 99}})
        state = read_pool_state(tmp_path)
        assert state == {"port": 1234, "workers": {"0": 99}}

    def test_missing_or_corrupt_is_none(self, tmp_path):
        assert read_pool_state(tmp_path / "nowhere") is None
        (tmp_path / "pool.json").write_text("nope{")
        assert read_pool_state(tmp_path) is None


class TestRequestTracker:
    def test_counts_inflight_and_total(self):
        tracker = RequestTracker()
        tracker.begin()
        tracker.begin()
        assert tracker.inflight == 2
        tracker.end()
        assert tracker.inflight == 1
        assert tracker.total == 2

    def test_wait_idle_returns_when_drained(self):
        tracker = RequestTracker()
        tracker.begin()

        def finish():
            time.sleep(0.05)
            tracker.end()

        thread = threading.Thread(target=finish)
        thread.start()
        assert tracker.wait_idle(timeout=5.0) is True
        thread.join()

    def test_wait_idle_times_out_with_stuck_request(self):
        tracker = RequestTracker()
        tracker.begin()
        started = time.monotonic()
        assert tracker.wait_idle(timeout=0.1) is False
        assert time.monotonic() - started < 2.0

    def test_idle_tracker_returns_immediately(self):
        assert RequestTracker().wait_idle(timeout=0.0) is True


class TestPoolSubprocess:
    def test_two_worker_pool_end_to_end(self, pool_factory, fitted_system):
        _system, x_pool = fitted_system
        pool = pool_factory(workers=2)

        # --- pool.json is the live-pid record -------------------------
        pids = pool.worker_pids()
        assert sorted(pids) == [0, 1]
        for pid in pids.values():
            os.kill(pid, 0)  # alive (raises if not)
        state = pool.state()
        assert state["mmap"] is True
        assert state["num_workers"] == 2

        # --- per-worker identity + mmap in /healthz -------------------
        status, health = pool.get("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        worker = health["worker"]
        assert worker["worker"] in (0, 1)
        assert worker["pid"] == pids[worker["worker"]]
        assert worker["mmap"] is True  # workers open the artifact mmap'd

        # --- suggest works and names the worker that served it --------
        payload = {"features": [x_pool[0].tolist()], "k": 3,
                   "return_scores": True}
        status, body = pool.post("/v1/suggest", payload)
        assert status == 200
        assert body["worker"] in (0, 1)
        assert len(body["suggestions"][0]) == 3

        # --- bitwise parity with the single-process gateway -----------
        app = GatewayApp(ModelRegistry(pool.state()["root"]), ServerConfig())
        try:
            ref_status, ref_body = app.suggest(payload)
        finally:
            app.close()
        assert ref_status == 200
        assert body["suggestions"] == ref_body["suggestions"]
        assert body["scores"] == ref_body["scores"]
        assert body["version"] == ref_body["version"]

        # --- /metrics aggregates across processes ---------------------
        sent = 0
        for row in make_feature_pool(x_pool.shape[1], pool_size=24, seed=3):
            status, _ = pool.post(
                "/v1/suggest", {"features": [row.tolist()], "k": 2}
            )
            assert status == 200
            sent += 1
        deadline = time.monotonic() + 10.0
        seen_total = -1
        while time.monotonic() < deadline:
            status, text = pool.get("/metrics")
            assert status == 200
            assert "repro_pool_workers_reporting" in text
            for line in text.splitlines():
                if line.startswith("repro_pool_requests_total "):
                    seen_total = int(line.split()[-1])
            if seen_total >= sent:
                break
            time.sleep(0.3)  # snapshots publish every stats_interval
        assert seen_total >= sent
        assert "repro_server_worker_info" in text

        # --- SIGTERM: clean drain, exit 0, empty pid map --------------
        assert pool.terminate() == 0
        assert pool.state()["workers"] == {}

    def test_requests_spread_across_workers(self, pool_factory, fitted_system):
        # The kernel load-balances accepts over the shared socket; with
        # fresh connections per request both workers should serve some.
        _system, x_pool = fitted_system
        pool = pool_factory(workers=2)
        seen = set()
        payload = {"features": [x_pool[1].tolist()], "k": 2}
        for _ in range(60):
            status, body = pool.post("/v1/suggest", payload)
            assert status == 200
            seen.add(body["worker"])
            if seen == {0, 1}:
                break
        assert seen == {0, 1}
