"""Fault injection against a live pre-fork pool.

Two failure modes the pool exists to survive:

* **SIGKILL a worker under load** — the parent must reap and respawn it
  (fresh pid in pool.json) while the listener, held open by the parent,
  keeps accepting: the error budget is bounded to the requests that
  worker had in flight, and /healthz keeps answering throughout.
* **SIGTERM the pool with requests parked in the micro-batcher** — the
  drain path must answer every in-flight request (all 200s, none
  dropped) before the workers exit, and the supervisor exits 0.
"""

import os
import signal
import threading
import time

from repro.server import StatsBoard


class TestWorkerCrash:
    def test_sigkill_worker_respawns_and_listener_stays_up(
        self, pool_factory, fitted_system
    ):
        _system, x_pool = fitted_system
        pool = pool_factory(workers=2)
        payload = {"features": [x_pool[0].tolist()], "k": 3}

        statuses = []
        health_probes = []
        stop = threading.Event()

        def loader():
            while not stop.is_set():
                try:
                    status, _ = pool.post("/v1/suggest", payload, timeout=10.0)
                    statuses.append(status)
                except OSError:
                    statuses.append(-1)

        def health_prober():
            while not stop.is_set():
                try:
                    status, _ = pool.get("/healthz", timeout=5.0)
                    health_probes.append(status)
                except OSError:
                    health_probes.append(-1)
                time.sleep(0.05)

        threads = [threading.Thread(target=loader, daemon=True) for _ in range(3)]
        threads.append(threading.Thread(target=health_prober, daemon=True))
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.5)  # load flowing before the fault
            victim_pid = pool.worker_pids()[0]
            os.kill(victim_pid, signal.SIGKILL)
            new_pids = pool.wait_for_respawn(victim_pid, workers=2, timeout=30.0)
            time.sleep(0.5)  # load against the healed pool
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=15.0)

        # Respawn: still worker ids {0, 1}, the dead pid replaced.
        assert sorted(new_pids) == [0, 1]
        assert victim_pid not in new_pids.values()
        for pid in new_pids.values():
            os.kill(pid, 0)

        # Bounded errors: only the victim's in-flight requests may fail.
        total = len(statuses)
        errors = sum(1 for s in statuses if s != 200)
        assert total > 0
        assert statuses.count(200) > 0
        assert errors <= max(3, total // 4), (errors, total)

        # Listener continuity: /healthz stayed reachable throughout —
        # the parent never dropped the socket during the crash.
        ok_probes = health_probes.count(200)
        assert ok_probes >= max(1, int(0.8 * len(health_probes)))

        # The healed pool serves normally.
        status, body = pool.post("/v1/suggest", payload)
        assert status == 200
        assert body["worker"] in (0, 1)

    def test_repeated_crashes_back_off_but_recover(
        self, pool_factory, fitted_system
    ):
        _system, x_pool = fitted_system
        pool = pool_factory(workers=2)
        # Kill the same worker slot twice in a row; the supervisor's
        # backoff grows but stays far below the test timeout.
        for _round in range(2):
            victim_pid = pool.worker_pids()[1]
            os.kill(victim_pid, signal.SIGKILL)
            pool.wait_for_respawn(victim_pid, workers=2, timeout=30.0)
        assert (pool.state() or {}).get("respawns_total", 0) >= 2
        status, _ = pool.post(
            "/v1/suggest", {"features": [x_pool[2].tolist()], "k": 2}
        )
        assert status == 200


class TestGracefulDrain:
    def test_sigterm_drains_inflight_requests(self, pool_factory, fitted_system):
        _system, x_pool = fitted_system
        # A long micro-batch window parks requests inside the workers:
        # when SIGTERM lands they are genuinely in flight, not yet
        # answered — exactly what the drain path must not drop.
        pool = pool_factory(
            workers=2,
            extra_args=(
                "--max-wait-ms", "500",
                "--max-batch-size", "64",
                "--drain-timeout", "15",
                "--stats-interval", "0.1",
            ),
        )
        inflight_target = 10
        results = []
        results_lock = threading.Lock()

        def one_request(index):
            try:
                status, body = pool.post(
                    "/v1/suggest",
                    {"features": [x_pool[index % len(x_pool)].tolist()], "k": 3},
                    timeout=30.0,
                )
            except OSError:
                status, body = -1, None
            with results_lock:
                results.append((status, body))

        threads = [
            threading.Thread(target=one_request, args=(i,), daemon=True)
            for i in range(inflight_target)
        ]
        for thread in threads:
            thread.start()

        # Wait until the pool itself reports every request dispatched
        # (parked in a batcher) before pulling the trigger — guarantees
        # they are in flight, not still in a TCP backlog.
        deadline = time.monotonic() + 10.0
        inflight_seen = 0
        while time.monotonic() < deadline:
            snaps = StatsBoard(pool.stats_dir).read_all()
            inflight_seen = sum(int(s.get("inflight", 0)) for s in snaps)
            if inflight_seen >= inflight_target:
                break
            time.sleep(0.05)
        assert inflight_seen >= inflight_target, (
            f"only {inflight_seen} in flight before SIGTERM"
        )

        exit_code = pool.terminate(timeout=60.0)
        for thread in threads:
            thread.join(timeout=30.0)

        # Every parked request was answered, none dropped, parent clean.
        assert len(results) == inflight_target
        assert [status for status, _ in results] == [200] * inflight_target
        for _status, body in results:
            assert body and len(body["suggestions"][0]) == 3
        assert exit_code == 0
        assert pool.state()["workers"] == {}
