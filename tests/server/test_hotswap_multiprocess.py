"""Hot-swap across a multi-worker pool under sustained load.

Each pool worker runs its own registry watcher, so publishing a new
version must swap *every* worker independently while requests keep
flowing.  The regression pinned here: publish during ~1k in-flight
requests against 4 workers, and require

* zero dropped/failed requests across the swap,
* both versions observed in responses (traffic really spanned it),
* every worker converged to the new version, and
* post-swap responses bitwise-identical across workers (the published
  content is byte-identical, so scores must be too — per worker and
  per version).
"""

import threading
import time

import pytest

from repro.server import publish_artifact, scan_versions


@pytest.fixture
def private_root(model_root, tmp_path):
    """A root this test may publish into (model_root is session-shared)."""
    root = tmp_path / "swap-root"
    source = scan_versions(model_root)[0].path
    publish_artifact(source, root)
    return root


class TestHotSwapMultiProcess:
    def test_publish_under_load_swaps_all_workers_zero_drops(
        self, pool_factory, fitted_system, private_root, model_root
    ):
        _system, x_pool = fitted_system
        workers = 4
        pool = pool_factory(
            workers=workers,
            root=private_root,
            extra_args=("--watch-interval", "0.2"),
        )
        old_version = scan_versions(private_root)[0].name

        total_requests = 1000
        sender_count = 8
        per_sender = total_requests // sender_count
        results = [[] for _ in range(sender_count)]
        publish_gate = threading.Event()

        def sender(index):
            mine = results[index]
            payload = {
                "features": [x_pool[index % len(x_pool)].tolist()],
                "k": 3,
            }
            for i in range(per_sender):
                try:
                    status, body = pool.post("/v1/suggest", payload, timeout=30.0)
                except OSError:
                    status, body = -1, None
                mine.append((status, body))
                if i == per_sender // 4:
                    publish_gate.set()  # traffic is flowing: swap now

        threads = [
            threading.Thread(target=sender, args=(i,), daemon=True)
            for i in range(sender_count)
        ]
        for thread in threads:
            thread.start()

        # Publish a byte-identical artifact as a *new* version while the
        # load runs; every worker's watcher must pick it up.
        assert publish_gate.wait(timeout=60.0)
        source = scan_versions(model_root)[0].path
        new_version = publish_artifact(
            source, private_root, reuse_identical=False
        ).name
        assert new_version != old_version

        for thread in threads:
            thread.join(timeout=300.0)

        flat = [item for sender_results in results for item in sender_results]
        assert len(flat) == sender_count * per_sender

        # Zero drops across the swap: every single request answered 200.
        failed = [(s, b) for s, b in flat if s != 200]
        assert failed == []

        # The load really spanned the swap: both versions answered.
        versions_seen = {body["version"] for _status, body in flat}
        assert versions_seen == {old_version, new_version}

        # Every worker eventually serves the new version (per-worker
        # watchers are independent; poll /healthz until all converge).
        converged = {}
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and len(converged) < workers:
            status, health = pool.get("/healthz")
            assert status == 200
            if health["version"] == new_version:
                converged[health["worker"]["worker"]] = True
            time.sleep(0.05)
        assert len(converged) == workers, (
            f"only workers {sorted(converged)} swapped to {new_version}"
        )

        # Post-swap responses are bitwise-identical across workers.
        probe = {
            "features": [x_pool[0].tolist()],
            "k": 3,
            "return_scores": True,
        }
        by_worker = {}
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and len(by_worker) < 2:
            status, body = pool.post("/v1/suggest", probe)
            assert status == 200
            assert body["version"] == new_version
            by_worker[body["worker"]] = body
        assert len(by_worker) >= 2, "never saw two distinct workers"
        replies = list(by_worker.values())
        for other in replies[1:]:
            assert other["scores"] == replies[0]["scores"]
            assert other["suggestions"] == replies[0]["suggestions"]
