"""Cross-process trace continuity over the pre-fork worker pool.

A client sends ``X-Repro-Trace`` to a ``--workers 2`` pool; the worker
that serves the request (a child of the supervisor) joins the client's
trace.  Merging the client-side root span with the spans fetched back
from ``GET /v1/trace`` must yield ONE trace whose spans carry at least
two distinct pids — the test process's and the serving worker's — and
that merged trace must round-trip through the Chrome exporter.
"""

import os
import time

import numpy as np

from repro.obs.trace import (
    TRACE_HEADER,
    Tracer,
    chrome_trace,
    format_header,
    spans_from_chrome,
)


def fetch_trace_spans(handle, trace_id, timeout=30.0):
    """Poll ``GET /v1/trace`` until the worker holding the trace answers.

    The kernel load-balances accepted connections across workers, and
    each worker keeps its own span ring — retry until the GET lands on
    the worker that served the traced request.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = handle.get(f"/v1/trace?trace={trace_id}")
        if status == 200 and payload.get("spans"):
            return payload["spans"]
        time.sleep(0.05)
    raise TimeoutError(f"no worker returned spans for trace {trace_id}")


class TestCrossProcessTrace:
    def test_one_trace_spans_client_and_worker_pids(
        self, pool_factory, fitted_system
    ):
        _system, pool = fitted_system
        handle = pool_factory(
            workers=2, extra_args=["--trace-sample", "1.0"]
        )
        worker_pids = set(handle.worker_pids().values())

        # Client side of the trace: a root span in the test process.
        tracer = Tracer(sample=1.0, seed=99, service="test-client")
        with tracer.span("client.request") as client_root:
            status, body = handle.post(
                "/v1/suggest",
                {"features": np.asarray(pool[0]).tolist(), "k": 3},
                headers={TRACE_HEADER: format_header(client_root)},
            )
        assert status == 200
        assert body["trace_id"] == client_root.trace_id

        server_spans = fetch_trace_spans(handle, client_root.trace_id)
        merged = tracer.drain(trace_id=client_root.trace_id) + server_spans

        # One trace...
        assert {s["trace"] for s in merged} == {client_root.trace_id}
        # ...rooted at the client span, continued by the worker...
        server_root = next(
            s for s in server_spans if s["name"] == "request.suggest"
        )
        assert server_root["parent"] == client_root.span_id
        # ...across at least two processes: this one and a worker child.
        pids = {s["pid"] for s in merged}
        assert os.getpid() in pids
        assert pids & worker_pids
        assert len(pids) >= 2

        # And the merged trace survives the Chrome export round trip.
        document = chrome_trace(merged, service="pool-test")
        restored = spans_from_chrome(document)
        assert {s["span"] for s in restored} == {s["span"] for s in merged}
        assert {s["pid"] for s in restored} == pids

    def test_untraced_pool_requests_stay_silent(
        self, pool_factory, fitted_system
    ):
        _system, pool = fitted_system
        handle = pool_factory(workers=2)  # default: sampling off
        status, body = handle.post(
            "/v1/suggest", {"features": np.asarray(pool[0]).tolist()}
        )
        assert status == 200
        assert "trace_id" not in body
        # Every worker's ring is empty.
        for _ in range(6):
            status, payload = handle.get("/v1/trace")
            assert status == 200
            assert payload["spans"] == []
