"""Concurrency acceptance: micro-batched == sequential, bitwise.

The gateway's core correctness claim (ISSUE 4): N threads hammering
``suggest`` through the micro-batcher must produce results bitwise-equal
to sequential :meth:`repro.serving.SuggestionService.suggest` on the
same artifact — including raw scores, and including across a mid-flight
hot-swap to a byte-identical artifact version.  Fixed-shape blocked
scoring (``score_block``) is what makes this achievable: every patient's
scores are a pure function of their features, independent of how the
batcher happened to group concurrent requests.
"""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.core import ServerConfig
from repro.serving import SuggestionService
from repro.server import GatewayApp, ModelRegistry, publish_artifact

CONCURRENCY = 16
REQUESTS_PER_THREAD = 25
K = 3
SCORE_BLOCK = 8


@pytest.fixture()
def sequential_service(fitted_system):
    """The sequential baseline: same fitted system, same scoring config."""
    system, _pool = fitted_system
    return SuggestionService(
        system, config=replace(system.config.serving, score_block=SCORE_BLOCK)
    )


def hammer(app, pool, swap=None):
    """Fire CONCURRENCY threads of single-row suggests; return results.

    ``swap`` (optional) is a zero-arg callable run from a separate thread
    mid-load (the hot-swap injection).  Returns ``{(thread, i): (row_index,
    suggestions, scores)}`` with every response's served version collected.
    """
    results = {}
    versions = set()
    errors = []
    start = threading.Barrier(CONCURRENCY + (2 if swap else 1))

    def worker(tid):
        rng = np.random.default_rng(tid)
        start.wait()
        for i in range(REQUESTS_PER_THREAD):
            row = int(rng.integers(0, len(pool)))
            status, body = app.suggest(
                {"features": [pool[row].tolist()], "k": K, "return_scores": True}
            )
            if status != 200:
                errors.append((tid, i, status, body))
                return
            results[(tid, i)] = (row, body["suggestions"][0], body["scores"][0])
            versions.add(body["version"])

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(CONCURRENCY)
    ]
    for t in threads:
        t.start()
    if swap:
        swapper = threading.Thread(target=lambda: (start.wait(), swap()))
        swapper.start()
    start.wait()
    for t in threads:
        t.join(timeout=60.0)
    if swap:
        swapper.join(timeout=60.0)
    assert not errors, f"dropped/failed requests: {errors[:3]}"
    assert len(results) == CONCURRENCY * REQUESTS_PER_THREAD
    return results, versions


class TestConcurrentBitwiseEquality:
    def test_micro_batched_equals_sequential(
        self, model_root, fitted_system, sequential_service
    ):
        _system, pool = fitted_system
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(
                max_batch_size=8, max_wait_ms=2.0, score_block=SCORE_BLOCK
            ),
        )
        try:
            results, _versions = hammer(app, pool)
            # Coalescing must actually have happened, otherwise this
            # proves nothing about batching.
            assert app.metrics.batch_sizes.count < len(results)
        finally:
            app.close()
        expected_scores = sequential_service.predict_scores(pool)
        expected_topk = sequential_service.topk_from_scores(expected_scores, K)
        for row, suggestions, scores in results.values():
            assert suggestions == expected_topk[row].tolist()
            assert np.array_equal(np.asarray(scores), expected_scores[row])

    def test_bitwise_across_mid_flight_hot_swap(
        self, fitted_system, tmp_path, sequential_service
    ):
        system, pool = fitted_system
        root = tmp_path / "models"
        publish_artifact(system, root)
        registry = ModelRegistry(root)
        app = GatewayApp(
            registry,
            ServerConfig(
                max_batch_size=8, max_wait_ms=2.0, score_block=SCORE_BLOCK
            ),
        )

        def swap():
            # Publish a byte-identical artifact as a new version and
            # hot-swap to it while the hammer threads are in flight.
            publish_artifact(system, root, reuse_identical=False)
            status, body = app.reload()
            assert status == 200 and body["reloaded"] is True

        try:
            results, _versions = hammer(app, pool, swap=swap)
        finally:
            app.close()
        # The swap really happened (initial load + hot-swap) and no
        # request was dropped (hammer asserts zero errors and a full
        # result set).
        assert registry.swaps == 2
        expected_scores = sequential_service.predict_scores(pool)
        expected_topk = sequential_service.topk_from_scores(expected_scores, K)
        for row, suggestions, scores in results.values():
            assert suggestions == expected_topk[row].tolist()
            assert np.array_equal(np.asarray(scores), expected_scores[row])

    def test_sequential_gateway_equals_sequential_service(
        self, model_root, fitted_system, sequential_service
    ):
        """Batch-size-1 gateway (the benchmark ablation) is also bitwise."""
        _system, pool = fitted_system
        app = GatewayApp(
            ModelRegistry(model_root),
            ServerConfig(max_batch_size=1, max_wait_ms=0.0, score_block=SCORE_BLOCK),
        )
        try:
            for i in range(0, len(pool), 5):
                status, body = app.suggest(
                    {"features": [pool[i].tolist()], "k": K, "return_scores": True}
                )
                assert status == 200
                assert np.array_equal(
                    np.asarray(body["scores"][0]),
                    sequential_service.predict_scores(pool[i : i + 1])[0],
                )
        finally:
            app.close()
