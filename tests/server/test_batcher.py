"""Unit tests for the dynamic micro-batcher (no model involved).

The flush function here is a transparent stand-in (identity over rows,
recording flush compositions), so these tests pin the *scheduling*
contract: coalescing, flush triggers, result routing, error propagation
and shutdown semantics.
"""

import threading
import time

import numpy as np
import pytest

from repro.server import BatcherClosed, MicroBatcher, SubmitTimeout


def identity_flush(record=None):
    """A flush_fn echoing each item's rows, optionally recording batches."""

    def flush(stacked, items):
        if record is not None:
            record.append([rows for rows, _meta in items])
        out = []
        offset = 0
        for rows, _meta in items:
            out.append(stacked[offset : offset + rows])
            offset += rows
        return out, "ctx"

    return flush


def rows(*values):
    return np.asarray(values, dtype=np.float64)[:, None]


class TestRouting:
    def test_single_request_round_trip(self):
        batcher = MicroBatcher(identity_flush(), max_batch_size=8, max_wait_ms=1.0)
        result, ctx = batcher.submit(rows(1.0, 2.0))
        assert result.tolist() == [[1.0], [2.0]]
        assert ctx == "ctx"
        batcher.close()

    def test_concurrent_submits_coalesce_into_one_flush(self):
        record = []
        batcher = MicroBatcher(
            identity_flush(record), max_batch_size=16, max_wait_ms=200.0
        )
        barrier = threading.Barrier(16)
        results = [None] * 16

        def worker(i):
            barrier.wait()
            results[i], _ = batcher.submit(rows(float(i)))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        # Every request got its own row back...
        assert all(results[i].tolist() == [[float(i)]] for i in range(16))
        # ...and the size trigger produced one full flush, far before the
        # 200 ms wait trigger could have.
        assert batcher.flushes == 1
        assert batcher.rows_flushed == 16

    def test_max_wait_flushes_partial_batch(self):
        batcher = MicroBatcher(identity_flush(), max_batch_size=64, max_wait_ms=10.0)
        started = time.perf_counter()
        result, _ = batcher.submit(rows(7.0))
        elapsed = time.perf_counter() - started
        assert result.tolist() == [[7.0]]
        assert elapsed < 5.0  # wait trigger, not the submit timeout
        batcher.close()

    def test_batch_size_one_serves_requests_individually(self):
        record = []
        batcher = MicroBatcher(identity_flush(record), max_batch_size=1, max_wait_ms=50.0)
        for value in (1.0, 2.0, 3.0):
            batcher.submit(rows(value))
        batcher.close()
        assert batcher.flushes == 3
        assert all(len(batch) == 1 for batch in record)

    def test_multi_row_requests_stay_intact(self):
        record = []
        batcher = MicroBatcher(identity_flush(record), max_batch_size=4, max_wait_ms=50.0)
        out, _ = batcher.submit(np.arange(10, dtype=np.float64)[:, None])
        assert out.shape == (10, 1)  # exceeds max_batch_size but never splits
        batcher.close()
        assert record and len(record[0]) == 1


class TestFailureModes:
    def test_flush_error_propagates_to_every_request(self):
        def explode(stacked, items):
            raise RuntimeError("model went away")

        batcher = MicroBatcher(explode, max_batch_size=4, max_wait_ms=5.0)
        with pytest.raises(RuntimeError, match="model went away"):
            batcher.submit(rows(1.0))
        # The flusher survives a poisoned batch: next submit still works
        # (and still fails, proving the loop is alive).
        with pytest.raises(RuntimeError, match="model went away"):
            batcher.submit(rows(2.0))
        batcher.close()

    def test_mixed_width_batch_fails_requests_not_the_flusher(self):
        release = threading.Event()

        def gated(stacked, items):
            release.wait(5.0)
            return identity_flush()(stacked, items)

        batcher = MicroBatcher(gated, max_batch_size=2, max_wait_ms=10_000.0)
        outcomes = {}

        def worker(i, width):
            try:
                outcomes[i] = batcher.submit(
                    np.zeros((1, width), dtype=np.float64)
                )[0]
            except Exception as exc:
                outcomes[i] = exc

        # Two requests with different feature widths (the hot-swap-to-a-
        # different-model scenario) coalesce into one flush whose
        # np.concatenate must fail the *requests*, not the flusher.
        threads = [
            threading.Thread(target=worker, args=(0, 5)),
            threading.Thread(target=worker, args=(1, 7)),
        ]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert all(isinstance(outcomes[i], ValueError) for i in (0, 1))
        # The flusher survived: a well-formed request still round-trips.
        result, _ = batcher.submit(rows(3.0))
        assert result.tolist() == [[3.0]]
        batcher.close()

    def test_submit_timeout(self):
        def slow(stacked, items):
            time.sleep(0.2)
            return identity_flush()(stacked, items)

        batcher = MicroBatcher(slow, max_batch_size=1, max_wait_ms=0.0)
        with pytest.raises(SubmitTimeout):
            batcher.submit(rows(1.0), timeout=0.01)
        batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(identity_flush(), max_batch_size=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit(rows(1.0))

    def test_close_flushes_remaining_requests(self):
        release = threading.Event()

        def gated(stacked, items):
            release.wait(5.0)
            return identity_flush()(stacked, items)

        batcher = MicroBatcher(gated, max_batch_size=2, max_wait_ms=10_000.0)
        results = {}

        def worker(i):
            results[i] = batcher.submit(rows(float(i)))[0]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let the first flush (2 rows) start, 1 queued
        release.set()
        batcher.close(flush_remaining=True)
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(v.tolist()[0][0] for v in results.values()) == [0.0, 1.0, 2.0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(identity_flush(), max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(identity_flush(), max_batch_size=1, max_wait_ms=-1.0)


class TestObserver:
    def test_on_flush_sees_request_and_row_counts(self):
        seen = []
        batcher = MicroBatcher(
            identity_flush(),
            max_batch_size=4,
            max_wait_ms=5.0,
            on_flush=lambda requests, total_rows: seen.append((requests, total_rows)),
        )
        batcher.submit(rows(1.0, 2.0))
        batcher.close()
        assert seen == [(1, 2)]

    def test_observer_exception_does_not_poison_batch(self):
        def bad_observer(requests, total_rows):
            raise ValueError("observer bug")

        batcher = MicroBatcher(
            identity_flush(), max_batch_size=1, max_wait_ms=5.0, on_flush=bad_observer
        )
        result, _ = batcher.submit(rows(9.0))
        assert result.tolist() == [[9.0]]
        batcher.close()
