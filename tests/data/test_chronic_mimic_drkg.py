"""Tests for the cohort simulators and the TransE substrate."""

import numpy as np
import pytest

from repro.data import (
    NUM_FEATURES,
    TransE,
    build_knowledge_graph,
    generate_chronic_cohort,
    generate_ddi,
    generate_mimic,
    pretrained_drug_embeddings,
    split_patients,
    standardize_features,
    visit_step_features,
)


@pytest.fixture(scope="module")
def cohort():
    return generate_chronic_cohort(num_patients=600, seed=11)


class TestChronicCohort:
    def test_shapes(self, cohort):
        assert cohort.features.shape == (600, NUM_FEATURES)
        assert cohort.medications.shape == (600, 86)
        assert cohort.diseases.shape[0] == 600

    def test_feature_names_unique_and_complete(self, cohort):
        assert len(cohort.feature_names) == NUM_FEATURES
        assert len(set(cohort.feature_names)) == NUM_FEATURES

    def test_every_patient_has_disease_and_medication(self, cohort):
        assert (cohort.diseases.sum(axis=1) >= 1).all()
        assert (cohort.medications.sum(axis=1) >= 1).all()

    def test_polypharmacy_typical(self, cohort):
        """Chronic elderly patients take multiple medications on average."""
        mean_meds = cohort.medications.sum(axis=1).mean()
        assert 2.0 <= mean_meds <= 8.0

    def test_disease_ranking_matches_fig2(self, cohort):
        """Hypertension must be the most common disease, cardiovascular next."""
        counts = cohort.diseases.sum(axis=0)
        names = cohort.disease_names
        by_count = [names[i] for i in np.argsort(-counts)]
        assert by_count[0] == "hypertension"
        assert by_count[1] == "cardiovascular"

    def test_medications_match_diseases(self, cohort):
        """Most prescriptions belong to a disease the patient actually has."""
        from repro.data import drugs_by_disease

        by_disease = drugs_by_disease(cohort.catalog)
        drug_to_disease = {}
        for disease, dids in by_disease.items():
            for did in dids:
                drug_to_disease[did] = disease
        name_to_idx = {d: i for i, d in enumerate(cohort.disease_names)}
        matched = 0
        total = 0
        for i in range(cohort.num_patients):
            for did in np.nonzero(cohort.medications[i])[0]:
                total += 1
                disease = drug_to_disease[int(did)]
                if disease in name_to_idx and cohort.diseases[i, name_to_idx[disease]]:
                    matched += 1
        assert matched / total > 0.7

    def test_antagonistic_coprescription_rare_but_present(self):
        cohort = generate_chronic_cohort(num_patients=800, seed=3)
        graph = cohort.ddi.graph
        antagonistic = 0
        pairs = 0
        for i in range(cohort.num_patients):
            drugs = np.nonzero(cohort.medications[i])[0]
            for a in range(len(drugs)):
                for b in range(a + 1, len(drugs)):
                    pairs += 1
                    if graph.sign_or_none(int(drugs[a]), int(drugs[b])) == -1:
                        antagonistic += 1
        rate = antagonistic / pairs
        assert 0.0 < rate < 0.05  # rare (DDI-aware) but non-zero (Case 4)

    def test_zero_tolerance_removes_all_antagonism(self):
        cohort = generate_chronic_cohort(
            num_patients=300, seed=5, antagonism_tolerance=0.0
        )
        graph = cohort.ddi.graph
        for i in range(cohort.num_patients):
            drugs = np.nonzero(cohort.medications[i])[0]
            for a in range(len(drugs)):
                for b in range(a + 1, len(drugs)):
                    assert graph.sign_or_none(int(drugs[a]), int(drugs[b])) != -1

    def test_features_are_informative(self, cohort):
        """history_<disease> features must correlate with the disease."""
        idx = cohort.feature_names.index("history_hypertension")
        d_idx = cohort.disease_names.index("hypertension")
        feature = cohort.features[:, idx]
        disease = cohort.diseases[:, d_idx]
        corr = np.corrcoef(feature, disease)[0, 1]
        assert corr > 0.5

    def test_determinism(self):
        a = generate_chronic_cohort(num_patients=50, seed=9)
        b = generate_chronic_cohort(num_patients=50, seed=9)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.medications, b.medications)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_chronic_cohort(num_patients=0)
        with pytest.raises(ValueError):
            generate_chronic_cohort(num_patients=10, antagonism_tolerance=1.5)

    def test_standardize_features(self, cohort):
        z = standardize_features(cohort.features)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        stds = z.std(axis=0)
        assert np.all((np.isclose(stds, 1.0, atol=1e-9)) | (stds == 0.0))


class TestSplits:
    def test_532_split(self):
        split = split_patients(1000)
        assert split.sizes == (500, 300, 200)

    def test_partition_property(self):
        split = split_patients(137, seed=1)
        combined = np.concatenate([split.train, split.val, split.test])
        assert len(combined) == 137
        assert len(np.unique(combined)) == 137

    def test_deterministic(self):
        a = split_patients(100, seed=2)
        b = split_patients(100, seed=2)
        assert np.array_equal(a.train, b.train)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_patients(2)
        with pytest.raises(ValueError):
            split_patients(10, ratios=(0.5, 0.3, 0.3))
        with pytest.raises(ValueError):
            split_patients(10, ratios=(1.0, 0.0, 0.0))

    def test_tiny_cohort_each_side_nonempty(self):
        split = split_patients(5)
        assert all(s >= 1 for s in split.sizes)


class TestMimic:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_mimic(num_patients=300, seed=23)

    def test_shapes(self, data):
        assert data.features.shape == (300, data.num_diagnoses + data.num_procedures)
        assert data.labels.shape == (300, data.num_drugs)

    def test_every_patient_has_two_visits(self, data):
        assert all(len(v) >= 2 for v in data.visits)

    def test_labels_match_last_visit(self, data):
        for i in [0, 10, 100]:
            last = data.visits[i][-1]
            assert set(np.nonzero(data.labels[i])[0]) == set(last.medications)

    def test_features_exclude_last_visit(self, data):
        """A diagnosis code only in the last visit must not appear in features."""
        for i in range(50):
            history_diag = set()
            for visit in data.visits[i][:-1]:
                history_diag.update(visit.diagnoses)
            feat_diag = set(np.nonzero(data.features[i][: data.num_diagnoses])[0])
            assert feat_diag == history_diag

    def test_ddi_antagonism_only(self, data):
        assert data.ddi.num_edges > 0
        assert all(s == -1 for _, _, s in data.ddi.edges_with_signs())

    def test_history_predicts_future(self, data):
        """Patients sharing history features share label drugs more often."""
        sims = data.features @ data.features.T
        label_overlap = data.labels @ data.labels.T
        i_upper = np.triu_indices(data.num_patients, k=1)
        corr = np.corrcoef(sims[i_upper], label_overlap[i_upper])[0, 1]
        assert corr > 0.3

    def test_visit_step_features(self, data):
        steps = visit_step_features(data, max_visits=3)
        assert 1 <= len(steps) <= 3
        assert steps[0].shape == data.features.shape
        # final step must contain the last history visit of every patient
        last_step = steps[-1]
        for i in range(20):
            visit = data.visits[i][-2]
            assert all(last_step[i, d] == 1.0 for d in visit.diagnoses)

    def test_determinism(self):
        a = generate_mimic(num_patients=50, seed=1)
        b = generate_mimic(num_patients=50, seed=1)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_patients(self):
        with pytest.raises(ValueError):
            generate_mimic(num_patients=0)


class TestDRKGTransE:
    def test_kg_structure(self):
        kg = build_knowledge_graph(seed=13)
        assert kg.num_drugs == 86
        assert kg.num_entities == 86 + kg.num_diseases + kg.num_genes
        assert kg.triples.shape[1] == 3
        assert kg.triples[:, 1].max() < kg.num_relations
        assert kg.triples[:, [0, 2]].max() < kg.num_entities

    def test_transe_training_reduces_loss(self):
        kg = build_knowledge_graph(seed=13)
        model = TransE(kg, dim=16, seed=1)
        history = model.train(epochs=15, lr=0.05)
        assert history[-1] < history[0]

    def test_transe_ranks_true_triples_better(self):
        kg = build_knowledge_graph(seed=13)
        model = TransE(kg, dim=16, seed=1)
        model.train(epochs=25, lr=0.05)
        rng = np.random.default_rng(0)
        true = kg.triples[rng.choice(len(kg.triples), size=50, replace=False)]
        corrupted = true.copy()
        corrupted[:, 2] = rng.integers(0, kg.num_entities, size=50)
        true_scores = model._scores(true)
        corrupt_scores = model._scores(corrupted)
        assert (true_scores < corrupt_scores).mean() > 0.7

    def test_pretrained_embeddings_shape(self):
        emb = pretrained_drug_embeddings(dim=8, epochs=2, seed=13)
        assert emb.shape == (86, 8)
        assert np.isfinite(emb).all()

    def test_invalid_dim(self):
        kg = build_knowledge_graph(seed=13)
        with pytest.raises(ValueError):
            TransE(kg, dim=0)

    def test_same_disease_drugs_embed_closer(self):
        """TransE should pull drugs treating one disease together."""
        kg = build_knowledge_graph(seed=13)
        model = TransE(kg, dim=16, seed=1)
        model.train(epochs=40, lr=0.05)
        emb = model.drug_embeddings()
        from repro.data import build_catalog

        catalog = build_catalog()
        by_disease = {}
        for d in catalog:
            by_disease.setdefault(d.disease, []).append(d.did)
        hyper = by_disease["hypertension"]
        other = by_disease["arthritis"]
        within = np.mean(
            [np.linalg.norm(emb[a] - emb[b]) for a in hyper[:5] for b in hyper[5:10]]
        )
        across = np.mean(
            [np.linalg.norm(emb[a] - emb[b]) for a in hyper[:5] for b in other[:5]]
        )
        assert within < across
