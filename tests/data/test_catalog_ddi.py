"""Tests for the drug catalog and the DDI generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DISEASE_PREVALENCE,
    NUM_DRUGS,
    PINNED_ANTAGONISM,
    PINNED_SYNERGY,
    add_no_interaction_edges,
    all_diseases,
    antagonism_only,
    build_catalog,
    drug_names,
    drugs_by_disease,
    generate_ddi,
)
from repro.graph import edge_key


class TestCatalog:
    def test_exactly_86_drugs(self):
        assert len(build_catalog()) == NUM_DRUGS == 86

    def test_unique_names_and_dids(self):
        catalog = build_catalog()
        assert len({d.name for d in catalog}) == 86
        assert [d.did for d in catalog] == list(range(86))

    def test_paper_pins(self):
        names = drug_names(build_catalog())
        assert names[1] == "Doxazosin"
        assert names[3] == "Enalapril"
        assert names[5] == "Perindopril"
        assert names[8] == "Amlodipine"
        assert names[10] == "Indapamide"
        assert names[32] == "Felodipine"
        assert names[46] == "Simvastatin"
        assert names[47] == "Atorvastatin"
        assert names[48] == "Metformin"
        assert names[61] == "Gabapentin"
        assert names[83] == "Theophylline"
        assert "Isosorbide" in names[58] and "Isosorbide" in names[59]

    def test_hypertension_has_most_drugs(self):
        """Fig. 3: hypertension and cardiovascular dominate the catalog."""
        by_disease = drugs_by_disease(build_catalog())
        counts = {d: len(v) for d, v in by_disease.items()}
        top_two = sorted(counts, key=counts.get, reverse=True)[:2]
        assert set(top_two) == {"hypertension", "cardiovascular"}

    def test_prevalences_sum_to_one(self):
        assert sum(DISEASE_PREVALENCE.values()) == pytest.approx(1.0)

    def test_all_diseases_cover_catalog(self):
        catalog_diseases = {d.disease for d in build_catalog()}
        listed = set(all_diseases())
        assert catalog_diseases <= listed

    def test_deterministic(self):
        assert build_catalog() == build_catalog()


class TestDDIGenerator:
    def test_paper_counts(self):
        data = generate_ddi(seed=7)
        assert len(data.synergy) == 97
        assert len(data.antagonism) == 243
        assert data.graph.num_edges == 97 + 243

    def test_pinned_edges_present(self):
        graph = generate_ddi(seed=7).graph
        for u, v in PINNED_SYNERGY:
            assert graph.sign(u, v) == 1
        for u, v in PINNED_ANTAGONISM:
            assert graph.sign(u, v) == -1

    def test_deterministic_per_seed(self):
        a = generate_ddi(seed=3)
        b = generate_ddi(seed=3)
        assert sorted(a.synergy) == sorted(b.synergy)
        assert sorted(a.antagonism) == sorted(b.antagonism)

    def test_different_seeds_differ(self):
        a = generate_ddi(seed=3)
        b = generate_ddi(seed=4)
        assert sorted(a.synergy) != sorted(b.synergy)

    def test_no_pair_has_both_signs(self):
        data = generate_ddi(seed=7)
        syn = {edge_key(*p) for p in data.synergy}
        ant = {edge_key(*p) for p in data.antagonism}
        assert not (syn & ant)

    def test_synergy_mostly_within_disease_class(self):
        data = generate_ddi(seed=7)
        disease = {d.did: d.disease for d in data.catalog}
        within = sum(1 for u, v in data.synergy if disease[u] == disease[v])
        assert within / len(data.synergy) > 0.5

    def test_antagonism_mostly_across_classes(self):
        data = generate_ddi(seed=7)
        disease = {d.did: d.disease for d in data.catalog}
        across = sum(1 for u, v in data.antagonism if disease[u] != disease[v])
        assert across / len(data.antagonism) > 0.5

    def test_small_graph_override(self):
        data = generate_ddi(seed=1, num_synergy=5, num_antagonism=8, num_drugs=20)
        assert data.graph.num_nodes == 20
        assert len(data.synergy) == 5
        assert len(data.antagonism) == 8

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            generate_ddi(seed=1, num_synergy=300, num_antagonism=300, num_drugs=10)

    def test_pins_beyond_budget_rejected(self):
        with pytest.raises(ValueError):
            generate_ddi(seed=1, num_synergy=1, num_antagonism=1)

    def test_antagonism_only_view(self):
        data = generate_ddi(seed=7)
        neg = antagonism_only(data)
        assert neg.num_edges == 243
        assert all(s == -1 for _, _, s in neg.edges_with_signs())

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.0, 2.0))
    def test_no_interaction_edges_ratio(self, ratio):
        data = generate_ddi(seed=5, num_synergy=10, num_antagonism=10, num_drugs=30)
        rng = np.random.default_rng(0)
        augmented = add_no_interaction_edges(data.graph, ratio, rng)
        zeros = len(augmented.edges_of_sign(0))
        expected = int(round(ratio * 20))
        max_free = 30 * 29 // 2 - 20
        assert zeros == min(expected, max_free)
        # original signed edges untouched
        assert len(augmented.edges_of_sign(1)) == 10
        assert len(augmented.edges_of_sign(-1)) == 10

    def test_no_interaction_negative_ratio_rejected(self):
        data = generate_ddi(seed=5, num_synergy=5, num_antagonism=5, num_drugs=20)
        with pytest.raises(ValueError):
            add_no_interaction_edges(data.graph, -0.5, np.random.default_rng(0))
