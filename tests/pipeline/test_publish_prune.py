"""The pipeline -> serving bridge: chronic.publish and cache pruning."""

import numpy as np
import pytest

from repro.pipeline import PipelineConfig, StageCache, run_stage
from repro.pipeline.cli import main as cli_main
from repro.serving import SuggestionService
from repro.server import scan_versions


def _cfg(tmp_path, **kw):
    kw.setdefault("scale", "tiny")
    kw.setdefault("model_root", str(tmp_path / "models"))
    return PipelineConfig(cache_dir=str(tmp_path / "cache"), **kw)


class TestPublishStage:
    def test_publish_writes_a_servable_version(self, tmp_path):
        cfg = _cfg(tmp_path)
        info = run_stage("chronic.publish", cfg)
        assert info["version"].startswith("v0001-")
        versions = scan_versions(tmp_path / "models")
        assert [v.name for v in versions] == [info["version"]]
        assert versions[0].digest == info["digest"]
        service = SuggestionService.load(versions[0].path)
        suggestions = service.suggest(np.zeros((2, service.feature_dim)), k=3)
        assert suggestions.shape == (2, 3)

    def test_republish_reuses_cached_fit_and_version(self, tmp_path):
        cfg = _cfg(tmp_path)
        first = run_stage("chronic.publish", cfg)
        again = run_stage("chronic.publish", cfg)
        # Identical fit (cache hit) -> identical digest -> same version.
        assert again["version"] == first["version"]
        assert len(scan_versions(tmp_path / "models")) == 1

    def test_cli_publish(self, tmp_path, capsys):
        rc = cli_main(
            [
                "publish",
                "--scale",
                "tiny",
                "--model-root",
                str(tmp_path / "models"),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "published v0001-" in out
        assert scan_versions(tmp_path / "models")


class TestCachePrune:
    @pytest.fixture()
    def populated_cache(self, tmp_path):
        cache = StageCache(tmp_path / "cache")
        for i in range(5):
            cache.store(f"key{i}", "stage.a", "json", {"i": i})
        cache.store("other", "stage.b", "json", {"b": 1})
        return cache

    def test_prune_keeps_newest_per_stage(self, populated_cache):
        removed = populated_cache.prune(keep_last=2)
        remaining = populated_cache.entries()
        by_stage = {}
        for entry in remaining:
            by_stage.setdefault(entry.stage, []).append(entry.key)
        assert len(by_stage["stage.a"]) == 2
        # stage.b untouched: pruning is per stage, not global.
        assert by_stage["stage.b"] == ["other"]
        assert len(removed) == 3
        assert all(e.stage == "stage.a" for e in removed)

    def test_prune_validates(self, populated_cache):
        with pytest.raises(ValueError):
            populated_cache.prune(0)

    def test_cli_prune(self, tmp_path, populated_cache, capsys):
        rc = cli_main(
            ["cache", "prune", "--keep-last", "1", "--cache-dir",
             str(populated_cache.root)]
        )
        assert rc == 0
        assert "pruned 4 entrie(s)" in capsys.readouterr().out

    def test_cli_prune_requires_keep_last(self, tmp_path):
        rc = cli_main(["cache", "prune", "--cache-dir", str(tmp_path / "c")])
        assert rc == 2
