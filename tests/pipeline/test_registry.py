"""Registry resolution: registration, topological order, error paths."""

import pytest

from repro.pipeline import (
    experiment,
    get_experiment,
    get_stage,
    resolve,
    stage,
)
from repro.pipeline.registry import unregister


@pytest.fixture
def names():
    """Unique stage/experiment names, removed again after the test."""
    created = []

    def make(name):
        full = f"treg.{name}"
        created.append(full)
        return full

    yield make
    unregister(*created)


class TestRegistration:
    def test_stage_registers_and_returns_fn(self, names):
        n = names("a")

        @stage(n, params=())
        def fn(ctx):
            return 1

        assert fn(None) == 1  # decorator returns the function unchanged
        spec = get_stage(n)
        assert spec.name == n
        assert spec.params == ()
        assert spec.serializer == "pickle"

    def test_duplicate_stage_rejected(self, names):
        n = names("dup")

        @stage(n, params=())
        def fn(ctx):
            return 1

        with pytest.raises(ValueError, match="already registered"):
            stage(n, params=())(lambda ctx: 2)

    def test_unknown_serializer_rejected(self, names):
        with pytest.raises(ValueError, match="serializer"):
            stage(names("bad"), serializer="yaml")(lambda ctx: 1)

    def test_experiment_registration(self, names):
        n = names("expstage")
        e = names("exp")

        @experiment(e, stage=n, title="Title")
        @stage(n, params=())
        def fn(ctx):
            return 1

        spec = get_experiment(e)
        assert spec.stage == n
        assert spec.title == "Title"

    def test_unknown_lookups(self):
        with pytest.raises(KeyError, match="unknown stage"):
            get_stage("treg.nope")
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("treg.nope")


class TestResolve:
    def test_topological_order(self, names):
        a, b, c = names("t.a"), names("t.b"), names("t.c")
        stage(a, params=())(lambda ctx: "a")
        stage(b, inputs=(a,), params=())(lambda ctx, va: "b")
        stage(c, inputs=(a, b), params=())(lambda ctx, va, vb: "c")
        order = [s.name for s in resolve(c)]
        assert order.index(a) < order.index(b) < order.index(c)
        assert set(order) == {a, b, c}

    def test_diamond_resolved_once(self, names):
        root, l, r, top = (names(x) for x in ("d.root", "d.l", "d.r", "d.top"))
        stage(root, params=())(lambda ctx: 0)
        stage(l, inputs=(root,), params=())(lambda ctx, v: 1)
        stage(r, inputs=(root,), params=())(lambda ctx, v: 2)
        stage(top, inputs=(l, r), params=())(lambda ctx, a, b: 3)
        order = [s.name for s in resolve(top)]
        assert order.count(root) == 1
        assert order[-1] == top

    def test_cycle_detected(self, names):
        a, b = names("c.a"), names("c.b")
        stage(a, inputs=(b,), params=())(lambda ctx, v: 1)
        stage(b, inputs=(a,), params=())(lambda ctx, v: 2)
        with pytest.raises(ValueError, match="cycle"):
            resolve(a)

    def test_unknown_input(self, names):
        a = names("u.a")
        stage(a, inputs=("treg.missing-input",), params=())(lambda ctx, v: 1)
        with pytest.raises(KeyError, match="unknown stage"):
            resolve(a)


class TestPaperRegistry:
    """The real registrations made by importing repro.experiments."""

    def test_all_experiments_registered(self):
        import repro.experiments  # noqa: F401 (registers on import)
        from repro.pipeline import list_experiments

        known = {e.name for e in list_experiments()}
        assert {
            "fig2", "fig3", "table1", "table2", "table3",
            "fig7", "fig8", "table4", "fig9",
        } <= known

    def test_shared_fit_feeds_four_experiments(self):
        import repro.experiments  # noqa: F401
        from repro.pipeline import get_experiment, resolve

        users = [
            name
            for name in ("table1", "table3", "fig7", "fig8", "fig9")
            if any(
                s.name == "chronic.fit.dssddi_sgcn"
                for s in resolve(get_experiment(name).stage)
            )
        ]
        assert users == ["table1", "table3", "fig7", "fig8", "fig9"]
