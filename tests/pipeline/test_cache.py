"""Stage cache: serializer round-trips, content-hashed keys, hit/miss."""

import numpy as np
import pytest

from repro.pipeline import StageCache, StageSpec, stage_key


def _spec(**kw):
    defaults = dict(name="tc.stage", fn=lambda ctx: None, params=("scale",))
    defaults.update(kw)
    return StageSpec(**defaults)


class TestStageKey:
    def test_stable_for_same_inputs(self):
        spec = _spec()
        params = {"scale": {"name": "small", "num_patients": 300}}
        assert stage_key(spec, params, ["k1"]) == stage_key(spec, params, ["k1"])

    def test_changes_on_config_change(self):
        spec = _spec()
        small = {"scale": {"name": "small", "num_patients": 300}}
        medium = {"scale": {"name": "medium", "num_patients": 800}}
        assert stage_key(spec, small, []) != stage_key(spec, medium, [])

    def test_changes_on_version_bump(self):
        params = {"scale": {"name": "small"}}
        assert stage_key(_spec(version=1), params, []) != stage_key(
            _spec(version=2), params, []
        )

    def test_changes_on_input_key_change(self):
        spec = _spec()
        params = {"scale": {"name": "small"}}
        assert stage_key(spec, params, ["a"]) != stage_key(spec, params, ["b"])

    def test_ignores_undeclared_params(self):
        spec = _spec(params=())
        assert stage_key(spec, {"scale": 1}, []) == stage_key(spec, {"scale": 2}, [])


class TestSerializers:
    def test_json_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        value = {"a": 1, "b": [1.5, "x"], "nested": {"k": None}}
        cache.store("k1", "s", "json", value)
        loaded, entry = cache.load("k1")
        assert loaded == value
        assert entry.stage == "s"
        assert entry.serializer == "json"
        assert entry.digest

    def test_npz_roundtrip_preserves_keys_and_order(self, tmp_path):
        cache = StageCache(tmp_path)
        rng = np.random.default_rng(0)
        # Method names with npz-hostile characters, in display order.
        value = {
            "UserSim": rng.random((4, 3)),
            "w/o DDI": rng.random((4, 3)),
            "DSSDDI(SGCN)": rng.random((4, 3)),
        }
        cache.store("k2", "s", "npz", value)
        loaded, _ = cache.load("k2")
        assert list(loaded) == list(value)  # insertion order preserved
        for k in value:
            np.testing.assert_array_equal(loaded[k], value[k])

    def test_pickle_roundtrip(self, tmp_path):
        from repro.experiments.table3 import Table3Result

        cache = StageCache(tmp_path)
        value = Table3Result(satisfaction={"X": {2: 0.5, 4: 0.25}})
        cache.store("k3", "s", "pickle", value)
        loaded, _ = cache.load("k3")
        assert loaded.satisfaction == value.satisfaction

    def test_dssddi_roundtrip_bitwise(self, tmp_path, tiny_system_and_data):
        system, x_test = tiny_system_and_data
        cache = StageCache(tmp_path)
        cache.store("k4", "fit", "dssddi", system)
        loaded, _ = cache.load("k4")
        np.testing.assert_array_equal(
            loaded.predict_scores(x_test), system.predict_scores(x_test)
        )

    def test_unknown_serializer(self, tmp_path):
        with pytest.raises(ValueError, match="serializer"):
            StageCache(tmp_path).store("k", "s", "yaml", {})


@pytest.fixture(scope="module")
def tiny_system_and_data():
    """A minimally-fitted DSSDDI plus held-out features (module-cached)."""
    from repro.core import DSSDDI, DSSDDIConfig
    from repro.data import generate_chronic_cohort, split_patients, standardize_features

    cohort = generate_chronic_cohort(num_patients=60, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(cohort.num_patients, seed=6)
    config = DSSDDIConfig.fast()
    config.ddi.epochs = 5
    config.md.epochs = 5
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]


class TestCacheStore:
    def test_contains_and_missing(self, tmp_path):
        cache = StageCache(tmp_path)
        assert not cache.contains("nope")
        with pytest.raises(KeyError):
            cache.load("nope")
        cache.store("yes", "s", "json", 1)
        assert cache.contains("yes")

    def test_entries_and_clear(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("e1", "stage1", "json", {"v": 1})
        cache.store("e2", "stage2", "json", {"v": 2})
        entries = cache.entries()
        assert {e.key for e in entries} == {"e1", "e2"}
        assert all(e.size_bytes > 0 for e in entries)
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_store_refreshes_existing_entry(self, tmp_path):
        # --force relies on store replacing a stale entry; the returned
        # metadata must describe what is actually on disk afterwards
        cache = StageCache(tmp_path)
        cache.store("r", "s", "json", {"v": 1})
        entry = cache.store("r", "s", "json", {"v": 2})
        loaded, on_disk = cache.load("r")
        assert loaded == {"v": 2}
        assert on_disk.digest == entry.digest

    def test_store_surfaces_real_write_failures(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.stages_dir.mkdir(parents=True)
        # a stray regular file at the entry path is NOT a lost race — the
        # failure must surface instead of silently reporting a store
        (cache.stages_dir / "blocked").write_text("junk")
        with pytest.raises(OSError):
            cache.store("blocked", "s", "json", {"v": 1})
