"""Run manifest round-trip and directory loading."""

import json

from repro.pipeline import RunManifest, StageRecord, library_versions, load_manifests


def _manifest(run_id="table1-x-1-000", started=100.0):
    m = RunManifest(
        run_id=run_id,
        experiment="table1",
        title="Table I",
        scale="small",
        seed=11,
        config={"scale": {"name": "small"}},
        started_at=started,
    )
    m.stages.append(
        StageRecord(
            stage="chronic.data", key="abc", cache_hit=False,
            seconds=0.1, cacheable=False, serializer="pickle", digest=None,
        )
    )
    m.stages.append(
        StageRecord(
            stage="table1.result", key="def", cache_hit=True,
            seconds=0.01, cacheable=True, serializer="pickle", digest="d1",
        )
    )
    m.finished_at = started + 5.0
    return m


class TestRoundTrip:
    def test_dict_roundtrip(self):
        m = _manifest()
        again = RunManifest.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()
        assert again.stages[1].cache_hit is True
        assert again.total_seconds == 5.0
        assert again.cache_hits == 1

    def test_json_file_roundtrip(self, tmp_path):
        m = _manifest()
        path = m.save(tmp_path)
        assert path.name == f"{m.run_id}.json"
        # the file is plain JSON with the derived total included
        data = json.loads(path.read_text())
        assert data["total_seconds"] == 5.0
        again = RunManifest.load(path)
        assert again.to_dict() == m.to_dict()

    def test_versions_recorded(self):
        versions = library_versions()
        assert set(versions) == {"python", "numpy", "repro"}
        m = RunManifest(
            run_id="r", experiment="e", title="t", scale="small",
            seed=1, config={},
        )
        assert m.versions == versions


class TestEmbeddedTrace:
    def test_trace_round_trips(self, tmp_path):
        m = _manifest()
        m.trace = [
            {
                "name": "run:table1", "trace": "00000b0000000001",
                "span": "00000001", "parent": None, "start": 100.0,
                "dur_s": 5.0, "pid": 1234, "tid": 1,
                "attrs": {"run_id": m.run_id}, "events": [],
            },
            {
                "name": "stage:table1.result", "trace": "00000b0000000001",
                "span": "00000002", "parent": "00000001", "start": 100.1,
                "dur_s": 4.8, "pid": 1234, "tid": 1,
                "attrs": {"cache_hit": False}, "events": [],
            },
        ]
        path = m.save(tmp_path)
        again = RunManifest.load(path)
        assert again.trace == m.trace
        assert again.to_dict() == m.to_dict()

    def test_old_manifests_default_to_no_trace(self):
        data = _manifest().to_dict()
        data.pop("trace", None)
        again = RunManifest.from_dict(data)
        assert again.trace is None


class TestLoadManifests:
    def test_sorted_by_start_time(self, tmp_path):
        _manifest("b-run", started=200.0).save(tmp_path)
        _manifest("a-run", started=100.0).save(tmp_path)
        loaded = load_manifests(tmp_path)
        assert [m.run_id for m in loaded] == ["a-run", "b-run"]

    def test_missing_dir(self, tmp_path):
        assert load_manifests(tmp_path / "nope") == []
