"""End-to-end pipeline runs: caching, parallelism, CLI, legacy equality."""

import numpy as np
import pytest

from repro.pipeline import (
    PipelineConfig,
    RunManifest,
    load_manifests,
    render_report,
    run_experiment,
    run_many,
    shared_stages,
)
from repro.pipeline.cli import main as cli_main


def _cfg(tmp_path, **kw):
    kw.setdefault("scale", "tiny")
    return PipelineConfig(cache_dir=str(tmp_path / "cache"), **kw)


class TestCachedRuns:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cfg = _cfg(tmp_path)
        _, first = run_experiment("fig3", cfg)
        _, second = run_experiment("fig3", cfg)
        assert [s.cache_hit for s in first.stages] == [False]
        assert [s.cache_hit for s in second.stages] == [True]
        # identical output digests prove the same artifact was reused
        assert first.stages[0].digest == second.stages[0].digest

    def test_config_change_is_a_cache_miss(self, tmp_path):
        cfg_tiny = _cfg(tmp_path, scale="tiny")
        cfg_small = _cfg(tmp_path, scale="small")
        _, m1 = run_experiment("fig2", cfg_tiny)
        _, m2 = run_experiment("fig2", cfg_small)
        assert not m1.stages[0].cache_hit
        assert not m2.stages[0].cache_hit  # different scale -> different key
        assert m1.stages[0].key != m2.stages[0].key
        # fig3 declares params=(): the same entry serves every scale
        _, f1 = run_experiment("fig3", cfg_tiny)
        _, f2 = run_experiment("fig3", cfg_small)
        assert f1.stages[0].key == f2.stages[0].key
        assert f2.stages[0].cache_hit

    def test_force_reexecutes(self, tmp_path):
        cfg = _cfg(tmp_path)
        run_experiment("fig3", cfg)
        _, m = run_experiment("fig3", _cfg(tmp_path, force=True))
        assert [s.cache_hit for s in m.stages] == [False]

    def test_no_cache_never_writes(self, tmp_path):
        cfg = _cfg(tmp_path, use_cache=False)
        run_experiment("fig3", cfg)
        _, m = run_experiment("fig3", cfg)
        assert [s.cache_hit for s in m.stages] == [False]
        assert m.stages[0].digest is None

    def test_manifests_written(self, tmp_path):
        cfg = _cfg(tmp_path)
        _, m = run_experiment("fig3", cfg)
        runs = load_manifests(cfg.resolved_runs_dir())
        assert m.run_id in {r.run_id for r in runs}
        rendered = (cfg.resolved_runs_dir() / f"{m.run_id}.txt").read_text()
        assert "Fig. 3" in rendered


class TestSharedFitStages:
    """The acceptance path: one DSSDDI fit shared across experiments."""

    def test_fig7_then_fig9_reuses_fit(self, tmp_path):
        cfg = _cfg(tmp_path)
        _, m7 = run_experiment("fig7", cfg)
        _, m9 = run_experiment("fig9", cfg)
        by_stage7 = {s.stage: s for s in m7.stages}
        by_stage9 = {s.stage: s for s in m9.stages}
        fit7 = by_stage7["chronic.fit.dssddi_sgcn"]
        fit9 = by_stage9["chronic.fit.dssddi_sgcn"]
        assert not fit7.cache_hit and fit9.cache_hit
        assert fit7.key == fit9.key
        assert fit7.digest == fit9.digest
        # manifest timings: the cached fit must be much cheaper than the fit
        assert fit9.seconds < fit7.seconds

    def test_shared_stage_analysis(self):
        shared = {s.name for s in shared_stages(["fig7", "fig9"])}
        assert "chronic.fit.dssddi_sgcn" in shared
        assert "chronic.data" not in shared  # not cacheable -> not warmed

    def test_fig9_matches_legacy_entry_point(self, tmp_path):
        from repro.experiments import Scale, load_chronic, run_fig9

        cfg = _cfg(tmp_path)
        result, _ = run_experiment("fig9", cfg)
        scale = Scale.tiny()
        legacy = run_fig9(scale=scale, data=load_chronic(scale))
        assert legacy.render() == result.render()


class TestWarmRunSkipsDeadWork:
    def test_uncacheable_input_not_reexecuted_when_consumer_is_cached(self, tmp_path):
        from repro.pipeline import stage, register_experiment
        from repro.pipeline.registry import unregister

        calls = {"gen": 0, "use": 0}
        try:
            @stage("twarm.gen", params=(), cacheable=False)
            def gen(ctx):
                calls["gen"] += 1
                return 7

            @stage("twarm.use", inputs=("twarm.gen",), params=(), serializer="json")
            def use(ctx, v):
                calls["use"] += 1
                return {"v": v * 2}

            register_experiment("twarm", "twarm.use", "Warm test")
            cfg = _cfg(tmp_path)
            result, m1 = run_experiment("twarm", cfg, save_manifest=False)
            assert result == {"v": 14} and calls == {"gen": 1, "use": 1}
            result, m2 = run_experiment("twarm", cfg, save_manifest=False)
            # terminal stage served from cache -> the uncacheable generator
            # is not re-executed just to be discarded
            assert result == {"v": 14} and calls == {"gen": 1, "use": 1}
            assert {s.stage: s.cache_hit for s in m2.stages}["twarm.use"]
        finally:
            unregister("twarm.gen", "twarm.use", "twarm")


class TestParallel:
    def test_force_with_jobs_shares_the_forced_refit(self, tmp_path):
        cfg = PipelineConfig(
            scale="tiny", cache_dir=str(tmp_path / "cache"), jobs=2, force=True
        )
        results = dict(
            (name, manifest) for name, _, manifest in run_many(["fig7", "fig9"], cfg)
        )
        # the parent force-re-executed the shared fit once; both workers
        # reused that entry instead of refitting it per process
        for name in ("fig7", "fig9"):
            fit = {s.stage: s for s in results[name].stages}["chronic.fit.dssddi_sgcn"]
            assert fit.cache_hit, name
        # non-shared terminal stages still honored --force
        assert not {s.stage: s for s in results["fig9"].stages}["fig9.result"].cache_hit
    def test_parallel_equals_serial(self, tmp_path):
        serial_cfg = _cfg(tmp_path / "serial")
        parallel_cfg = PipelineConfig(
            scale="tiny", cache_dir=str(tmp_path / "parallel" / "cache"), jobs=2
        )
        names = ["fig2", "fig7", "fig9"]
        serial = run_many(names, serial_cfg)
        parallel = run_many(names, parallel_cfg)
        assert [n for n, _, _ in serial] == [n for n, _, _ in parallel]
        for (_, text_s, _), (_, text_p, _) in zip(serial, parallel):
            assert text_s == text_p
        # fig7 and fig9 share the SGCN fit: the parallel run pre-warmed it,
        # so the fig9 worker found it cached
        m9 = parallel[2][2]
        fit = {s.stage: s for s in m9.stages}["chronic.fit.dssddi_sgcn"]
        assert fit.cache_hit

    def test_unknown_experiment_fails_fast(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_many(["nope"], _cfg(tmp_path))


class TestCLI:
    def test_run_and_report(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "fig3", "--scale", "tiny", "--cache-dir", cache_dir]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "0 cached" in out
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cached" in out

        assert cli_main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        assert "fig3.result" in capsys.readouterr().out

        assert cli_main(["report", "--cache-dir", cache_dir]) == 0
        report = capsys.readouterr().out
        assert "# Experiment pipeline report" in report
        assert "fig3" in report

        assert cli_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table4", "fig9"):
            assert name in out

    def test_unknown_experiment_exit_code(self, tmp_path, capsys):
        argv = ["run", "nope", "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_renderer_includes_stage_table(self, tmp_path):
        cfg = _cfg(tmp_path)
        run_experiment("fig3", cfg)
        text = render_report(cfg.resolved_runs_dir())
        assert "| Stage | Cache |" in text
        assert "`fig3.result`" in text


class TestRunTracing:
    def test_manifest_carries_run_and_stage_spans(self, tmp_path):
        cfg = _cfg(tmp_path)
        _, manifest = run_experiment("fig3", cfg)
        assert manifest.trace
        names = [s["name"] for s in manifest.trace]
        assert "run:fig3" in names
        stage_spans = [
            s for s in manifest.trace if s["name"].startswith("stage:")
        ]
        assert {s["name"] for s in stage_spans} >= {"stage:fig3.result"}
        root = next(s for s in manifest.trace if s["name"] == "run:fig3")
        assert root["parent"] is None
        assert root["attrs"]["run_id"] == manifest.run_id
        # Every stage span nests under the run root of the same trace.
        for span in stage_spans:
            assert span["parent"] == root["span"]
            assert span["trace"] == root["trace"]

    def test_cache_hits_annotated(self, tmp_path):
        cfg = _cfg(tmp_path)
        run_experiment("fig3", cfg)
        _, second = run_experiment("fig3", cfg)
        stage = next(
            s for s in second.trace if s["name"] == "stage:fig3.result"
        )
        assert stage["attrs"]["cache_hit"] is True

    def test_trace_survives_manifest_save(self, tmp_path):
        cfg = _cfg(tmp_path)
        _, manifest = run_experiment("fig3", cfg)
        loaded = load_manifests(cfg.resolved_runs_dir())
        match = next(m for m in loaded if m.run_id == manifest.run_id)
        assert match.trace == manifest.trace

    def test_report_renders_trace_waterfall(self, tmp_path):
        cfg = _cfg(tmp_path)
        run_experiment("fig3", cfg)
        text = render_report(cfg.resolved_runs_dir())
        assert "Trace:" in text
        assert "run:fig3" in text
        assert "stage:fig3.result" in text
