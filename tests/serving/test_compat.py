"""Artifact schema-version compatibility (ISSUE 4 satellite).

The artifact manifest carries ``format_version`` (the schema version):
v1 was the PR-1 layout (no ``propagation_backend`` / ``score_chunk_rows``
/ ``score_block`` config fields), v2 added the sparse-backend fields, v3
added the serving ``score_block``, v4 added per-array SHA-256 integrity
digests (verified on load; absent in older artifacts, which therefore
load unverified).  Two guarantees are pinned here:

* saving with the **current** schema and loading it back round-trips
  ``predict_scores`` bitwise (the PR-1 invariant, re-asserted against
  the current version number), and
* loading a fixture in the **PR-1 (v1) layout** still works and is
  bitwise-identical too — old artifacts on disk survive library
  upgrades, with config defaults filling in the newer fields.
"""

import json

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.serving import FORMAT_VERSION, load_system


@pytest.fixture(scope="module")
def fitted():
    cohort = generate_chronic_cohort(num_patients=120, seed=6)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=2)
    config = DSSDDIConfig.fast()
    config.ddi.epochs = 10
    config.md.epochs = 30
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]


#: Config fields that did not exist in the PR-1 (format v1) manifest,
#: per section.  The v1 fixture below strips exactly these.
V2_PLUS_FIELDS = {
    "ddi": ("propagation_backend",),
    "md": ("propagation_backend", "score_chunk_rows"),
    "serving": ("score_block",),
}


def make_v1_fixture(system, path):
    """Save with the current writer, then rewrite as the PR-1 layout."""
    system.save(path)
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 1
    manifest.pop("array_digests")  # integrity digests arrived in v4
    for section, fields in V2_PLUS_FIELDS.items():
        for name in fields:
            manifest["config"][section].pop(name)
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return path


class TestCurrentSchema:
    def test_manifest_records_current_schema_version(self, fitted, tmp_path):
        system, _ = fitted
        system.save(tmp_path / "model")
        manifest = json.loads((tmp_path / "model" / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION == 4

    def test_current_round_trip_is_bitwise(self, fitted, tmp_path):
        system, x_test = fitted
        system.save(tmp_path / "model")
        loaded = DSSDDI.load(tmp_path / "model")
        assert np.array_equal(
            loaded.predict_scores(x_test), system.predict_scores(x_test)
        )

    def test_future_schema_is_rejected_cleanly(self, fitted, tmp_path):
        system, _ = fitted
        system.save(tmp_path / "model")
        manifest_path = tmp_path / "model" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported artifact format"):
            load_system(tmp_path / "model")


class TestV1Backcompat:
    def test_v1_fixture_loads_with_defaults(self, fitted, tmp_path):
        system, _ = fitted
        path = make_v1_fixture(system, tmp_path / "v1_model")
        loaded = load_system(path)
        # The stripped fields come back as their defaults.
        assert loaded.config.md.propagation_backend == "auto"
        assert loaded.config.md.score_chunk_rows == 262144
        assert loaded.config.serving.score_block == 0

    def test_v1_round_trip_is_bitwise(self, fitted, tmp_path):
        system, x_test = fitted
        path = make_v1_fixture(system, tmp_path / "v1_model")
        loaded = load_system(path)
        assert np.array_equal(
            loaded.predict_scores(x_test), system.predict_scores(x_test)
        )
        assert loaded.suggest(x_test[:4], k=3) == system.suggest(x_test[:4], k=3)
