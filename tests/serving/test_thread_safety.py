"""Thread-safety of the serving hot path (ISSUE 4 satellite).

The gateway hammers one ``SuggestionService`` from many worker threads;
the LRU cache and the stats counters must not lose updates or corrupt
their internal state under that load.
"""

import threading

from repro.serving import LRUCache


class TestLRUCacheConcurrency:
    def test_concurrent_get_put_is_consistent(self):
        cache = LRUCache(maxsize=32)
        errors = []

        def worker(tid):
            try:
                for i in range(2000):
                    key = (tid, i % 50)
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, i)
                    _ = len(cache)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Invariants survived: bounded size, coherent counters.
        assert len(cache) <= 32
        assert cache.hits + cache.misses == 8 * 2000

    def test_concurrent_clear_does_not_break_invariants(self):
        cache = LRUCache(maxsize=16)
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                cache.put(i % 64, i)
                cache.get((i + 1) % 64)
                i += 1

        def clearer():
            while not stop.is_set():
                cache.clear()

        threads = [threading.Thread(target=churn) for _ in range(4)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert len(cache) <= 16


class TestServiceStatsConcurrency:
    def test_counters_lose_no_updates(self):
        import numpy as np

        from repro.core import DSSDDI, DSSDDIConfig
        from repro.data import (
            generate_chronic_cohort,
            split_patients,
            standardize_features,
        )
        from repro.serving import SuggestionService

        cohort = generate_chronic_cohort(num_patients=80, seed=9)
        x = standardize_features(cohort.features)
        split = split_patients(80, seed=3)
        config = DSSDDIConfig.fast()
        config.ddi.epochs = 6
        config.md.epochs = 15
        system = DSSDDI(config)
        system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
        service = SuggestionService(system)
        pool = x[split.test]

        per_thread = 40
        threads = 8

        def worker(tid):
            rng = np.random.default_rng(tid)
            for _ in range(per_thread):
                service.suggest(pool[int(rng.integers(0, len(pool)))][None], k=2)

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stats = service.stats()
        assert stats.requests == threads * per_thread
        assert stats.patients_scored == threads * per_thread
