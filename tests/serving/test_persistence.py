"""Persistence round-trip: save/load must reproduce the fitted system."""

import json

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig, Explanation
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.metrics import SatisfactionBreakdown
from repro.serving import FORMAT_VERSION, load_system


@pytest.fixture(scope="module")
def fitted():
    cohort = generate_chronic_cohort(num_patients=120, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=1)
    cfg = DSSDDIConfig.fast()
    cfg.ddi.epochs = 10
    cfg.md.epochs = 30
    system = DSSDDI(cfg)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test], cohort


@pytest.fixture(scope="module")
def artifact_dir(fitted, tmp_path_factory):
    system, _x_test, _cohort = fitted
    path = tmp_path_factory.mktemp("artifacts") / "model"
    system.save(path)
    return path


class TestRoundTrip:
    def test_scores_bitwise_equal(self, fitted, artifact_dir):
        system, x_test, _ = fitted
        loaded = DSSDDI.load(artifact_dir)
        assert np.array_equal(
            system.predict_scores(x_test), loaded.predict_scores(x_test)
        )

    def test_suggestions_and_representations_survive(self, fitted, artifact_dir):
        system, x_test, cohort = fitted
        loaded = DSSDDI.load(artifact_dir)
        assert loaded.suggest(x_test[:4], k=3) == system.suggest(x_test[:4], k=3)
        assert np.array_equal(
            loaded.drug_representations(), system.drug_representations()
        )
        assert np.array_equal(
            loaded.patient_representations(x_test),
            system.patient_representations(x_test),
        )
        assert loaded.ddi_data.graph.num_nodes == cohort.num_drugs

    def test_explanations_survive_with_names(self, fitted, artifact_dir):
        system, _x_test, _ = fitted
        loaded = DSSDDI.load(artifact_dir)
        suggestion = [46, 47]  # Simvastatin + Atorvastatin (pinned synergy)
        assert loaded.explain(suggestion).render() == system.explain(
            suggestion
        ).render()
        assert "Simvastatin" in loaded.explain(suggestion).render()

    def test_config_round_trip(self, fitted, artifact_dir):
        system, _x_test, _ = fitted
        loaded = DSSDDI.load(artifact_dir)
        assert loaded.config.to_dict() == system.config.to_dict()

    def test_save_load_save_is_stable(self, fitted, artifact_dir, tmp_path):
        _system, x_test, _ = fitted
        loaded = DSSDDI.load(artifact_dir)
        loaded.save(tmp_path / "again")
        again = DSSDDI.load(tmp_path / "again")
        assert np.array_equal(
            loaded.predict_scores(x_test), again.predict_scores(x_test)
        )


class TestArtifactErrors:
    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            DSSDDI(DSSDDIConfig.fast()).save(tmp_path / "nope")

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DSSDDI.load(tmp_path / "missing")

    def test_version_mismatch_raises(self, artifact_dir, tmp_path):
        clone = tmp_path / "future"
        clone.mkdir()
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (clone / "manifest.json").write_text(json.dumps(manifest))
        (clone / "arrays.npz").write_bytes(
            (artifact_dir / "arrays.npz").read_bytes()
        )
        with pytest.raises(ValueError, match="format version"):
            load_system(clone)


class TestExplanationGolden:
    def test_render_golden_string(self):
        explanation = Explanation(
            suggested=[0, 1],
            community=[0, 1, 2, 3],
            synergy_within=[(0, 1)],
            antagonism_within=[],
            antagonism_avoided=[(1, 2)],
            satisfaction=SatisfactionBreakdown(
                value=0.625, r_in_pos=1, r_in_neg=0, r_out_neg=1,
                subgraph_nodes=4, k=2,
            ),
            drug_names={0: "Perindopril", 1: "Indapamide", 2: "Theophylline"},
        )
        assert explanation.render() == (
            "Suggestion: Perindopril, Indapamide\n"
            "Suggestion Satisfaction: 0.6250\n"
            "Synergism:\n"
            "  Perindopril and Indapamide\n"
            "Antagonism (avoided non-suggested drugs):\n"
            "  Indapamide and Theophylline"
        )

    def test_render_warns_on_internal_antagonism_and_unknown_names(self):
        explanation = Explanation(
            suggested=[4, 7],
            community=[4, 7],
            synergy_within=[],
            antagonism_within=[(4, 7)],
            antagonism_avoided=[],
            satisfaction=SatisfactionBreakdown(
                value=0.1, r_in_pos=0, r_in_neg=1, r_out_neg=0,
                subgraph_nodes=2, k=2,
            ),
        )
        assert explanation.render() == (
            "Suggestion: drug 4, drug 7\n"
            "Suggestion Satisfaction: 0.1000\n"
            "WARNING - antagonism inside the suggestion:\n"
            "  drug 4 and drug 7"
        )
