"""Memory-mapped artifact loading: shared pages, bitwise equality.

``mmap_mode="r"`` is the foundation of the pre-fork worker pool: N
worker processes open the same ``arrays.npz`` and the kernel's page
cache gives them one physical copy of the weights.  These tests pin the
contract that makes that safe:

* mapped loads score **bitwise identically** to in-memory loads,
* the big training-set arrays actually stay mapped (no silent copy),
* everything is read-only,
* members the in-place mapper cannot handle (compressed, 0-d) fall back
  to plain copies instead of failing.
"""

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.serving import SuggestionService
from repro.serving.artifact import ARRAYS_NAME, load_arrays


@pytest.fixture(scope="module")
def fitted():
    cohort = generate_chronic_cohort(num_patients=120, seed=5)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=1)
    cfg = DSSDDIConfig.fast()
    cfg.ddi.epochs = 10
    cfg.md.epochs = 30
    system = DSSDDI(cfg)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test]


@pytest.fixture(scope="module")
def artifact_dir(fitted, tmp_path_factory):
    system, _x_test = fitted
    path = tmp_path_factory.mktemp("mmap_artifacts") / "model"
    system.save(path)
    return path


def _memmap_backed(array: np.ndarray) -> bool:
    """Whether the array's base chain terminates in an np.memmap."""
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


class TestLoadArrays:
    def test_mmap_members_match_copies_bitwise(self, artifact_dir):
        copied = load_arrays(artifact_dir / ARRAYS_NAME)
        mapped = load_arrays(artifact_dir / ARRAYS_NAME, mmap_mode="r")
        assert set(copied) == set(mapped)
        for name in copied:
            assert np.array_equal(copied[name], mapped[name]), name
            assert copied[name].dtype == mapped[name].dtype, name

    def test_multidim_members_are_memmaps_and_read_only(self, artifact_dir):
        mapped = load_arrays(artifact_dir / ARRAYS_NAME, mmap_mode="r")
        memmapped = [n for n, a in mapped.items() if _memmap_backed(a)]
        # np.savez stores uncompressed: every >=1-D member must map.
        assert memmapped, "no member was memory-mapped"
        for name in memmapped:
            assert not mapped[name].flags.writeable, name
            with pytest.raises((ValueError, OSError)):
                mapped[name][(0,) * mapped[name].ndim] = 0.0

    def test_rejects_writable_mmap_modes(self, artifact_dir):
        for bad in ("r+", "w+", "c"):
            with pytest.raises(ValueError, match="read-only"):
                load_arrays(artifact_dir / ARRAYS_NAME, mmap_mode=bad)

    def test_compressed_npz_falls_back_to_copies(self, tmp_path):
        path = tmp_path / "compressed.npz"
        data = {"a": np.arange(12.0).reshape(3, 4), "b": np.ones(5)}
        np.savez_compressed(path, **data)
        loaded = load_arrays(path, mmap_mode="r")
        for name, expected in data.items():
            assert np.array_equal(loaded[name], expected)
            assert not _memmap_backed(loaded[name])

    def test_zero_dim_members_fall_back(self, tmp_path):
        path = tmp_path / "scalars.npz"
        np.savez(path, scalar=np.float64(3.5), matrix=np.eye(3))
        loaded = load_arrays(path, mmap_mode="r")
        assert loaded["scalar"] == pytest.approx(3.5)
        assert _memmap_backed(loaded["matrix"])

    def test_fortran_order_preserved(self, tmp_path):
        path = tmp_path / "fortran.npz"
        f_ordered = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        np.savez(path, f=f_ordered)
        loaded = load_arrays(path, mmap_mode="r")["f"]
        assert loaded.flags.f_contiguous
        assert np.array_equal(loaded, f_ordered)


class TestMmapSystem:
    def test_scores_bitwise_equal_to_copy_load(self, fitted, artifact_dir):
        system, x_test = fitted
        mapped = DSSDDI.load(artifact_dir, mmap_mode="r")
        copied = DSSDDI.load(artifact_dir)
        expected = system.predict_scores(x_test)
        assert np.array_equal(mapped.predict_scores(x_test), expected)
        assert np.array_equal(copied.predict_scores(x_test), expected)
        assert mapped.suggest(x_test[:4], k=3) == system.suggest(x_test[:4], k=3)

    def test_big_arrays_stay_mapped_not_copied(self, artifact_dir):
        # The point of mmap_mode is memory: the training-set matrices
        # (the artifact's bulk) must remain views over the file, not
        # silently degrade into private copies during from_state.
        mapped = DSSDDI.load(artifact_dir, mmap_mode="r")
        md = mapped.md_module
        for name in ("_x_train", "_treatment", "_z_drugs"):
            assert _memmap_backed(getattr(md, name)), name

    def test_service_load_with_mmap(self, fitted, artifact_dir):
        _system, x_test = fitted
        mapped = SuggestionService.load(artifact_dir, mmap_mode="r")
        copied = SuggestionService.load(artifact_dir)
        assert np.array_equal(
            mapped.predict_scores(x_test), copied.predict_scores(x_test)
        )
        assert np.array_equal(
            mapped.suggest(x_test[:8], k=3), copied.suggest(x_test[:8], k=3)
        )

    def test_explanations_survive_mmap(self, artifact_dir):
        mapped = DSSDDI.load(artifact_dir, mmap_mode="r")
        copied = DSSDDI.load(artifact_dir)
        suggestion = copied.suggest(np.zeros(copied.md_module._x_train.shape[1]), k=3)[0]
        assert mapped.explain(suggestion).render() == copied.explain(suggestion).render()
