"""The batched SuggestionService: parity with the core system, caching,
re-ranking, and the LRU cache itself."""

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig, ServingConfig, canonical_suggestion
from repro.core.rerank import antagonism_count
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.serving import LRUCache, SuggestionService


@pytest.fixture(scope="module")
def fitted():
    cohort = generate_chronic_cohort(num_patients=120, seed=9)
    x = standardize_features(cohort.features)
    split = split_patients(120, seed=2)
    cfg = DSSDDIConfig.fast()
    cfg.ddi.epochs = 10
    cfg.md.epochs = 30
    system = DSSDDI(cfg)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, x[split.test], cohort


@pytest.fixture()
def service(fitted):
    system, _x, _cohort = fitted
    return SuggestionService(system)


class TestScoringParity:
    def test_scores_match_system_bitwise(self, fitted, service):
        system, x_test, _ = fitted
        assert np.array_equal(
            service.predict_scores(x_test), system.predict_scores(x_test)
        )

    def test_suggest_matches_system(self, fitted, service):
        system, x_test, _ = fitted
        batched = service.suggest(x_test, k=4)
        assert batched.shape == (len(x_test), 4)
        assert batched.tolist() == system.suggest(x_test, k=4)

    def test_single_patient_and_1d_input(self, fitted, service):
        _system, x_test, _ = fitted
        row = service.suggest(x_test[0], k=3)
        assert row.shape == (1, 3)
        assert row.tolist() == service.suggest(x_test[:1], k=3).tolist()

    def test_default_k_from_config(self, fitted):
        system, x_test, _ = fitted
        service = SuggestionService(system, config=ServingConfig(default_k=5))
        assert service.suggest(x_test[:2]).shape == (2, 5)

    def test_explicit_zero_k_rejected(self, fitted, service):
        _system, x_test, _ = fitted
        with pytest.raises(ValueError):
            service.suggest(x_test[:2], k=0)


class TestExplanationCache:
    def test_repeated_suggestions_hit_cache(self, fitted):
        system, x_test, _ = fitted
        service = SuggestionService(system)
        batch = np.tile(x_test[:2], (3, 1))  # 6 patients, <= 2 distinct
        distinct = {tuple(sorted(row)) for row in system.suggest(x_test[:2], k=3)}
        explanations = service.suggest_and_explain(batch, k=3)
        assert len(explanations) == 6
        stats = service.stats()
        assert stats.cache_misses == len(distinct)
        assert stats.cache_hits == 6 - len(distinct)
        assert stats.cache_hit_rate == pytest.approx(stats.cache_hits / 6)
        # Repeats share the cached object outright.
        assert explanations[0] is explanations[2]

    def test_explain_order_and_duplicates_are_one_key(self, fitted, service):
        first = service.explain([47, 46])
        second = service.explain([46, 47, 46])
        assert first is second
        assert service.stats().cache_hits == 1

    def test_explain_matches_system(self, fitted, service):
        system, _x, _ = fitted
        assert service.explain([46, 47]).render() == system.explain(
            [46, 47]
        ).render()

    def test_cache_disabled(self, fitted):
        system, _x, _ = fitted
        service = SuggestionService(
            system, config=ServingConfig(explanation_cache_size=0)
        )
        service.explain([46, 47])
        service.explain([46, 47])
        assert service.stats().cache_hits == 0
        assert service.stats().cache_misses == 2

    def test_clear_cache(self, fitted, service):
        service.explain([46, 47])
        service.clear_cache()
        service.explain([46, 47])
        assert service.stats().cache_misses == 1
        assert service.stats().cache_hits == 0


class TestRerank:
    def test_reranked_suggestions_are_safer(self, fitted):
        system, x_test, cohort = fitted
        plain = SuggestionService(system)
        safe = SuggestionService(
            system,
            config=ServingConfig(rerank=True, hard_exclude=True),
        )
        k = 5
        plain_conflicts = sum(
            antagonism_count(row, cohort.ddi.graph)
            for row in plain.suggest(x_test, k=k)
        )
        safe_conflicts = sum(
            antagonism_count(row, cohort.ddi.graph)
            for row in safe.suggest(x_test, k=k)
        )
        assert safe_conflicts <= plain_conflicts
        assert safe.suggest(x_test[:3], k=k).shape == (3, k)

    def test_unfitted_system_rejected(self):
        with pytest.raises(RuntimeError):
            SuggestionService(DSSDDI(DSSDDIConfig.fast()))


class TestCanonicalSuggestion:
    def test_sorts_and_dedupes(self):
        assert canonical_suggestion([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            canonical_suggestion([])


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recently used
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_size_disables_storage(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)
