"""Unit and property-based tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    Tensor,
    concat,
    gather_rows,
    matmul_fixed,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    where,
)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
    elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)


class TestForward:
    def test_add(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).numpy(), [4.0, 6.0])

    def test_scalar_broadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a + 1.0).numpy(), [[2.0, 3.0], [4.0, 5.0]])
        assert np.allclose((2.0 * a).numpy(), [[2.0, 4.0], [6.0, 8.0]])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        assert np.allclose((a @ b).numpy(), a.numpy() @ b.numpy())

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-800.0, 0.0, 800.0])
        y = x.sigmoid().numpy()
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0, abs=1e-12)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        s = softmax(x, axis=-1).numpy()
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_backward_on_nonscalar_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackward:
    def test_add_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_broadcast_bias_grad_sums_over_batch(self):
        x = Tensor(np.ones((5, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (x + bias).sum().backward()
        assert np.allclose(bias.grad, [5.0, 5.0, 5.0])

    def test_matmul_grads(self):
        rng = np.random.default_rng(1)
        a_val = rng.normal(size=(4, 3))
        b_val = rng.normal(size=(3, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        num_a = numerical_grad(lambda v: (v @ b_val).sum(), a_val.copy())
        num_b = numerical_grad(lambda v: (a_val @ v).sum(), b_val.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_vector_matmul_grads(self):
        rng = np.random.default_rng(2)
        a_val = rng.normal(size=3)
        b_val = rng.normal(size=(3, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        num_a = numerical_grad(lambda v: (v @ b_val).sum(), a_val.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)

    def test_grad_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # x used twice
        y.sum().backward()
        assert np.allclose(x.grad, [4.0])

    def test_getitem_scatter_adds_duplicates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])

    def test_max_ties_split_gradient(self):
        x = Tensor([1.0, 1.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad.sum(), 1.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0001
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.relu(),
            lambda t: t.leaky_relu(0.2),
            lambda t: t.softplus(),
            lambda t: t.abs(),
            lambda t: t * t,
            lambda t: t**3,
            lambda t: t / 2.0,
            lambda t: 1.0 / (t + 10.0),
            lambda t: (t + 5.0).log(),
            lambda t: (t + 5.0).sqrt(),
        ],
    )
    def test_unary_ops_match_numerical_gradient(self, op):
        rng = np.random.default_rng(3)
        x_val = rng.normal(size=(3, 4)) + 0.3  # keep away from relu/abs kinks
        x = Tensor(x_val, requires_grad=True)
        op(x).sum().backward()

        def scalar_fn(v):
            return float(op(Tensor(v)).sum().numpy())

        num = numerical_grad(scalar_fn, x_val.copy())
        assert np.allclose(x.grad, num, atol=1e-4)

    @settings(max_examples=50, deadline=None)
    @given(small_arrays)
    def test_sum_gradient_is_ones(self, x_val):
        x = Tensor(x_val, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(x_val))

    @settings(max_examples=50, deadline=None)
    @given(small_arrays)
    def test_mean_gradient_is_uniform(self, x_val):
        x = Tensor(x_val, requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, np.full_like(x_val, 1.0 / x_val.size))

    @settings(max_examples=30, deadline=None)
    @given(small_arrays)
    def test_tanh_gradient_property(self, x_val):
        x = Tensor(x_val, requires_grad=True)
        y = x.tanh()
        y.sum().backward()
        assert np.allclose(x.grad, 1.0 - np.tanh(x_val) ** 2, atol=1e-10)


class TestStructuredOps:
    def test_concat_forward_and_grads(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(2 * np.ones((2, 2)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * Tensor(np.arange(10, dtype=float).reshape(2, 5))).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)
        assert np.allclose(a.grad, [[0, 1, 2], [5, 6, 7]])
        assert np.allclose(b.grad, [[3, 4], [8, 9]])

    def test_stack_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        (out.sum()).backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])

    def test_matmul_fixed_matches_dense(self):
        rng = np.random.default_rng(4)
        adj = rng.random((5, 5))
        x_val = rng.normal(size=(5, 3))
        x1 = Tensor(x_val, requires_grad=True)
        x2 = Tensor(x_val, requires_grad=True)
        matmul_fixed(adj, x1).sum().backward()
        (Tensor(adj) @ x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad)

    def test_segment_sum_and_mean(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]), requires_grad=True)
        seg = np.array([0, 0, 1, 1])
        total = segment_sum(x, seg, 2)
        assert np.allclose(total.numpy(), [[3.0], [7.0]])
        mean = segment_mean(x, seg, 2)
        assert np.allclose(mean.numpy(), [[1.5], [3.5]])
        mean.sum().backward()
        assert np.allclose(x.grad, [[0.5], [0.5], [0.5], [0.5]])

    def test_segment_mean_empty_segment_is_zero(self):
        x = Tensor(np.array([[2.0]]))
        out = segment_mean(x, np.array([1]), 3)
        assert np.allclose(out.numpy(), [[0.0], [2.0], [0.0]])

    def test_segment_softmax_normalizes_per_segment(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0, 1.0]), requires_grad=True)
        seg = np.array([0, 0, 1, 1])
        out = segment_softmax(scores, seg, 2)
        vals = out.numpy()
        assert vals[0] + vals[1] == pytest.approx(1.0)
        assert vals[2] + vals[3] == pytest.approx(1.0)
        out.sum().backward()  # gradient of a constant-per-segment sum ~ 0
        assert np.allclose(scores.grad, 0.0, atol=1e-10)

    def test_gather_rows(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        out = gather_rows(x, np.array([3, 1]))
        assert np.allclose(out.numpy(), [[9, 10, 11], [3, 4, 5]])

    def test_reshape_and_transpose_roundtrip_grads(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        y = x.reshape(3, 2).transpose()
        assert y.shape == (2, 3)
        y.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_detach_stops_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.detach() * 3.0
        assert not y.requires_grad
