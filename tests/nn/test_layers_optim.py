"""Tests for layers, optimizers and losses of the nn substrate."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm1d,
    Dropout,
    Embedding,
    Linear,
    MLP,
    Module,
    ParameterList,
    SGD,
    Sequential,
    Tensor,
    bce_loss,
    bce_with_logits,
    clip_grad_norm,
    get_activation,
    l2_regularizer,
    margin_ranking_loss,
    mse_loss,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLinearAndMLP:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((7, 4))))
        assert out.shape == (7, 3)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_forward_shape(self, rng):
        mlp = MLP([5, 8, 8, 2], rng)
        assert mlp(Tensor(np.zeros((3, 5)))).shape == (3, 2)

    def test_mlp_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_batchnorm_layers_registered(self, rng):
        mlp = MLP([5, 8, 2], rng, batch_norm=True)
        names = dict(mlp.named_parameters())
        assert any("norm0" in n for n in names)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            get_activation("swishy")

    def test_linear_learns_identity(self, rng):
        layer = Linear(2, 2, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        x_val = rng.normal(size=(64, 2))
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x_val)), Tensor(x_val))
            loss.backward()
            opt.step()
        assert float(loss.numpy()) < 1e-3


class TestModuleProtocol:
    def test_parameters_recursive(self, rng):
        seq = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        assert len(seq.parameters()) == 4

    def test_named_parameters_unique(self, rng):
        mlp = MLP([3, 4, 2], rng)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self, rng):
        src = MLP([3, 4, 2], rng)
        dst = MLP([3, 4, 2], np.random.default_rng(7))
        dst.load_state_dict(src.state_dict())
        x = Tensor(rng.normal(size=(5, 3)))
        assert np.allclose(src(x).numpy(), dst(x).numpy())

    def test_load_state_dict_shape_mismatch(self, rng):
        mlp = MLP([3, 4, 2], rng)
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_load_state_dict_missing_key(self, rng):
        mlp = MLP([3, 4, 2], rng)
        with pytest.raises(KeyError):
            mlp.load_state_dict({})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Dropout(0.5, rng), Linear(3, 3, rng))
        seq.eval()
        assert not seq.items[0].training
        seq.train()
        assert seq.items[0].training

    def test_zero_grad_clears(self, rng):
        layer = Linear(2, 2, rng)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_parameter_list(self):
        plist = ParameterList([Tensor(np.zeros(2), requires_grad=True) for _ in range(3)])
        assert len(plist) == 3
        assert len(plist.parameters()) == 3
        assert plist[0].shape == (2,)


class TestBatchNormDropoutEmbedding:
    def test_batchnorm_normalizes_training_batch(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(200, 4)))
        out = bn(x).numpy()
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(2, momentum=1.0)
        x = Tensor(rng.normal(loc=2.0, size=(100, 2)))
        bn(x)  # updates running stats fully (momentum=1)
        bn.eval()
        out = bn(Tensor(np.full((10, 2), 2.0))).numpy()
        assert np.all(np.abs(out) < 1.0)

    def test_dropout_eval_is_identity(self, rng):
        drop = Dropout(0.7, rng)
        drop.eval()
        x = np.ones((4, 4))
        assert np.allclose(drop(Tensor(x)).numpy(), x)

    def test_dropout_scales_kept_units(self, rng):
        drop = Dropout(0.5, rng)
        out = drop(Tensor(np.ones((1000, 10)))).numpy()
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_embedding_lookup_and_bounds(self, rng):
        emb = Embedding(5, 3, rng)
        out = emb(np.array([0, 4]))
        assert out.shape == (2, 3)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_embedding_gradient_flows_to_rows(self, rng):
        emb = Embedding(4, 2, rng)
        out = emb(np.array([1, 1]))
        out.sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[1], [2.0, 2.0])
        assert np.allclose(grad[0], 0.0)


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        x = Tensor([10.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert abs(x.item()) < 1e-3

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            x = Tensor([10.0], requires_grad=True)
            opt = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (x * x).sum().backward()
                opt.step()
            return abs(x.item())

        assert run(0.9) < run(0.0)

    def test_adam_descends_rosenbrock_slice(self):
        x = Tensor([0.0, 0.0], requires_grad=True)
        opt = Adam([x], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            a = x[np.array([0])]
            b = x[np.array([1])]
            loss = ((1.0 - a) ** 2 + 100.0 * (b - a * a) ** 2).sum()
            loss.backward()
            opt.step()
        assert np.allclose(x.numpy(), [1.0, 1.0], atol=0.15)

    def test_weight_decay_shrinks_weights(self):
        x = Tensor([5.0], requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (x * 0.0).sum().backward()
        opt.step()
        assert x.item() < 5.0

    def test_optimizer_requires_params(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_clip_grad_norm(self):
        x = Tensor([3.0, 4.0], requires_grad=True)
        (x * x).sum().backward()  # grad = (6, 8), norm 10
        norm = clip_grad_norm([x], 1.0)
        assert norm == pytest.approx(10.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_step_skips_none_grads(self):
        x = Tensor([1.0], requires_grad=True)
        opt = Adam([x])
        opt.step()  # no backward ran; should not crash
        assert x.item() == 1.0


class TestLosses:
    def test_mse_zero_when_equal(self):
        pred = Tensor([1.0, 2.0])
        assert float(mse_loss(pred, np.array([1.0, 2.0])).numpy()) == 0.0

    def test_bce_matches_closed_form(self):
        prob = Tensor([0.9, 0.1])
        target = np.array([1.0, 0.0])
        expected = -np.mean([np.log(0.9), np.log(0.9)])
        assert float(bce_loss(prob, target).numpy()) == pytest.approx(expected)

    def test_bce_stable_at_extremes(self):
        prob = Tensor([0.0, 1.0])
        val = float(bce_loss(prob, np.array([1.0, 0.0])).numpy())
        assert np.isfinite(val)

    def test_bce_with_logits_matches_bce(self):
        rng = np.random.default_rng(0)
        logits_val = rng.normal(size=20)
        target = (rng.random(20) > 0.5).astype(float)
        a = float(bce_with_logits(Tensor(logits_val), target).numpy())
        probs = 1.0 / (1.0 + np.exp(-logits_val))
        b = float(bce_loss(Tensor(probs), target).numpy())
        assert a == pytest.approx(b, rel=1e-6)

    def test_bce_with_logits_gradient_is_sigmoid_minus_target(self):
        logits = Tensor([0.0, 2.0], requires_grad=True)
        target = np.array([1.0, 0.0])
        bce_with_logits(logits, target).backward()
        expected = (1.0 / (1.0 + np.exp(-logits.numpy())) - target) / 2.0
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_margin_ranking_loss_zero_when_separated(self):
        pos = Tensor([0.0])
        neg = Tensor([5.0])
        assert float(margin_ranking_loss(pos, neg, margin=1.0).numpy()) == 0.0

    def test_l2_regularizer(self):
        params = [Tensor([3.0], requires_grad=True), Tensor([4.0], requires_grad=True)]
        assert float(l2_regularizer(params, 0.5).numpy()) == pytest.approx(12.5)

    def test_l2_regularizer_empty(self):
        assert float(l2_regularizer([], 1.0).numpy()) == 0.0
