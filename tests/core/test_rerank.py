"""Tests for the DDI-aware greedy re-ranker (extension module)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RerankConfig, antagonism_count, rerank_topk
from repro.data import generate_ddi
from repro.graph import SignedGraph
from repro.metrics import recall_at_k, top_k_indices


def small_graph():
    # 0-1 antagonistic, 0-2 synergistic
    return SignedGraph.from_signed_edges(4, [(0, 1, -1), (0, 2, 1)])


class TestRerank:
    def test_no_ddi_pressure_matches_topk(self):
        graph = SignedGraph(4)  # no edges at all
        scores = np.array([[0.9, 0.7, 0.5, 0.1]])
        picked = rerank_topk(scores, graph, 3)
        assert picked.tolist() == top_k_indices(scores, 3).tolist()

    def test_synergy_bonus_promotes_partner(self):
        graph = small_graph()
        # drug 2 slightly below drug 3; synergy with selected drug 0 flips it
        scores = np.array([[0.9, 0.0, 0.50, 0.52]])
        config = RerankConfig(synergy_bonus=0.1, antagonism_penalty=0.0)
        picked = rerank_topk(scores, graph, 2, config).tolist()[0]
        assert picked == [0, 2]

    def test_antagonism_penalty_demotes_conflict(self):
        graph = small_graph()
        # drug 1 would be second by score but antagonizes drug 0
        scores = np.array([[0.9, 0.6, 0.55, 0.1]])
        config = RerankConfig(synergy_bonus=0.0, antagonism_penalty=0.2)
        picked = rerank_topk(scores, graph, 2, config).tolist()[0]
        assert picked == [0, 2]

    def test_weak_penalty_keeps_dominant_conflict(self):
        graph = small_graph()
        scores = np.array([[0.9, 0.8, 0.2, 0.1]])
        config = RerankConfig(synergy_bonus=0.0, antagonism_penalty=0.05)
        picked = rerank_topk(scores, graph, 2, config).tolist()[0]
        assert picked == [0, 1]  # score dominance survives a soft penalty

    def test_hard_exclude_skips_conflicts(self):
        graph = small_graph()
        scores = np.array([[0.9, 0.89, 0.2, 0.1]])
        config = RerankConfig(antagonism_penalty=0.0, hard_exclude=True)
        picked = rerank_topk(scores, graph, 2, config).tolist()[0]
        assert 1 not in picked

    def test_hard_exclude_falls_back_when_no_clean_candidate(self):
        graph = SignedGraph.from_signed_edges(2, [(0, 1, -1)])
        scores = np.array([[0.9, 0.8]])
        config = RerankConfig(hard_exclude=True)
        picked = rerank_topk(scores, graph, 2, config).tolist()[0]
        assert sorted(picked) == [0, 1]  # both must be picked, k = n

    def test_validation(self):
        graph = small_graph()
        scores = np.zeros((1, 4))
        with pytest.raises(ValueError):
            rerank_topk(scores, graph, 0)
        with pytest.raises(ValueError):
            rerank_topk(scores, graph, 5)
        with pytest.raises(ValueError):
            rerank_topk(np.zeros(4), graph, 2)
        with pytest.raises(ValueError):
            rerank_topk(scores, SignedGraph(9), 2)
        with pytest.raises(ValueError):
            RerankConfig(synergy_bonus=-1.0).validate()

    def test_antagonism_count(self):
        graph = small_graph()
        assert antagonism_count([0, 1], graph) == 1
        assert antagonism_count([0, 2], graph) == 0
        assert antagonism_count([0, 1, 2], graph) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 1000))
    def test_selection_is_unique_and_sized(self, k, seed):
        rng = np.random.default_rng(seed)
        data = generate_ddi(seed=3, num_synergy=8, num_antagonism=12, num_drugs=12)
        scores = rng.random((3, 12))
        picked = rerank_topk(scores, data.graph, k)
        assert picked.shape == (3, k)
        for row in picked:
            assert len(set(row.tolist())) == k

    def test_reduces_antagonism_on_real_graph(self):
        """Across random scores, hard-exclude reranking never increases and
        usually reduces the antagonistic pairs inside the suggestion."""
        data = generate_ddi(seed=7)
        rng = np.random.default_rng(0)
        scores = rng.random((40, 86))
        plain = top_k_indices(scores, 5)
        hard = rerank_topk(
            scores, data.graph, 5, RerankConfig(hard_exclude=True, antagonism_penalty=1.0)
        )
        plain_conflicts = sum(antagonism_count(row, data.graph) for row in plain)
        hard_conflicts = sum(antagonism_count(row, data.graph) for row in hard)
        assert hard_conflicts < plain_conflicts

    def test_small_penalty_preserves_recall(self):
        """Conservative reranking barely moves the ranking metrics."""
        data = generate_ddi(seed=7)
        rng = np.random.default_rng(1)
        scores = rng.random((30, 86))
        labels = (rng.random((30, 86)) > 0.9).astype(int)
        base = recall_at_k(scores, labels, 5)
        picked = rerank_topk(scores, data.graph, 5, RerankConfig(0.001, 0.001))
        hits = sum(labels[i, d] for i in range(30) for d in picked[i])
        reranked = hits / max(labels.sum(), 1)
        assert abs(reranked - base) < 0.1
