"""Integration tests for the assembled DSSDDI system."""

import numpy as np
import pytest

from repro.core import DSSDDI, DSSDDIConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.metrics import ranking_report, recall_at_k


@pytest.fixture(scope="module")
def fitted_system():
    cohort = generate_chronic_cohort(num_patients=250, seed=11)
    x = standardize_features(cohort.features)
    split = split_patients(250, seed=1)
    cfg = DSSDDIConfig.fast()
    cfg.ddi.epochs = 40
    cfg.md.epochs = 80
    system = DSSDDI(cfg)
    report = system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)
    return system, report, cohort, x, split


class TestDSSDDISystem:
    def test_fit_returns_logs(self, fitted_system):
        _system, report, *_ = fitted_system
        assert report.ddi_log is not None
        assert report.md_log.final_loss < report.md_log.factual_losses[0]

    def test_predict_scores_shape(self, fitted_system):
        system, _report, cohort, x, split = fitted_system
        scores = system.predict_scores(x[split.test])
        assert scores.shape == (len(split.test), cohort.num_drugs)

    def test_better_than_random(self, fitted_system):
        system, _report, cohort, x, split = fitted_system
        scores = system.predict_scores(x[split.test])
        labels = cohort.medications[split.test]
        rng = np.random.default_rng(0)
        assert recall_at_k(scores, labels, 5) > 2 * recall_at_k(
            rng.random(scores.shape), labels, 5
        )

    def test_suggest_returns_k_unique_drugs(self, fitted_system):
        system, _report, _cohort, x, split = fitted_system
        suggestions = system.suggest(x[split.test][:5], k=4)
        assert len(suggestions) == 5
        for row in suggestions:
            assert len(row) == 4
            assert len(set(row)) == 4

    def test_explanations_cover_suggestions(self, fitted_system):
        system, _report, _cohort, x, split = fitted_system
        explanations = system.suggest_and_explain(x[split.test][:2], k=3)
        assert len(explanations) == 2
        for explanation in explanations:
            assert len(explanation.suggested) == 3
            assert set(explanation.suggested) <= set(explanation.community)
            assert explanation.render()

    def test_drug_names_resolved_in_explanations(self, fitted_system):
        system, _report, cohort, x, split = fitted_system
        explanation = system.suggest_and_explain(x[split.test][:1], k=2)[0]
        text = explanation.render()
        assert "drug " not in text  # every id has a catalog name

    def test_representations_accessible(self, fitted_system):
        system, _report, cohort, x, split = fitted_system
        p_reps = system.patient_representations(x[split.test])
        d_reps = system.drug_representations()
        assert p_reps.shape[0] == len(split.test)
        assert d_reps.shape[0] == cohort.num_drugs

    def test_requires_fit(self):
        system = DSSDDI(DSSDDIConfig.fast())
        with pytest.raises(RuntimeError):
            system.predict_scores(np.zeros((1, 71)))
        with pytest.raises(RuntimeError):
            system.explain([0, 1])

    def test_ranking_report_integration(self, fitted_system):
        system, _report, cohort, x, split = fitted_system
        scores = system.predict_scores(x[split.test])
        reports = ranking_report(scores, cohort.medications[split.test], range(1, 7))
        assert len(reports) == 6
        # recall grows with k
        recalls = [r.recall for r in reports]
        assert recalls == sorted(recalls)


class TestAblationModes:
    @pytest.mark.parametrize("mode", ["onehot", "kg", "none"])
    def test_modes_run(self, mode):
        cohort = generate_chronic_cohort(num_patients=120, seed=5)
        x = standardize_features(cohort.features)
        cfg = DSSDDIConfig.fast()
        cfg.ddi.epochs = 10
        cfg.md.epochs = 30
        cfg.md.drug_embedding_mode = mode
        system = DSSDDI(cfg)
        report = system.fit(x[:80], cohort.medications[:80], cohort.ddi, kg_epochs=2)
        assert report.md_log.final_loss > 0
        scores = system.predict_scores(x[80:])
        assert scores.shape == (40, cohort.num_drugs)
        # DDIGCN is only trained in "ddigcn" mode
        assert report.ddi_log is None

    def test_custom_drug_features(self):
        cohort = generate_chronic_cohort(num_patients=100, seed=6)
        x = standardize_features(cohort.features)
        cfg = DSSDDIConfig.fast()
        cfg.ddi.epochs = 10
        cfg.md.epochs = 20
        custom = np.random.default_rng(0).normal(size=(cohort.num_drugs, 12))
        system = DSSDDI(cfg, drug_feature_matrix=custom)
        system.fit(x[:70], cohort.medications[:70], cohort.ddi)
        assert system.predict_scores(x[70:]).shape == (30, cohort.num_drugs)
