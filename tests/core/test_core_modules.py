"""Tests for the DDI, MD and MS modules."""

import numpy as np
import pytest

from repro.core import (
    DDIGCNConfig,
    DDIModule,
    DSSDDIConfig,
    MDGCNConfig,
    MDModule,
    MSConfig,
    MSModule,
)
from repro.data import generate_chronic_cohort, generate_ddi, standardize_features
from repro.graph import SignedGraph


@pytest.fixture(scope="module")
def small_ddi():
    return generate_ddi(seed=1, num_synergy=15, num_antagonism=25, num_drugs=30)


@pytest.fixture(scope="module")
def tiny_cohort():
    return generate_chronic_cohort(num_patients=120, seed=11)


def quick_ddi_config(backbone="sgcn"):
    return DDIGCNConfig(backbone=backbone, hidden_dim=16, num_layers=2, epochs=40)


class TestConfigs:
    def test_defaults_match_paper(self):
        cfg = DSSDDIConfig()
        assert cfg.ddi.learning_rate == 0.001
        assert cfg.md.learning_rate == 0.01
        assert cfg.ddi.epochs == 400
        assert cfg.md.epochs == 1000
        assert cfg.ddi.num_layers == 3
        assert cfg.md.num_layers == 2
        assert cfg.md.delta == 1.0
        assert cfg.ddi.hidden_dim == cfg.md.hidden_dim == 64

    def test_invalid_backbone(self):
        with pytest.raises(ValueError):
            DDIGCNConfig(backbone="gat").validate()

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            MDGCNConfig(drug_embedding_mode="magic").validate()

    def test_mismatched_hidden_dims_allowed(self):
        """The DDI adapter projects any embedding dim into the MD space."""
        cfg = DSSDDIConfig()
        cfg.ddi.hidden_dim = 32
        cfg.validate()

    def test_ms_alpha_bounds(self):
        with pytest.raises(ValueError):
            MSConfig(alpha=1.0).validate()

    def test_fast_config_valid(self):
        DSSDDIConfig.fast().validate()


class TestDDIModule:
    @pytest.mark.parametrize("backbone", ["gin", "sgcn", "sigat", "snea"])
    def test_all_backbones_train(self, small_ddi, backbone):
        cfg = DDIGCNConfig(
            backbone=backbone, hidden_dim=16, num_layers=2, epochs=25
        )
        module = DDIModule(cfg)
        log = module.fit(small_ddi.graph)
        assert len(log.losses) == 25
        emb = module.drug_embeddings()
        assert emb.shape == (30, 16)
        assert np.isfinite(emb).all()

    def test_loss_decreases(self, small_ddi):
        module = DDIModule(quick_ddi_config())
        log = module.fit(small_ddi.graph)
        assert log.final_loss < log.losses[0]

    def test_embeddings_separate_signs(self, small_ddi):
        """Synergistic pairs must score higher than antagonistic pairs."""
        cfg = DDIGCNConfig(backbone="sgcn", hidden_dim=32, num_layers=2, epochs=150)
        module = DDIModule(cfg)
        module.fit(small_ddi.graph)
        syn_scores = module.edge_scores(small_ddi.synergy)
        ant_scores = module.edge_scores(small_ddi.antagonism)
        assert syn_scores.mean() > ant_scores.mean()

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            DDIModule(quick_ddi_config()).drug_embeddings()

    def test_zero_edge_ratio_zero(self, small_ddi):
        cfg = quick_ddi_config()
        cfg.zero_edge_ratio = 0.0
        module = DDIModule(cfg)
        module.fit(small_ddi.graph)
        assert len(module._graph.edges_of_sign(0)) == 0

    def test_deterministic(self, small_ddi):
        a = DDIModule(quick_ddi_config())
        b = DDIModule(quick_ddi_config())
        a.fit(small_ddi.graph)
        b.fit(small_ddi.graph)
        assert np.allclose(a.drug_embeddings(), b.drug_embeddings())


class TestMDModule:
    def _fit(self, cohort, use_cf=True, ddi_emb=True, epochs=60):
        x = standardize_features(cohort.features)
        n = cohort.num_drugs
        cfg = MDGCNConfig(hidden_dim=16, epochs=epochs, use_counterfactual=use_cf)
        module = MDModule(cfg)
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(n, 16)) if ddi_emb else None
        log = module.fit(
            x[:80],
            cohort.medications[:80],
            np.eye(n),
            cohort.ddi.graph,
            embeddings,
            num_clusters=5,
        )
        return module, log, x

    def test_training_reduces_loss(self, tiny_cohort):
        _module, log, _x = self._fit(tiny_cohort)
        assert log.final_loss < log.factual_losses[0]

    def test_scores_shape_and_range(self, tiny_cohort):
        module, _log, x = self._fit(tiny_cohort)
        scores = module.predict_scores(x[80:])
        assert scores.shape == (40, tiny_cohort.num_drugs)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_beats_random_ranking(self, tiny_cohort):
        from repro.metrics import recall_at_k

        module, _log, x = self._fit(tiny_cohort, epochs=150)
        scores = module.predict_scores(x[80:])
        labels = tiny_cohort.medications[80:]
        rng = np.random.default_rng(0)
        random_scores = rng.random(scores.shape)
        assert recall_at_k(scores, labels, 5) > 2 * recall_at_k(
            random_scores, labels, 5
        )

    def test_without_counterfactual(self, tiny_cohort):
        _module, log, _x = self._fit(tiny_cohort, use_cf=False)
        assert all(l == 0.0 for l in log.counterfactual_losses)
        assert log.cf_match_rate == 0.0

    def test_without_ddi_embeddings(self, tiny_cohort):
        module, _log, x = self._fit(tiny_cohort, ddi_emb=False)
        assert module.predict_scores(x[80:]).shape == (40, tiny_cohort.num_drugs)

    def test_treatment_for_unobserved(self, tiny_cohort):
        module, _log, x = self._fit(tiny_cohort)
        treatment = module.treatment_for(x[80:])
        assert treatment.shape == (40, tiny_cohort.num_drugs)
        assert set(np.unique(treatment)) <= {0, 1}

    def test_treatment_includes_synergy_propagation(self, tiny_cohort):
        """treatment_for = cluster exposure expanded one synergy hop."""
        module, _log, x = self._fit(tiny_cohort)
        treatment = module.treatment_for(x[80:])
        graph = tiny_cohort.ddi.graph
        n = tiny_cohort.num_drugs
        # Reconstruct the cluster-exposure stage from the fitted internals.
        clusters = module._kmeans.predict(x[80:])
        cluster_drugs = np.zeros((module._kmeans.centers.shape[0], n), dtype=int)
        for c in range(module._kmeans.centers.shape[0]):
            members = module._kmeans.labels == c
            if members.any():
                cluster_drugs[c] = module._y_train[members].max(axis=0)
        base = cluster_drugs[clusters]
        synergy = np.zeros((n, n))
        for u, v, sign in graph.edges_with_signs():
            if sign == 1:
                synergy[u, v] = synergy[v, u] = 1.0
        expected = np.maximum(base, (base @ synergy > 0).astype(int))
        assert np.array_equal(treatment, expected)

    def test_patient_representations_differ(self, tiny_cohort):
        """Patient reps (pre-propagation) must not be over-smoothed."""
        from repro.metrics import cosine_similarity_matrix, offdiagonal_mean

        module, _log, x = self._fit(tiny_cohort)
        reps = module.patient_representations(x[80:])
        sim = offdiagonal_mean(cosine_similarity_matrix(reps))
        assert sim < 0.9997

    def test_drug_representations_shape(self, tiny_cohort):
        module, _log, _x = self._fit(tiny_cohort)
        assert module.drug_representations().shape == (tiny_cohort.num_drugs, 16)

    def test_validation_errors(self, tiny_cohort):
        x = standardize_features(tiny_cohort.features)
        module = MDModule(MDGCNConfig(hidden_dim=8, epochs=2))
        with pytest.raises(ValueError):
            module.fit(
                x[:10],
                tiny_cohort.medications[:20],
                np.eye(86),
                tiny_cohort.ddi.graph,
                None,
            )
        with pytest.raises(ValueError):
            module.fit(
                x[:10],
                tiny_cohort.medications[:10],
                np.eye(40),
                tiny_cohort.ddi.graph,
                None,
            )
        with pytest.raises(ValueError):
            # ddi embedding rows must match the drug count
            module.fit(
                x[:10],
                tiny_cohort.medications[:10],
                np.eye(86),
                tiny_cohort.ddi.graph,
                np.zeros((40, 16)),
            )

    def test_requires_fit(self):
        module = MDModule(MDGCNConfig(hidden_dim=8, epochs=2))
        with pytest.raises(RuntimeError):
            module.predict_scores(np.zeros((1, 3)))


class TestMSModule:
    def test_explain_structure(self, small_ddi):
        module = MSModule(small_ddi.graph)
        suggested = [small_ddi.synergy[0][0], small_ddi.synergy[0][1]]
        explanation = module.explain(suggested)
        assert set(suggested) <= set(explanation.community)
        assert tuple(sorted(suggested)) in [
            tuple(sorted(p)) for p in explanation.synergy_within
        ]
        assert 0.0 <= explanation.satisfaction.value <= 1.0

    def test_antagonistic_suggestion_flagged(self, small_ddi):
        module = MSModule(small_ddi.graph)
        u, v = small_ddi.antagonism[0]
        explanation = module.explain([u, v])
        assert (min(u, v), max(u, v)) in [
            (min(a, b), max(a, b)) for a, b in explanation.antagonism_within
        ]

    def test_render_mentions_names(self, small_ddi):
        module = MSModule(small_ddi.graph)
        u, v = small_ddi.synergy[0]
        explanation = module.explain([u, v], drug_names={u: "DrugU", v: "DrugV"})
        text = explanation.render()
        assert "DrugU" in text and "DrugV" in text
        assert "Suggestion Satisfaction" in text

    def test_empty_suggestion_rejected(self, small_ddi):
        with pytest.raises(ValueError):
            MSModule(small_ddi.graph).explain([])

    def test_isolated_drug_explained(self):
        graph = SignedGraph(5)
        graph.add_edge(0, 1, 1)
        module = MSModule(graph)
        explanation = module.explain([4])
        assert explanation.community == [4]
        assert explanation.satisfaction.value > 0

    def test_synergy_scores_higher_ss_than_antagonism(self, small_ddi):
        module = MSModule(small_ddi.graph)
        syn = module.explain(list(small_ddi.synergy[0]))
        ant = module.explain(list(small_ddi.antagonism[0]))
        assert syn.satisfaction.value > ant.satisfaction.value
