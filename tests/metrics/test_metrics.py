"""Tests for ranking, satisfaction and similarity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import SignedGraph
from repro.metrics import (
    cosine_similarity_matrix,
    mean_satisfaction_at_k,
    ndcg_at_k,
    offdiagonal_mean,
    precision_at_k,
    ranking_report,
    recall_at_k,
    smoothing_report,
    suggestion_satisfaction,
    top_k_indices,
)


class TestTopK:
    def test_order_descending(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert top_k_indices(scores, 3).tolist() == [[1, 2, 0]]

    def test_k_bounds(self):
        scores = np.zeros((2, 3))
        with pytest.raises(ValueError):
            top_k_indices(scores, 0)
        with pytest.raises(ValueError):
            top_k_indices(scores, 4)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 1)

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            (4, 6),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        st.integers(1, 6),
    )
    def test_topk_are_the_k_largest(self, scores, k):
        top = top_k_indices(scores, k)
        for i in range(scores.shape[0]):
            chosen = scores[i, top[i]]
            rest = np.delete(scores[i], top[i])
            if rest.size:
                assert chosen.min() >= rest.max() - 1e-12


class TestPrecisionRecall:
    def test_perfect_prediction(self):
        labels = np.array([[1, 1, 0, 0], [0, 0, 1, 1]])
        scores = labels.astype(float)
        assert precision_at_k(scores, labels, 2) == 1.0
        assert recall_at_k(scores, labels, 2) == 1.0

    def test_worst_prediction(self):
        labels = np.array([[1, 1, 0, 0]])
        scores = np.array([[0.0, 0.0, 1.0, 1.0]])
        assert precision_at_k(scores, labels, 2) == 0.0
        assert recall_at_k(scores, labels, 2) == 0.0

    def test_micro_averaging(self):
        """Eq. 21-22 sum hits over patients before dividing."""
        labels = np.array([[1, 0, 0, 0], [1, 1, 1, 1]])
        scores = np.array([[1.0, 0.9, 0, 0], [1.0, 0.9, 0, 0]])
        # k=2: patient 0 hits 1 of 2 picks, patient 1 hits 2 of 2
        assert precision_at_k(scores, labels, 2) == pytest.approx(3 / 4)
        assert recall_at_k(scores, labels, 2) == pytest.approx(3 / 5)

    def test_empty_labels_recall_zero(self):
        labels = np.zeros((2, 3), dtype=int)
        scores = np.random.default_rng(0).random((2, 3))
        assert recall_at_k(scores, labels, 2) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 5))
    def test_metric_bounds(self, k):
        rng = np.random.default_rng(k)
        scores = rng.random((6, 5))
        labels = (rng.random((6, 5)) > 0.6).astype(int)
        assert 0.0 <= precision_at_k(scores, labels, k) <= 1.0
        assert 0.0 <= recall_at_k(scores, labels, k) <= 1.0
        assert 0.0 <= ndcg_at_k(scores, labels, k) <= 1.0

    def test_recall_monotone_in_k(self):
        rng = np.random.default_rng(3)
        scores = rng.random((10, 8))
        labels = (rng.random((10, 8)) > 0.5).astype(int)
        recalls = [recall_at_k(scores, labels, k) for k in range(1, 9)]
        assert recalls == sorted(recalls)


class TestNDCG:
    def test_perfect_is_one(self):
        labels = np.array([[1, 1, 0, 0]])
        scores = np.array([[0.9, 0.8, 0.1, 0.0]])
        assert ndcg_at_k(scores, labels, 2) == pytest.approx(1.0)

    def test_position_matters(self):
        labels = np.array([[1, 0, 0]])
        good = np.array([[1.0, 0.5, 0.1]])
        bad = np.array([[0.5, 0.1, 1.0]])  # positive ranked last
        assert ndcg_at_k(good, labels, 3) > ndcg_at_k(bad, labels, 3)

    def test_known_value(self):
        # one positive at rank 2 of 2: DCG = 1/log2(3), IDCG = 1
        labels = np.array([[1, 0]])
        scores = np.array([[0.1, 0.9]])
        assert ndcg_at_k(scores, labels, 2) == pytest.approx(1.0 / np.log2(3))

    def test_patients_without_labels_skipped(self):
        labels = np.array([[0, 0], [1, 0]])
        scores = np.array([[0.5, 0.1], [0.9, 0.1]])
        assert ndcg_at_k(scores, labels, 2) == pytest.approx(1.0)

    def test_all_empty_returns_zero(self):
        assert ndcg_at_k(np.ones((2, 3)), np.zeros((2, 3), dtype=int), 2) == 0.0

    def test_ranking_report_ks(self):
        rng = np.random.default_rng(0)
        scores = rng.random((5, 6))
        labels = (rng.random((5, 6)) > 0.5).astype(int)
        reports = ranking_report(scores, labels, [1, 3, 6])
        assert [r.k for r in reports] == [1, 3, 6]


class TestSuggestionSatisfaction:
    def graph(self):
        # 0-1 synergy; 0-2, 1-3 antagonism; 2-3 synergy
        return SignedGraph.from_signed_edges(
            5, [(0, 1, 1), (0, 2, -1), (1, 3, -1), (2, 3, 1)]
        )

    def test_synergistic_pair_better_than_antagonistic(self):
        g = self.graph()
        syn = suggestion_satisfaction(g, [0, 1], subgraph_nodes=[0, 1, 2, 3])
        ant = suggestion_satisfaction(g, [0, 2], subgraph_nodes=[0, 1, 2, 3])
        assert syn.value > ant.value

    def test_counts(self):
        g = self.graph()
        result = suggestion_satisfaction(g, [0, 1], subgraph_nodes=[0, 1, 2, 3])
        assert result.r_in_pos == 1
        assert result.r_in_neg == 0
        assert result.r_out_neg == 2  # 0-2 and 1-3

    def test_eq19_value(self):
        g = self.graph()
        result = suggestion_satisfaction(
            g, [0, 1], alpha=0.5, subgraph_nodes=[0, 1, 2, 3]
        )
        k, n_prime = 2, 4
        synergy_term = 2 * (1 + 1) / ((0 + 1) * (k * (k - 1) + 2))
        antagonism_term = 2 / (k * (n_prime - k))
        assert result.value == pytest.approx(0.5 * synergy_term + 0.5 * antagonism_term)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            suggestion_satisfaction(self.graph(), [0], alpha=0.0)

    def test_empty_suggestion(self):
        with pytest.raises(ValueError):
            suggestion_satisfaction(self.graph(), [])

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            suggestion_satisfaction(self.graph(), [9])

    def test_single_drug(self):
        result = suggestion_satisfaction(self.graph(), [4])
        assert result.k == 1
        assert result.value > 0

    def test_auto_subgraph(self):
        result = suggestion_satisfaction(self.graph(), [0, 1])
        assert result.subgraph_nodes >= 2

    def test_mean_satisfaction_at_k(self):
        g = self.graph()
        scores = np.array([[0.9, 0.8, 0.1, 0.1, 0.0], [0.9, 0.1, 0.8, 0.1, 0.0]])
        value = mean_satisfaction_at_k(g, scores, 2)
        a = suggestion_satisfaction(g, [0, 1]).value
        b = suggestion_satisfaction(g, [0, 2]).value
        assert value == pytest.approx((a + b) / 2)

    def test_max_patients_cap(self):
        g = self.graph()
        scores = np.tile(np.array([[0.9, 0.8, 0.1, 0.1, 0.0]]), (10, 1))
        full = mean_satisfaction_at_k(g, scores, 2)
        capped = mean_satisfaction_at_k(g, scores, 2, max_patients=3)
        assert full == pytest.approx(capped)


class TestSimilarity:
    def test_cosine_identity(self):
        x = np.random.default_rng(0).normal(size=(4, 3))
        sim = cosine_similarity_matrix(x)
        assert np.allclose(np.diag(sim), 1.0)
        assert np.all(sim <= 1.0 + 1e-12)

    def test_orthogonal_rows(self):
        x = np.eye(3)
        sim = cosine_similarity_matrix(x)
        assert np.allclose(sim, np.eye(3))

    def test_offdiagonal_mean(self):
        sim = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert offdiagonal_mean(sim) == pytest.approx(0.5)

    def test_offdiagonal_needs_two(self):
        with pytest.raises(ValueError):
            offdiagonal_mean(np.ones((1, 1)))

    def test_smoothing_report(self):
        rng = np.random.default_rng(1)
        report = smoothing_report(
            {
                "smooth": np.ones((5, 3)) + rng.normal(scale=1e-6, size=(5, 3)),
                "diverse": rng.normal(size=(5, 3)),
            }
        )
        assert report["smooth"] > 0.99
        assert report["smooth"] > report["diverse"]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            cosine_similarity_matrix(np.zeros(3))
