"""Package-level consistency tests: imports, __all__, version, registry."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.nn",
    "repro.graph",
    "repro.gnn",
    "repro.ml",
    "repro.data",
    "repro.causal",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.serving",
    "repro.experiments",
    "repro.pipeline",
    "repro.server",
]


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_exports(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_baseline_registry_complete(self):
        from repro.baselines import available_baselines

        assert len(available_baselines()) == 8

    def test_paper_hyperparameters_documented(self):
        """The defaults must stay pinned to the paper's Sec. V-A3 values."""
        from repro.core import DSSDDIConfig

        cfg = DSSDDIConfig()
        assert (cfg.ddi.learning_rate, cfg.md.learning_rate) == (0.001, 0.01)
        assert (cfg.ddi.epochs, cfg.md.epochs) == (400, 1000)
        assert cfg.md.delta == 1.0
        assert cfg.ms.alpha == 0.5
