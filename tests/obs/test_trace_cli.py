"""Tests for the ``repro trace`` CLI (summary / slowest / export)."""

import json

import pytest

from repro.obs.cli import export, load_spans_file, slowest, summarize
from repro.obs.cli import main as trace_main
from repro.obs.trace import Tracer, chrome_trace, spans_from_chrome
from repro.pipeline.cli import main as repro_main


@pytest.fixture()
def spans():
    """A two-trace span set with a parent/child pair."""
    tracer = Tracer(sample=1.0, seed=13)
    with tracer.span("request.suggest") as root:
        tracer.record_child(
            root, "parse", root.start_perf, root.start_perf + 0.002
        )
        tracer.record_child(
            root, "score", root.start_perf + 0.002, root.start_perf + 0.010
        )
    tracer.start_span("request.suggest").end()
    return tracer.drain()


class TestLoading:
    def test_jsonl(self, tmp_path, spans):
        path = tmp_path / "spans.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        assert load_spans_file(path) == spans

    def test_chrome_export(self, tmp_path, spans):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome_trace(spans)))
        loaded = load_spans_file(path)
        assert [s["span"] for s in loaded] == [s["span"] for s in spans]

    def test_trace_endpoint_payload(self, tmp_path, spans):
        path = tmp_path / "payload.json"
        path.write_text(json.dumps({"spans": spans, "count": len(spans)}))
        assert load_spans_file(path) == spans

    def test_run_manifest(self, tmp_path, spans):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"run_id": "r1", "trace": spans}))
        assert load_spans_file(path) == spans

    def test_unrecognized_object(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"nothing": True}))
        with pytest.raises(ValueError):
            load_spans_file(path)


class TestRendering:
    def test_summary_table(self, spans):
        text = summarize(spans)
        assert "request.suggest" in text
        assert "parse" in text
        assert "2 trace(s)" in text

    def test_slowest_tree_indents_children(self, spans):
        text = slowest(spans, n=1)
        assert text.startswith("trace ")
        lines = text.splitlines()
        root_line = next(l for l in lines if "request.suggest" in l)
        child_line = next(l for l in lines if "score" in l)
        indent = lambda l: len(l) - len(l.lstrip())  # noqa: E731
        assert indent(child_line) > indent(root_line)

    def test_empty(self):
        assert summarize([]) == "no spans"
        assert slowest([], 3) == "no traces"


class TestExport:
    def test_round_trip(self, tmp_path, spans):
        out = tmp_path / "chrome.json"
        export(spans, out)
        document = json.loads(out.read_text())
        assert "traceEvents" in document
        back = spans_from_chrome(document)
        assert [s["span"] for s in back] == [s["span"] for s in spans]
        assert [s["parent"] for s in back] == [s["parent"] for s in spans]


class TestCliWiring:
    def test_repro_trace_summary(self, tmp_path, spans, capsys):
        path = tmp_path / "spans.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        assert repro_main(["trace", "summary", "--input", str(path)]) == 0
        assert "request.suggest" in capsys.readouterr().out

    def test_repro_trace_export(self, tmp_path, spans, capsys):
        path = tmp_path / "spans.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        out = tmp_path / "chrome.json"
        assert (
            repro_main(
                ["trace", "export", "--input", str(path), "-o", str(out)]
            )
            == 0
        )
        assert len(spans_from_chrome(json.loads(out.read_text()))) == len(spans)

    def test_standalone_entry(self, tmp_path, spans, capsys):
        path = tmp_path / "spans.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        assert trace_main(["slowest", "--input", str(path), "-n", "2"]) == 0
        assert "trace " in capsys.readouterr().out

    def test_no_source_is_usage_error(self):
        with pytest.raises(SystemExit):
            trace_main(["summary"])
