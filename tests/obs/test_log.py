"""Unit tests for structured logging and the rotating JSONL sink."""

import io
import json

import pytest

from repro.obs.log import JsonlSink, StructLogger, get_logger, read_jsonl


class TestStructLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = StructLogger("repro.test", stream=stream)
        logger.warning("worker_exited", worker=1, pid=42)
        logger.info("ready")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["level"] == "warning"
        assert first["logger"] == "repro.test"
        assert first["event"] == "worker_exited"
        assert first["worker"] == 1
        assert first["pid"] == 42
        assert isinstance(first["ts"], float)
        assert json.loads(lines[1])["level"] == "info"

    def test_non_json_values_fall_back_to_str(self):
        stream = io.StringIO()
        StructLogger("t", stream=stream).error("boom", exc=ValueError("x"))
        record = json.loads(stream.getvalue())
        assert "x" in record["exc"]

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        StructLogger("t", stream=stream).info("late")  # must not raise

    def test_get_logger_shares_instances(self):
        assert get_logger("repro.shared") is get_logger("repro.shared")


class TestJsonlSink:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"name": "a"})
            sink.write({"name": "b"})
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]

    def test_rotation_keeps_generations(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path, max_bytes=64, backups=2)
        for i in range(24):
            sink.write({"i": i, "pad": "x" * 16})
        sink.close()
        assert path.exists()
        assert path.with_name("spans.jsonl.1").exists()
        assert path.with_name("spans.jsonl.2").exists()
        assert not path.with_name("spans.jsonl.3").exists()
        # The live file always names the newest data.
        live = read_jsonl(path)
        older = read_jsonl(path.with_name("spans.jsonl.1"))
        assert live[-1]["i"] == 23
        assert older[-1]["i"] < 23

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"name": "ok"}\n{"name": "to')  # torn mid-record
        assert [r["name"] for r in read_jsonl(path)] == ["ok"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"name": "ok"}\nGARBAGE\n{"name": "later"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=-1)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", backups=0)
