"""Unit tests for the span/tracer core of ``repro.obs``."""

import threading

import pytest

from repro import chaos
from repro.obs.trace import (
    SpanContext,
    Tracer,
    chrome_trace,
    current_span,
    format_header,
    get_tracer,
    parse_header,
    set_tracer,
    spans_from_chrome,
)


class TestIds:
    def test_deterministic_for_seed_and_order(self):
        a = Tracer(sample=1.0, seed=7)
        b = Tracer(sample=1.0, seed=7)
        ids_a = [a.start_span(f"s{i}").span_id for i in range(5)]
        ids_b = [b.start_span(f"s{i}").span_id for i in range(5)]
        assert ids_a == ids_b

    def test_trace_and_span_id_shapes(self):
        span = Tracer(sample=1.0, seed=3).start_span("op")
        assert len(span.trace_id) == 16
        assert len(span.span_id) == 8
        int(span.trace_id, 16)  # hex or raise
        int(span.span_id, 16)

    def test_different_seeds_different_traces(self):
        assert (
            Tracer(seed=1).start_span("x").trace_id
            != Tracer(seed=2).start_span("x").trace_id
        )


class TestHeader:
    def test_round_trip(self):
        span = Tracer(sample=1.0, seed=11).start_span("op")
        ctx = parse_header(format_header(span))
        assert ctx == SpanContext(span.trace_id, span.span_id)

    def test_bare_trace_id_accepted(self):
        ctx = parse_header("0123456789abcdef")
        assert ctx is not None
        assert ctx.trace_id == "0123456789abcdef"
        assert ctx.span_id == ""

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "short",
            "0123456789abcdef-zz",
            "0123456789abcdeg",  # non-hex
            "0123456789abcdef-0011223344",  # span id too long
            "x" * 16,
        ],
    )
    def test_malformed_dropped(self, value):
        assert parse_header(value) is None


class TestParenting:
    def test_explicit_parent_wins(self):
        tracer = Tracer(sample=1.0)
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root.context())
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_active_span_adopted(self):
        tracer = Tracer(sample=1.0)
        with tracer.span("outer") as outer:
            assert current_span() is outer
            inner = tracer.start_span("inner")
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
        assert current_span() is None

    def test_thread_isolation(self):
        tracer = Tracer(sample=1.0)
        seen = {}

        def worker():
            seen["active"] = current_span()

        with tracer.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["active"] is None  # not inherited across threads

    def test_exception_sets_error_attr(self):
        tracer = Tracer(sample=1.0)
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert "RuntimeError" in span.attrs["error"]
        assert span.duration_s is not None


class TestRingAndSampling:
    def test_ring_bounded_newest_win(self):
        tracer = Tracer(sample=1.0, ring_size=3)
        for i in range(10):
            tracer.start_span(f"s{i}").end()
        spans = tracer.drain()
        assert [s["name"] for s in spans] == ["s7", "s8", "s9"]

    def test_sampling_rate_exact(self):
        tracer = Tracer(sample=0.25, seed=0)
        decisions = [tracer.sample_decision() for _ in range(100)]
        assert sum(decisions) == 25

    def test_sampling_deterministic(self):
        a = Tracer(sample=0.3, seed=9)
        b = Tracer(sample=0.3, seed=9)
        assert [a.sample_decision() for _ in range(50)] == [
            b.sample_decision() for _ in range(50)
        ]

    def test_disabled_tracer_samples_nothing(self):
        tracer = Tracer(sample=0.0)
        assert not tracer.enabled
        assert not any(tracer.sample_decision() for _ in range(100))

    def test_instant_dropped_when_disabled(self):
        tracer = Tracer(sample=0.0)
        tracer.instant("registry.swap", version="v1")
        assert tracer.drain() == []

    def test_instant_recorded_when_enabled(self):
        tracer = Tracer(sample=1.0)
        tracer.instant("registry.swap", version="v1")
        (span,) = tracer.drain()
        assert span["name"] == "registry.swap"
        assert span["attrs"]["version"] == "v1"
        assert span["dur_s"] == 0.0

    def test_drain_filter_and_limit(self):
        tracer = Tracer(sample=1.0)
        with tracer.span("root") as root:
            tracer.start_span("child").end()
        other = tracer.start_span("other")
        other.end()
        by_trace = tracer.drain(trace_id=root.trace_id)
        assert {s["name"] for s in by_trace} == {"root", "child"}
        assert len(tracer.drain(limit=1)) == 1


class TestRecordChild:
    def test_child_from_stamps(self):
        tracer = Tracer(sample=1.0)
        root = tracer.start_span("root")
        t0 = root.start_perf
        child = tracer.record_child(root, "phase", t0 + 0.01, t0 + 0.03)
        assert child.parent_id == root.span_id
        assert child.duration_s == pytest.approx(0.02)
        assert child.start_wall == pytest.approx(root.start_wall + 0.01)


class TestChromeRoundTrip:
    def test_round_trip(self):
        tracer = Tracer(sample=1.0, seed=4)
        with tracer.span("root", attrs={"k": 3}) as root:
            tracer.start_span("child").end()
        spans = tracer.drain()
        document = chrome_trace(spans, service="svc")
        assert document["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}
        back = spans_from_chrome(document)
        assert len(back) == len(spans)
        for original, restored in zip(spans, back):
            assert restored["name"] == original["name"]
            assert restored["trace"] == original["trace"]
            assert restored["span"] == original["span"]
            assert restored["parent"] == original["parent"]
            assert restored["attrs"] == original["attrs"]
            assert restored["start"] == pytest.approx(original["start"])
            assert restored["dur_s"] == pytest.approx(
                original["dur_s"], abs=1e-9
            )
        assert root.attrs["k"] == 3


class TestGlobalTracer:
    def test_set_and_restore(self):
        mine = Tracer(sample=1.0)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)

    def test_env_default_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        previous = set_tracer(None)
        try:
            assert not get_tracer().enabled
        finally:
            set_tracer(previous)


class TestChaosAnnotation:
    def test_failpoint_annotates_active_span(self):
        tracer = Tracer(sample=1.0)
        with chaos.chaos("gateway.score=sleep:1"):
            with tracer.span("request") as span:
                chaos.failpoint("gateway.score")
        events = [e for e in span.events if e["name"] == "chaos"]
        assert len(events) == 1
        assert events[0]["point"] == "gateway.score"
        assert events[0]["action"] == "sleep"

    def test_no_active_span_is_harmless(self):
        with chaos.chaos("gateway.score=sleep:1"):
            chaos.failpoint("gateway.score")  # must not raise
