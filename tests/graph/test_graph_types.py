"""Tests for the core graph data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BipartiteGraph, Graph, SignedGraph, edge_key


class TestGraph:
    def test_empty(self):
        g = Graph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_add_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert 2 in g.neighbors(0)
        assert 0 in g.neighbors(2)

    def test_no_self_loops(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)

    def test_duplicate_edge_idempotent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert g.num_edges == 0
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_copy_is_independent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        clone = g.copy()
        clone.add_edge(1, 2)
        assert g.num_edges == 1
        assert clone.num_edges == 2

    def test_subgraph_relabels(self):
        g = Graph.from_edges(5, [(0, 3), (3, 4), (1, 2)])
        sub, mapping = g.subgraph([0, 3, 4])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(mapping[0], mapping[3])

    def test_adjacency_matrix_symmetric(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        mat = g.adjacency_matrix()
        assert np.allclose(mat, mat.T)
        assert mat.sum() == 4  # two edges, counted twice

    def test_add_node_grows(self):
        g = Graph(1)
        new = g.add_node()
        assert new == 1
        g.add_edge(0, 1)
        assert g.num_edges == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
    def test_degree_sum_is_twice_edges(self, pairs):
        g = Graph(10)
        for u, v in pairs:
            if u != v:
                g.add_edge(u, v)
        assert sum(g.degree(n) for n in g.nodes()) == 2 * g.num_edges


class TestSignedGraph:
    def test_sign_roundtrip(self):
        g = SignedGraph(4)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, -1)
        g.add_edge(2, 3, 0)
        assert g.sign(1, 0) == 1
        assert g.sign(2, 1) == -1
        assert g.sign(3, 2) == 0

    def test_invalid_sign(self):
        g = SignedGraph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 2)

    def test_positive_negative_neighbors(self):
        g = SignedGraph.from_signed_edges(4, [(0, 1, 1), (0, 2, -1), (0, 3, 1)])
        assert g.positive_neighbors(0) == {1, 3}
        assert g.negative_neighbors(0) == {2}

    def test_signed_adjacency_values(self):
        g = SignedGraph.from_signed_edges(3, [(0, 1, 1), (1, 2, -1)])
        mat = g.signed_adjacency()
        assert mat[0, 1] == 1.0
        assert mat[1, 2] == -1.0
        assert np.allclose(mat, mat.T)

    def test_to_unsigned_drops_zero_edges(self):
        g = SignedGraph.from_signed_edges(4, [(0, 1, 1), (1, 2, 0), (2, 3, -1)])
        plain = g.to_unsigned()
        assert plain.num_edges == 2
        assert not plain.has_edge(1, 2)
        with_zero = g.to_unsigned(include_zero=True)
        assert with_zero.num_edges == 3

    def test_sign_or_none(self):
        g = SignedGraph(3)
        assert g.sign_or_none(0, 1) is None
        g.add_edge(0, 1, -1)
        assert g.sign_or_none(1, 0) == -1

    def test_edges_of_sign(self):
        g = SignedGraph.from_signed_edges(4, [(0, 1, 1), (1, 2, -1), (2, 3, -1)])
        assert len(g.edges_of_sign(-1)) == 2
        assert len(g.edges_of_sign(1)) == 1
        assert len(g.edges_of_sign(0)) == 0

    def test_repr_counts(self):
        g = SignedGraph.from_signed_edges(3, [(0, 1, 1), (1, 2, -1)])
        assert "+1/-1" in repr(g)


class TestBipartiteGraph:
    def test_links_both_directions(self):
        g = BipartiteGraph(2, 3)
        g.add_link(0, 2)
        assert g.has_link(0, 2)
        assert 2 in g.drugs_of(0)
        assert 0 in g.patients_of(2)

    def test_bounds(self):
        g = BipartiteGraph(1, 1)
        with pytest.raises(IndexError):
            g.add_link(1, 0)
        with pytest.raises(IndexError):
            g.add_link(0, 1)

    def test_matrix_roundtrip(self):
        mat = np.array([[1, 0, 1], [0, 1, 0]], dtype=float)
        g = BipartiteGraph.from_matrix(mat)
        assert np.allclose(g.to_matrix(), mat)
        assert g.num_links == 3

    def test_links_iterator_sorted(self):
        g = BipartiteGraph.from_matrix(np.array([[0, 1, 1], [1, 0, 0]], dtype=float))
        assert list(g.links()) == [(0, 1), (0, 2), (1, 0)]

    def test_normalized_adjacency_values(self):
        # patient 0 takes drugs {0, 1}; patient 1 takes drug {0}
        mat = np.array([[1, 1], [1, 0]], dtype=float)
        g = BipartiteGraph.from_matrix(mat)
        p2d, d2p = g.normalized_adjacency()
        # P2D[0, 0] = 1 / sqrt(|N_0| * |N_drug0|) = 1 / sqrt(2 * 2)
        assert p2d[0, 0] == pytest.approx(0.5)
        assert p2d[0, 1] == pytest.approx(1.0 / np.sqrt(2.0))
        assert np.allclose(d2p, p2d.T)

    def test_normalized_adjacency_handles_isolated(self):
        mat = np.zeros((2, 2))
        g = BipartiteGraph.from_matrix(mat)
        p2d, _ = g.normalized_adjacency()
        assert np.allclose(p2d, 0.0)
