"""Tests for triangles, truss decomposition, Steiner trees and CTC search.

networkx is used as an independent oracle for triangle counts and
connectivity where possible.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    all_edge_supports,
    bfs_distances,
    closest_truss_community,
    component_containing,
    connected_components,
    count_triangles,
    diameter,
    edge_key,
    edge_support,
    graph_query_distance,
    is_connected_subset,
    is_p_truss,
    max_truss_subgraph,
    peel_to_p_truss,
    query_distance,
    shortest_path,
    steiner_tree,
    truss_decomposition,
    truss_distance_weight,
    triangles,
)


def complete_graph(n: int) -> Graph:
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def to_networkx(g: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_nodes))
    nxg.add_edges_from(g.edges())
    return nxg


random_graphs = st.builds(
    lambda n, pairs: Graph.from_edges(
        n, [(u % n, v % n) for u, v in pairs if u % n != v % n]
    ),
    st.integers(3, 12),
    st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=40),
)


class TestTriangles:
    def test_triangle_count_on_k4(self):
        assert count_triangles(complete_graph(4)) == 4

    def test_edge_support_on_k4(self):
        g = complete_graph(4)
        assert edge_support(g, 0, 1) == 2

    def test_support_missing_edge_raises(self):
        g = Graph(3)
        with pytest.raises(KeyError):
            edge_support(g, 0, 1)

    def test_triangles_are_ordered_and_unique(self):
        g = complete_graph(4)
        tris = list(triangles(g))
        assert len(tris) == len(set(tris)) == 4
        assert all(u < v < w for u, v, w in tris)

    @settings(max_examples=25, deadline=None)
    @given(random_graphs)
    def test_triangle_count_matches_networkx(self, g):
        ours = count_triangles(g)
        theirs = sum(nx.triangles(to_networkx(g)).values()) // 3
        assert ours == theirs


class TestTrussDecomposition:
    def test_k4_is_4_truss(self):
        truss = truss_decomposition(complete_graph(4))
        assert all(v == 4 for v in truss.values())

    def test_k5_is_5_truss(self):
        truss = truss_decomposition(complete_graph(5))
        assert all(v == 5 for v in truss.values())

    def test_tree_edges_are_2_truss(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        truss = truss_decomposition(g)
        assert all(v == 2 for v in truss.values())

    def test_triangle_is_3_truss(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        truss = truss_decomposition(g)
        assert all(v == 3 for v in truss.values())

    def test_mixed_graph(self):
        # K4 plus a pendant path: K4 edges 4-truss, path edges 2-truss.
        g = complete_graph(4)
        g = Graph.from_edges(6, list(g.edges()) + [(3, 4), (4, 5)])
        truss = truss_decomposition(g)
        assert truss[edge_key(0, 1)] == 4
        assert truss[edge_key(3, 4)] == 2
        assert truss[edge_key(4, 5)] == 2

    def test_max_truss_subgraph_extracts_core(self):
        g = complete_graph(4)
        g = Graph.from_edges(6, list(g.edges()) + [(3, 4), (4, 5)])
        core = max_truss_subgraph(g, 4)
        assert core.num_edges == 6
        assert core.degree(5) == 0

    def test_is_p_truss_definition(self):
        assert is_p_truss(complete_graph(4), 4)
        assert not is_p_truss(Graph.from_edges(3, [(0, 1), (1, 2)]), 3)

    def test_peel_to_p_truss_keeps_valid_part(self):
        g = complete_graph(4)
        g = Graph.from_edges(6, list(g.edges()) + [(3, 4), (4, 5)])
        peeled = peel_to_p_truss(g, 4)
        assert peeled.num_edges == 6
        assert is_p_truss(peeled, 4)

    @settings(max_examples=20, deadline=None)
    @given(random_graphs)
    def test_truss_subgraph_satisfies_definition(self, g):
        """For every reported truss level p, edges with truss >= p form a p-truss."""
        truss = truss_decomposition(g)
        if not truss:
            return
        for p in sorted(set(truss.values())):
            sub = Graph(g.num_nodes)
            for (u, v), t in truss.items():
                if t >= p:
                    sub.add_edge(u, v)
            assert is_p_truss(sub, p)

    @settings(max_examples=20, deadline=None)
    @given(random_graphs)
    def test_truss_maximality(self, g):
        """No edge's truss number can be raised: edges at level p are not in any (p+1)-truss."""
        truss = truss_decomposition(g)
        for (u, v), p in truss.items():
            higher = Graph(g.num_nodes)
            for (a, b), t in truss.items():
                if t >= p + 1:
                    higher.add_edge(a, b)
            assert not higher.has_edge(u, v)


class TestShortestPaths:
    def test_bfs_distances_line(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(g, 0) == [0.0, 1.0, 2.0, 3.0]

    def test_bfs_unreachable_inf(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert bfs_distances(g, 0)[2] == float("inf")

    def test_shortest_path_endpoints(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        path = shortest_path(g, 0, 2)
        assert path[0] == 0 and path[-1] == 2 and len(path) == 3

    def test_shortest_path_none_when_disconnected(self):
        g = Graph(3)
        assert shortest_path(g, 0, 2) is None

    def test_shortest_path_same_node(self):
        g = Graph(2)
        assert shortest_path(g, 1, 1) == [1]

    def test_connected_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert [0, 1] in comps and [2, 3] in comps and [4] in comps

    def test_component_containing(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert component_containing(g, [0, 2]) == [0, 1, 2]
        assert component_containing(g, [0, 3]) is None

    def test_is_connected_subset(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert is_connected_subset(g, [0, 1, 2])
        assert not is_connected_subset(g, [0, 2])  # 1 missing breaks the path
        assert not is_connected_subset(g, [])

    def test_diameter_cycle(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert diameter(g) == 2.0

    def test_diameter_disconnected_inf(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert diameter(g) == float("inf")

    def test_query_distance(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert query_distance(g, 0, [3]) == 3.0
        assert query_distance(g, 1, [0, 3]) == 2.0

    def test_graph_query_distance_subgraph(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph_query_distance(g, [0, 1, 2], [0]) == 2.0


class TestSteinerTree:
    def test_two_terminals_shortest_path(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        tree = steiner_tree(g, [1, 3])
        assert tree.num_edges == 2  # path 1-2-3

    def test_terminals_covered_and_tree(self):
        g = complete_graph(6)
        tree = steiner_tree(g, [0, 2, 4])
        # a tree has exactly (#nodes_in_tree - 1) edges and no cycles
        used_nodes = {n for e in tree.edges() for n in e}
        assert {0, 2, 4} <= used_nodes
        assert tree.num_edges == len(used_nodes) - 1
        assert is_connected_subset(tree, sorted(used_nodes))

    def test_single_terminal_empty_tree(self):
        g = complete_graph(3)
        tree = steiner_tree(g, [1])
        assert tree.num_edges == 0

    def test_disconnected_terminals_raise(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            steiner_tree(g, [0, 3])

    def test_no_terminals_raise(self):
        with pytest.raises(ValueError):
            steiner_tree(Graph(2), [])

    def test_truss_weight_prefers_dense_paths(self):
        # Two routes from 0 to 5: a direct sparse path (0-6-5) and a route
        # through a K4 (0,1,2,3) then 3-4-5.  With truss weights the K4 edges
        # are much cheaper individually, but the hop count matters too; we
        # simply check the tree connects terminals and is valid.
        g = complete_graph(4)
        g = Graph.from_edges(7, list(g.edges()) + [(3, 4), (4, 5), (0, 6), (6, 5)])
        truss = truss_decomposition(g)
        tree = steiner_tree(g, [0, 5], truss_distance_weight(truss, max(truss.values())))
        used = {n for e in tree.edges() for n in e}
        assert {0, 5} <= used
        assert is_connected_subset(tree, sorted(used))

    @settings(max_examples=20, deadline=None)
    @given(random_graphs, st.data())
    def test_steiner_tree_properties(self, g, data):
        comps = [c for c in connected_components(g) if len(c) >= 2]
        if not comps:
            return
        comp = comps[0]
        k = data.draw(st.integers(2, min(4, len(comp))))
        terminals = comp[:k]
        tree = steiner_tree(g, terminals)
        used = {n for e in tree.edges() for n in e} or set(terminals)
        assert set(terminals) <= used
        # tree property: |E| = |V| - 1 over the used nodes, connected
        assert tree.num_edges == len(used) - 1
        assert is_connected_subset(tree, sorted(used))
        # subgraph property: every tree edge exists in g
        for u, v in tree.edges():
            assert g.has_edge(u, v)


class TestClosestTrussCommunity:
    def test_k4_query_returns_k4(self):
        g = complete_graph(4)
        result = closest_truss_community(g, [0, 1])
        assert result is not None
        assert set(result.nodes) >= {0, 1}
        assert result.trussness == 4

    def test_query_in_dense_plus_tail(self):
        # K4 core with a long tail; querying two core nodes should not drag
        # the tail into the community.
        g = complete_graph(4)
        g = Graph.from_edges(8, list(g.edges()) + [(3, 4), (4, 5), (5, 6), (6, 7)])
        result = closest_truss_community(g, [0, 1])
        assert result is not None
        assert set(result.nodes) == {0, 1, 2, 3}

    def test_disconnected_query_returns_none(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert closest_truss_community(g, [0, 3]) is None

    def test_isolated_single_query(self):
        g = Graph(3)
        g.add_edge(1, 2)
        result = closest_truss_community(g, [0])
        assert result is not None
        assert result.nodes == [0]

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            closest_truss_community(complete_graph(3), [])

    def test_out_of_range_query_raises(self):
        with pytest.raises(IndexError):
            closest_truss_community(complete_graph(3), [7])

    def test_result_contains_query_and_connected(self):
        rng = np.random.default_rng(0)
        g = Graph(20)
        for u in range(20):
            for v in range(u + 1, 20):
                if rng.random() < 0.25:
                    g.add_edge(u, v)
        comp = max(connected_components(g), key=len)
        query = comp[:3]
        result = closest_truss_community(g, query)
        assert result is not None
        assert set(query) <= set(result.nodes)
        assert is_connected_subset(g, result.nodes) or len(result.nodes) == 1

    def test_result_diameter_finite(self):
        g = complete_graph(5)
        result = closest_truss_community(g, [0, 4])
        assert result.diameter < float("inf")
        assert result.query_distance <= result.diameter

    @settings(max_examples=15, deadline=None)
    @given(random_graphs, st.data())
    def test_ctc_invariants(self, g, data):
        comps = [c for c in connected_components(g) if len(c) >= 2]
        if not comps:
            return
        comp = comps[0]
        k = data.draw(st.integers(1, min(3, len(comp))))
        query = comp[:k]
        result = closest_truss_community(g, query)
        if result is None:
            return
        assert set(query) <= set(result.nodes)
        assert result.trussness >= 2
        assert result.query_distance <= result.diameter or result.diameter == 0.0
        # every reported edge must exist in the original graph
        for u, v in result.edges:
            assert g.has_edge(u, v)
