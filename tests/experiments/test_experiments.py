"""Smoke tests for the experiment harness (tiny scale, seconds per test)."""

import numpy as np
import pytest

from repro.experiments import (
    Scale,
    TABLE1_METHODS,
    format_table,
    load_chronic,
    run_fig2,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_methods,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


@pytest.fixture(scope="module")
def tiny_scale():
    return Scale.tiny()


@pytest.fixture(scope="module")
def tiny_data(tiny_scale):
    return load_chronic(tiny_scale)


class TestScale:
    def test_presets(self):
        assert Scale.by_name("small").name == "small"
        assert Scale.by_name("medium").num_patients == 800
        assert Scale.by_name("full").num_patients == 4157

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            Scale.by_name("galactic")


class TestHarness:
    def test_load_chronic_split_sizes(self, tiny_data, tiny_scale):
        total = sum(tiny_data.split.sizes)
        assert total == tiny_scale.num_patients

    def test_run_methods_unknown_rejected(self, tiny_data, tiny_scale):
        with pytest.raises(ValueError):
            run_methods(tiny_data, tiny_scale, methods=["NotAMethod"])

    def test_run_methods_subset(self, tiny_data, tiny_scale):
        scores = run_methods(tiny_data, tiny_scale, methods=["UserSim", "LightGCN"])
        assert set(scores) == {"UserSim", "LightGCN"}
        for matrix in scores.values():
            assert matrix.shape == (len(tiny_data.split.test), 86)

    def test_format_table_alignment(self):
        text = format_table(["A", "Blong"], [["x", 1.23456], ["yy", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.2346" in text

    def test_table1_method_order_constant(self):
        assert len(TABLE1_METHODS) == 12


class TestExperimentsRun:
    def test_table1_subset(self, tiny_data, tiny_scale):
        result = run_table1(
            scale=tiny_scale, methods=("UserSim", "DSSDDI(SGCN)"), data=tiny_data
        )
        assert set(result.metrics) == {"UserSim", "DSSDDI(SGCN)"}
        assert result.render()
        assert result.best_method_at("recall", 6) in result.metrics

    def test_table2(self, tiny_data, tiny_scale):
        result = run_table2(scale=tiny_scale, data=tiny_data, ks=(1, 6))
        assert set(result.metrics) == {"w/o DDI", "One-hot", "KG", "DDIGCN"}
        assert result.render()

    def test_table3(self, tiny_data, tiny_scale):
        result = run_table3(
            scale=tiny_scale,
            methods=("UserSim", "DSSDDI(SGCN)"),
            data=tiny_data,
            ks=(2, 4),
            max_patients=10,
        )
        assert set(result.satisfaction) == {"UserSim", "DSSDDI(SGCN)"}
        for by_k in result.satisfaction.values():
            assert set(by_k) == {2, 4}
        assert result.render()

    def test_table3_reuses_scores(self, tiny_data, tiny_scale):
        rng = np.random.default_rng(0)
        fake = {"X": rng.random((len(tiny_data.split.test), 86))}
        result = run_table3(
            scale=tiny_scale, data=tiny_data, scores=fake, ks=(2,), max_patients=5
        )
        assert set(result.satisfaction) == {"X"}

    def test_table4_subset(self, tiny_scale):
        result = run_table4(
            scale=tiny_scale,
            methods=("UserSim", "DSSDDI(GIN)"),
            num_patients=150,
            ks=(4,),
        )
        assert set(result.metrics) == {"UserSim", "DSSDDI(GIN)"}
        assert result.render()

    def test_table4_unknown_method(self, tiny_scale):
        with pytest.raises(ValueError):
            run_table4(scale=tiny_scale, methods=("Nope",), num_patients=150)

    def test_fig2(self):
        result = run_fig2(num_patients=500, seed=3)
        assert abs(sum(result.shares.values()) - 1.0) < 1e-9
        assert result.render()

    def test_fig3(self):
        result = run_fig3()
        assert sum(result.counts.values()) == 86
        assert result.render()

    def test_fig7(self, tiny_data, tiny_scale):
        result = run_fig7(scale=tiny_scale, data=tiny_data, sample_patients=20)
        assert set(result.patient_smoothing) == {"DSSDDI", "LightGCN"}
        assert result.patient_similarity["DSSDDI"].shape[0] <= 20
        assert result.render()

    def test_fig8(self, tiny_data, tiny_scale):
        result = run_fig8(scale=tiny_scale, data=tiny_data, k=2)
        assert "DSSDDI" in result.explanations
        assert result.render()

    def test_fig9(self, tiny_data, tiny_scale):
        result = run_fig9(scale=tiny_scale, data=tiny_data)
        # cases depend on which patients exist in the tiny test split
        for case in result.cases:
            assert set(case.ranks_with) == set(case.tracked_drugs)
            assert case.render()


class TestCLI:
    def test_main_fig3(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
