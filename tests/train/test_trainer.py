"""Unit tests for the Trainer engine: loop, loaders, state, callbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Tensor, mse_loss
from repro.train import (
    Checkpoint,
    ConvergenceStop,
    EarlyStopping,
    FullBatch,
    LRScheduler,
    LossCurveLogger,
    MiniBatcher,
    PairNegativeSampler,
    Timer,
    TrainState,
    Trainer,
    checkpoint_info,
    has_checkpoint,
    latest_checkpoint,
)


def _quadratic_setup(lr: float = 0.1):
    """A 2-parameter least-squares problem with a known optimum."""
    rng = np.random.default_rng(0)
    w = Tensor(np.zeros(3), requires_grad=True)
    x = np.array([[1.0, 0.0, 1.0], [0.0, 2.0, 1.0], [1.0, 1.0, 0.0]])
    target = np.array([2.0, 1.0, 3.0])

    def step(state, _batch):
        pred = Tensor(x) @ w
        return mse_loss(pred, target)

    state = TrainState([w], Adam([w], lr=lr), rng)
    return step, state, w


class TestTrainerLoop:
    def test_runs_exact_epoch_count(self):
        step, state, _ = _quadratic_setup()
        log = Trainer(17).fit(step, state)
        assert log.epochs_run == 17
        assert log.total_epochs == 17
        assert len(log.losses) == 17
        assert state.epoch == 17

    def test_loss_decreases(self):
        step, state, _ = _quadratic_setup()
        log = Trainer(50).fit(step, state)
        assert log.final_loss < log.losses[0]

    def test_float_loss_steps_without_optimizer(self):
        weights = np.array([4.0])

        def step(state, _batch):
            weights[0] *= 0.5
            return float(weights[0])

        log = Trainer(4).fit(step, TrainState(params=[]))
        assert weights[0] == 0.25
        assert log.losses == [2.0, 1.0, 0.5, 0.25]

    def test_epoch_loss_is_mean_over_batches(self):
        values = iter([1.0, 3.0, 5.0, 7.0])

        def step(state, idx):
            return next(values)

        log = Trainer(2).fit(
            step, TrainState(params=[]), MiniBatcher(4, 2, shuffle=False)
        )
        assert log.losses == [2.0, 6.0]

    def test_extra_metrics_epoch_averaged(self):
        def step(state, _batch):
            state.log("aux", float(state.epoch))
            return 1.0

        log = Trainer(3).fit(step, TrainState(params=[]))
        assert log.history["aux"] == [0.0, 1.0, 2.0]

    def test_zero_epochs_is_a_noop(self):
        step, state, _ = _quadratic_setup()
        log = Trainer(0).fit(step, state)
        assert log.epochs_run == 0 and log.losses == []


class TestLoaders:
    def test_full_batch_yields_one_none(self):
        batches = list(FullBatch().batches(TrainState(params=[])))
        assert batches == [None]

    def test_minibatcher_is_seeded_and_deterministic(self):
        def collect():
            state = TrainState(params=[], rng=np.random.default_rng(7))
            loader = MiniBatcher(10, 3)
            return [list(b) for b in loader.batches(state)]

        first, second = collect(), collect()
        assert first == second
        flat = sorted(i for batch in first for i in batch)
        assert flat == list(range(10))
        assert [len(b) for b in first] == [3, 3, 3, 1]

    def test_minibatcher_unshuffled_needs_no_rng(self):
        loader = MiniBatcher(5, 2, shuffle=False)
        batches = list(loader.batches(TrainState(params=[])))
        assert [list(b) for b in batches] == [[0, 1], [2, 3], [4]]

    def test_minibatcher_shuffle_without_rng_raises(self):
        with pytest.raises(ValueError, match="rng"):
            list(MiniBatcher(5, 2).batches(TrainState(params=[])))

    def test_pair_sampler_full_batch_matches_legacy_draw(self):
        y = (np.arange(20).reshape(4, 5) % 3 == 0).astype(int)
        positives = np.argwhere(y == 1)
        zero_rows, zero_cols = np.nonzero(y == 0)

        state = TrainState(params=[], rng=np.random.default_rng(3))
        loader = PairNegativeSampler(positives, zero_rows, zero_cols)
        (batch,) = list(loader.batches(state))

        legacy_rng = np.random.default_rng(3)
        neg_idx = legacy_rng.integers(0, len(zero_rows), size=len(positives))
        np.testing.assert_array_equal(
            batch.rows, np.concatenate([positives[:, 0], zero_rows[neg_idx]])
        )
        np.testing.assert_array_equal(
            batch.cols, np.concatenate([positives[:, 1], zero_cols[neg_idx]])
        )
        assert batch.labels.sum() == len(positives)
        assert len(batch.labels) == 2 * len(positives)

    def test_pair_sampler_minibatch_covers_all_positives(self):
        y = np.eye(6, dtype=int)
        positives = np.argwhere(y == 1)
        zero_rows, zero_cols = np.nonzero(y == 0)
        loader = PairNegativeSampler(positives, zero_rows, zero_cols, batch_size=4)
        state = TrainState(params=[], rng=np.random.default_rng(0))
        batches = list(loader.batches(state))
        assert [len(b.labels) for b in batches] == [8, 4]
        seen = sorted(
            (int(r), int(c))
            for b in batches
            for r, c, l in zip(b.rows, b.cols, b.labels)
            if l == 1.0
        )
        assert seen == sorted((int(r), int(c)) for r, c in positives)

    def test_pair_sampler_rejects_empty_positives(self):
        with pytest.raises(ValueError, match="no positive links"):
            PairNegativeSampler(
                np.empty((0, 2), dtype=int), np.array([0]), np.array([0])
            )


class TestCallbacks:
    def test_early_stopping_stops_on_plateau(self):
        def step(state, _batch):
            return 1.0  # never improves

        log = Trainer(100).fit(
            step, TrainState(params=[]), callbacks=[EarlyStopping(patience=3)]
        )
        assert log.stopped_early
        assert log.epochs_run == 4  # first sets best, then 3 waits
        assert "early stop" in log.stop_reason

    def test_early_stopping_respects_min_delta(self):
        losses = iter([1.0, 0.99, 0.98, 0.97, 0.96, 0.95])

        def step(state, _batch):
            return next(losses)

        log = Trainer(6).fit(
            step,
            TrainState(params=[]),
            callbacks=[EarlyStopping(patience=2, min_delta=0.1)],
        )
        assert log.stopped_early and log.epochs_run == 3

    def test_convergence_stop_matches_tol(self):
        losses = iter([1.0, 0.5, 0.4999, 0.4])

        def step(state, _batch):
            return next(losses)

        log = Trainer(4).fit(
            step, TrainState(params=[]), callbacks=[ConvergenceStop(tol=1e-3)]
        )
        assert log.stopped_early and log.epochs_run == 3

    def test_lr_scheduler_sets_optimizer_lr(self):
        step, state, _ = _quadratic_setup(lr=1.0)
        rates = []

        def schedule(epoch):
            rates.append(epoch)
            return 1.0 / epoch

        Trainer(3).fit(step, state, callbacks=[LRScheduler(schedule)])
        assert rates == [1, 2, 3]
        assert state.optimizer.lr == pytest.approx(1.0 / 3.0)

    def test_loss_curve_logger_collects_lines(self):
        step, state, _ = _quadratic_setup()
        printed = []
        logger = LossCurveLogger(every=2, printer=printed.append)
        Trainer(5).fit(step, state, callbacks=[logger])
        assert len(logger.lines) == 2  # epochs 2 and 4
        assert printed == logger.lines
        assert logger.lines[0].startswith("epoch 2: loss=")

    def test_timer_records_epochs(self):
        step, state, _ = _quadratic_setup()
        timer = Timer()
        Trainer(4).fit(step, state, callbacks=[timer])
        assert len(timer.epoch_seconds) == 4
        assert timer.total_seconds >= sum(timer.epoch_seconds) * 0.5


class TestCheckpointing:
    def test_checkpoint_cadence_and_final(self, tmp_path):
        step, state, _ = _quadratic_setup()
        ckpt = Checkpoint(tmp_path / "run", every_n=3, keep_last=10)
        log = Trainer(7).fit(step, state, callbacks=[ckpt])
        # epochs 3 and 6 by cadence, 7 from on_fit_end.
        assert ckpt.saved == 3
        assert log.checkpoints == 3
        info = checkpoint_info(tmp_path / "run")
        assert info["epoch"] == 7

    def test_keep_last_prunes_older(self, tmp_path):
        step, state, _ = _quadratic_setup()
        ckpt = Checkpoint(tmp_path / "run", every_n=1, keep_last=2)
        Trainer(5).fit(step, state, callbacks=[ckpt])
        from repro.train import list_checkpoints

        assert [p.name for p in list_checkpoints(tmp_path / "run")] == [
            "epoch-000004",
            "epoch-000005",
        ]

    def test_state_roundtrip_is_bitwise(self, tmp_path):
        step, state, w = _quadratic_setup()
        Trainer(5).fit(step, state)
        state.save(tmp_path / "ckpt")

        step2, fresh, w2 = _quadratic_setup()
        fresh.restore(tmp_path / "ckpt")
        assert fresh.epoch == 5 and fresh.step == 5
        np.testing.assert_array_equal(w2.data, w.data)
        assert fresh.history == state.history
        assert fresh.rng.bit_generator.state == state.rng.bit_generator.state
        # Optimizer moments restored exactly.
        np.testing.assert_array_equal(
            fresh.optimizer.state_dict()["m.0"],
            state.optimizer.state_dict()["m.0"],
        )

    def test_restore_rejects_shape_mismatch(self, tmp_path):
        step, state, _ = _quadratic_setup()
        Trainer(1).fit(step, state)
        state.save(tmp_path / "ckpt")
        other = TrainState([Tensor(np.zeros(4), requires_grad=True)])
        with pytest.raises(ValueError, match="shape mismatch"):
            other.restore(tmp_path / "ckpt")

    def test_restore_rejects_param_count_mismatch(self, tmp_path):
        step, state, _ = _quadratic_setup()
        Trainer(1).fit(step, state)
        state.save(tmp_path / "ckpt")
        with pytest.raises(ValueError, match="parameters"):
            TrainState(params=[]).restore(tmp_path / "ckpt")

    def test_has_and_latest_checkpoint(self, tmp_path):
        assert not has_checkpoint(tmp_path / "nope")
        step, state, _ = _quadratic_setup()
        Trainer(2).fit(
            step, state, callbacks=[Checkpoint(tmp_path / "run", keep_last=5)]
        )
        assert has_checkpoint(tmp_path / "run")
        assert latest_checkpoint(tmp_path / "run").name == "epoch-000002"


class TestTraceCallback:
    def test_fit_and_epoch_spans(self):
        from repro.obs.trace import Tracer
        from repro.train import TraceCallback

        step, state, _ = _quadratic_setup()
        tracer = Tracer(sample=1.0, seed=5, service="test-train")
        Trainer(3).fit(
            step, state, callbacks=[TraceCallback(name="quad", tracer=tracer)]
        )
        spans = tracer.drain()
        fit = next(s for s in spans if s["name"] == "fit:quad")
        assert fit["attrs"]["start_epoch"] == 0
        assert fit["attrs"]["epochs"] == 3
        epochs = [s for s in spans if s["name"] == "epoch"]
        assert [s["attrs"]["epoch"] for s in epochs] == [1, 2, 3]
        for span in epochs:
            assert span["parent"] == fit["span"]
            assert span["attrs"]["loss"] >= 0.0

    def test_disabled_tracer_is_a_noop(self):
        from repro.obs.trace import Tracer
        from repro.train import TraceCallback

        step, state, _ = _quadratic_setup()
        tracer = Tracer(sample=0.0, seed=5)
        Trainer(2).fit(
            step, state, callbacks=[TraceCallback(tracer=tracer)]
        )
        assert tracer.drain() == []

    def test_fit_or_resume_traces_checkpoint_events(self, tmp_path):
        from repro.obs.trace import Tracer, set_tracer
        from repro.train import fit_or_resume

        step, state, _ = _quadratic_setup()
        tracer = Tracer(sample=1.0, seed=7, service="test-train")
        previous = set_tracer(tracer)
        try:
            fit_or_resume(
                Trainer(4),
                step,
                state,
                checkpoint_dir=tmp_path / "run",
                checkpoint_every=2,
            )
        finally:
            set_tracer(previous)
        spans = tracer.drain()
        epochs = [s for s in spans if s["name"] == "epoch"]
        assert len(epochs) == 4
        checkpointed = [
            s["attrs"]["epoch"]
            for s in epochs
            if any(e["name"] == "checkpoint" for e in s["events"])
        ]
        # Cadence writes at epochs 2 and 4; the final save happens in
        # on_fit_end, after the last epoch span has closed.
        assert checkpointed == [2, 4]
        for span in epochs:
            path_events = [
                e for e in span["events"] if e["name"] == "checkpoint"
            ]
            for event in path_events:
                assert "epoch-" in event["path"]
