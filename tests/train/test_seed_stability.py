"""Seed-stability regression: the Trainer migration must be loss-neutral.

Every model that moved from a hand-rolled epoch loop onto
:class:`repro.train.Trainer` is re-fitted here at tiny scale, and its
first/last training losses (or, for the classic-ML models that never
logged losses, summary statistics of the fitted weights) are compared
against the values recorded **before** the refactor in
``fixtures/seed_losses.json``.

A change in rng draw order, sampling order, or update arithmetic shifts
these numbers by many orders of magnitude more than the 1e-9 relative
tolerance used below (the tolerance only absorbs BLAS reduction-order
differences across machines — within one machine the match is bitwise).

Regenerate the fixture (only legitimate after an *intentional* training
semantics change) with::

    PYTHONPATH=src python tests/train/test_seed_stability.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import (
    BiparGCN,
    CauseRec,
    ECC,
    GCMCRecommender,
    LightGCNRecommender,
    SafeDrug,
)
from repro.core import DDIGCNConfig, MDGCNConfig
from repro.core.ddi_module import DDIModule
from repro.core.md_module import MDModule
from repro.data import generate_chronic_cohort, standardize_features
from repro.ml import LinearSVM, LogisticRegression

FIXTURE = Path(__file__).parent / "fixtures" / "seed_losses.json"

#: Relative tolerance for fixture comparison; see module docstring.
RTOL = 1e-9


def _tiny_cohort():
    cohort = generate_chronic_cohort(num_patients=80, seed=5)
    x = standardize_features(cohort.features)
    y = cohort.medications
    return cohort, x, y


def _first_last(losses) -> dict:
    return {"first_loss": float(losses[0]), "last_loss": float(losses[-1])}


def _fit_ddigcn_sgcn() -> dict:
    cohort, _, _ = _tiny_cohort()
    module = DDIModule(DDIGCNConfig(backbone="sgcn", hidden_dim=8, epochs=6))
    log = module.fit(cohort.ddi.graph)
    return _first_last(log.losses)


def _fit_ddigcn_gin() -> dict:
    cohort, _, _ = _tiny_cohort()
    module = DDIModule(DDIGCNConfig(backbone="gin", hidden_dim=8, epochs=6))
    log = module.fit(cohort.ddi.graph)
    return _first_last(log.losses)


def _fit_mdgcn() -> dict:
    cohort, x, y = _tiny_cohort()
    n = y.shape[1]
    module = MDModule(MDGCNConfig(hidden_dim=8, epochs=6))
    log = module.fit(x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4)
    out = _first_last(log.factual_losses)
    out["last_cf_loss"] = float(log.counterfactual_losses[-1])
    return out


def _baseline_losses(model) -> dict:
    _, x, y = _tiny_cohort()
    model.fit(x, y)
    return _first_last(model._losses)


def _fit_lightgcn() -> dict:
    return _baseline_losses(LightGCNRecommender(hidden_dim=8, epochs=6))


def _fit_gcmc() -> dict:
    return _baseline_losses(GCMCRecommender(hidden_dim=8, out_dim=8, epochs=6))


def _fit_bipargcn() -> dict:
    return _baseline_losses(BiparGCN(hidden_dim=8, epochs=6))


def _fit_safedrug() -> dict:
    cohort, x, y = _tiny_cohort()
    model = SafeDrug(hidden_dim=8, epochs=6, ddi_graph=cohort.ddi.graph)
    model.fit(x, y)
    return _first_last(model._losses)


def _fit_causerec() -> dict:
    return _baseline_losses(CauseRec(hidden_dim=8, epochs=6))


def _fit_ecc() -> dict:
    _, x, y = _tiny_cohort()
    model = ECC(num_chains=2, max_iter=8).fit(x, y)
    scores = model.predict_scores(x[:10])
    return {"score_00": float(scores[0, 0]), "score_sum": float(scores.sum())}


def _fit_logistic() -> dict:
    _, x, y = _tiny_cohort()
    model = LogisticRegression(max_iter=25).fit(x, y[:, 0])
    return {
        "weight_norm_sq": float(model.weights @ model.weights),
        "bias": float(model.bias),
    }


def _fit_linear_svm() -> dict:
    _, x, y = _tiny_cohort()
    model = LinearSVM(epochs=5, batch_size=16).fit(x, y[:, 0])
    return {
        "weight_norm_sq": float(model.weights @ model.weights),
        "bias": float(model.bias),
    }


BUILDERS = {
    "ddigcn_sgcn": _fit_ddigcn_sgcn,
    "ddigcn_gin": _fit_ddigcn_gin,
    "mdgcn": _fit_mdgcn,
    "lightgcn": _fit_lightgcn,
    "gcmc": _fit_gcmc,
    "bipargcn": _fit_bipargcn,
    "safedrug": _fit_safedrug,
    "causerec": _fit_causerec,
    "ecc": _fit_ecc,
    "logistic": _fit_logistic,
    "linear_svm": _fit_linear_svm,
}


@pytest.fixture(scope="module")
def recorded() -> dict:
    with open(FIXTURE, "r", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_losses_match_pre_refactor_fixture(name: str, recorded: dict) -> None:
    expected = recorded[name]
    actual = BUILDERS[name]()
    assert set(actual) == set(expected), f"{name}: recorded quantities changed"
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, rel=RTOL, abs=0.0), (
            f"{name}.{key}: expected {value!r}, got {actual[key]!r} — "
            "training semantics drifted from the pre-refactor loop"
        )


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    values = {name: fn() for name, fn in sorted(BUILDERS.items())}
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(values, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE}")
    for name, vals in values.items():
        print(f"  {name}: {vals}")
