"""Kill-and-resume must be bitwise-identical to an uninterrupted run.

These tests simulate a hard interruption (an exception thrown mid-fit,
after a checkpoint landed) and assert that resuming from the newest
checkpoint reproduces the uninterrupted run's final losses — and final
weights / prediction scores — *bitwise*.  This is the property that lets
``repro run chronic.fit.*`` be killed at any point and re-run without
recomputing or drifting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDIGCNConfig, DSSDDI, DSSDDIConfig, MDGCNConfig
from repro.core.ddi_module import DDIModule
from repro.core.md_module import MDModule
from repro.data import generate_chronic_cohort, standardize_features
from repro.train import Callback, checkpoint_info, has_checkpoint


class _Interrupted(RuntimeError):
    pass


class InterruptAfter(Callback):
    """Raise (simulating a kill) once ``epoch`` epochs have completed."""

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch

    def on_epoch_end(self, state) -> None:
        if state.epoch >= self.epoch:
            raise _Interrupted(f"killed after epoch {state.epoch}")


@pytest.fixture(scope="module")
def tiny():
    cohort = generate_chronic_cohort(num_patients=60, seed=9)
    return cohort, standardize_features(cohort.features), cohort.medications


def _md_config() -> MDGCNConfig:
    return MDGCNConfig(hidden_dim=8, epochs=8)


class TestMDModuleResume:
    def test_kill_and_resume_bitwise(self, tiny, tmp_path):
        cohort, x, y = tiny
        n = y.shape[1]
        ckpt = tmp_path / "md"

        uninterrupted = MDModule(_md_config())
        clean_log = uninterrupted.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4
        )

        interrupted = MDModule(_md_config())
        with pytest.raises(_Interrupted):
            interrupted.fit(
                x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
                callbacks=[InterruptAfter(3)],
                checkpoint_dir=ckpt, checkpoint_every=1,
            )
        assert has_checkpoint(ckpt)
        # The Checkpoint callback runs after the interrupting callback,
        # so the newest complete checkpoint is the epoch *before* the kill.
        assert checkpoint_info(ckpt)["epoch"] == 2

        resumed = MDModule(_md_config())
        resumed_log = resumed.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
            checkpoint_dir=ckpt, checkpoint_every=1,
        )

        assert resumed_log.train.resumed_from == 2
        assert resumed_log.train.epochs_run == 6
        assert resumed_log.train.total_epochs == 8
        # Whole loss curves — restored prefix plus resumed tail — match
        # the uninterrupted run bitwise.
        assert resumed_log.factual_losses == clean_log.factual_losses
        assert resumed_log.counterfactual_losses == clean_log.counterfactual_losses
        np.testing.assert_array_equal(
            resumed.predict_scores(x[:7]), uninterrupted.predict_scores(x[:7])
        )

    def test_resume_from_terminal_checkpoint_runs_zero_epochs(self, tiny, tmp_path):
        cohort, x, y = tiny
        n = y.shape[1]
        ckpt = tmp_path / "md-done"

        first = MDModule(_md_config())
        first_log = first.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
            checkpoint_dir=ckpt, checkpoint_every=4,
        )
        second = MDModule(_md_config())
        second_log = second.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
            checkpoint_dir=ckpt, checkpoint_every=4,
        )
        assert second_log.train.epochs_run == 0
        assert second_log.train.resumed_from == 8
        assert second_log.factual_losses == first_log.factual_losses
        np.testing.assert_array_equal(
            second.predict_scores(x[:5]), first.predict_scores(x[:5])
        )


class TestDDIModuleResume:
    def test_kill_and_resume_bitwise(self, tiny, tmp_path):
        cohort, _, _ = tiny
        config = DDIGCNConfig(backbone="sgcn", hidden_dim=8, epochs=8)
        ckpt = tmp_path / "ddi"

        clean = DDIModule(config)
        clean_log = clean.fit(cohort.ddi.graph)

        broken = DDIModule(config)
        with pytest.raises(_Interrupted):
            broken.fit(
                cohort.ddi.graph,
                callbacks=[InterruptAfter(4)],
                checkpoint_dir=ckpt, checkpoint_every=1,
            )

        resumed = DDIModule(config)
        resumed_log = resumed.fit(
            cohort.ddi.graph, checkpoint_dir=ckpt, checkpoint_every=1
        )
        assert resumed_log.train.resumed_from == 3
        assert resumed_log.losses == clean_log.losses
        np.testing.assert_array_equal(
            resumed.drug_embeddings(), clean.drug_embeddings()
        )


class TestSystemResume:
    def _config(self) -> DSSDDIConfig:
        return DSSDDIConfig(
            ddi=DDIGCNConfig(backbone="sgcn", hidden_dim=8, epochs=5),
            md=MDGCNConfig(hidden_dim=8, epochs=6),
        )

    def test_system_fit_checkpoints_both_modules(self, tiny, tmp_path):
        cohort, x, y = tiny
        ckpt = tmp_path / "system"
        system = DSSDDI(self._config())
        report = system.fit(
            x, y, cohort.ddi, checkpoint_dir=ckpt, checkpoint_every=2
        )
        assert has_checkpoint(ckpt / "ddi")
        assert has_checkpoint(ckpt / "md")
        summary = report.training_summary()
        assert summary["md"]["total_epochs"] == 6
        assert summary["ddi"]["total_epochs"] == 5
        assert summary["md"]["checkpoints"] >= 3

    def test_md_checkpoint_embeds_servable_artifact(self, tiny, tmp_path):
        from repro.serving.artifact import load_system
        from repro.train import latest_checkpoint

        cohort, x, y = tiny
        ckpt = tmp_path / "system"
        system = DSSDDI(self._config())
        system.fit(x, y, cohort.ddi, checkpoint_dir=ckpt, checkpoint_every=2)

        newest = latest_checkpoint(ckpt / "md")
        assert (newest / "artifact" / "manifest.json").is_file()
        snapshot = load_system(newest / "artifact")
        # The terminal checkpoint's snapshot is the fitted model itself.
        np.testing.assert_array_equal(
            snapshot.predict_scores(x[:5]), system.predict_scores(x[:5])
        )

    def test_system_kill_and_resume_bitwise_scores(self, tiny, tmp_path):
        cohort, x, y = tiny
        ckpt = tmp_path / "system"

        clean = DSSDDI(self._config())
        clean_report = clean.fit(x, y, cohort.ddi)

        broken = DSSDDI(self._config())
        with pytest.raises(_Interrupted):
            # The MD fit is the second phase; interrupting at epoch 2 of
            # 6 leaves a complete DDI run plus a partial MD run.
            _fit_with_md_interrupt(broken, x, y, cohort.ddi, ckpt)

        resumed = DSSDDI(self._config())
        resumed_report = resumed.fit(
            x, y, cohort.ddi, checkpoint_dir=ckpt, checkpoint_every=1
        )
        # The DDI phase resumes from its terminal checkpoint (0 epochs),
        # the MD phase from its newest mid-run checkpoint.
        assert resumed_report.training_summary()["ddi"]["epochs_run"] == 0
        assert resumed_report.training_summary()["md"]["resumed_from"] == 1
        assert (
            resumed_report.md_log.factual_losses
            == clean_report.md_log.factual_losses
        )
        np.testing.assert_array_equal(
            resumed.predict_scores(x[:9]), clean.predict_scores(x[:9])
        )


def _fit_with_md_interrupt(system, x, y, ddi, ckpt):
    """Run a checkpointed system fit whose MD phase dies after epoch 2."""
    original = MDModule.fit

    def interrupting(self, *args, **kwargs):
        callbacks = list(kwargs.get("callbacks", ()))
        callbacks.append(InterruptAfter(2))
        kwargs["callbacks"] = callbacks
        return original(self, *args, **kwargs)

    MDModule.fit = interrupting
    try:
        system.fit(x, y, ddi, checkpoint_dir=ckpt, checkpoint_every=1)
    finally:
        MDModule.fit = original
