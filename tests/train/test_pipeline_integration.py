"""Checkpointed training through the pipeline and the serving registry.

End-to-end (in-process) version of the CI resume smoke: run the
``chronic.fit.dssddi_sgcn`` stage with checkpointing, kill it after the
first checkpoints, re-run, and assert the manifest records the resume —
and that the cached artifact is byte-identical to an uninterrupted run's.
Also covers publishing the best-so-far model straight from a checkpoint
directory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.md_module import MDModule
from repro.pipeline import PipelineConfig, load_manifests
from repro.pipeline.cache import StageCache
from repro.pipeline.cli import main as repro_main
from repro.pipeline.runner import run_stage
from repro.train import Callback

FIT_STAGE = "chronic.fit.dssddi_sgcn"


class _Interrupted(RuntimeError):
    pass


class _InterruptAfter(Callback):
    def __init__(self, epoch: int) -> None:
        self.epoch = epoch

    def on_epoch_end(self, state) -> None:
        if state.epoch >= self.epoch:
            raise _Interrupted(f"killed after epoch {state.epoch}")


@pytest.fixture()
def md_interrupt(monkeypatch):
    """Make every MDModule.fit die after 2 epochs (simulated kill)."""
    original = MDModule.fit

    def interrupting(self, *args, **kwargs):
        callbacks = list(kwargs.get("callbacks", ()))
        callbacks.append(_InterruptAfter(2))
        kwargs["callbacks"] = callbacks
        return original(self, *args, **kwargs)

    monkeypatch.setattr(MDModule, "fit", interrupting)
    yield
    monkeypatch.setattr(MDModule, "fit", original)


def _config(tmp_path, name: str, checkpoint_every: int = 1) -> PipelineConfig:
    return PipelineConfig(
        scale="tiny",
        cache_dir=str(tmp_path / name),
        checkpoint_every=checkpoint_every,
    )


def _fit_digest(config: PipelineConfig) -> str:
    entries = [
        e for e in StageCache(config.resolved_cache_dir()).entries()
        if e.stage == FIT_STAGE
    ]
    assert len(entries) == 1
    return entries[0].digest


class TestStageKillAndResume:
    def test_interrupted_stage_resumes_and_matches_uninterrupted(
        self, tmp_path, md_interrupt, monkeypatch
    ):
        config = _config(tmp_path, "interrupted")
        with pytest.raises(_Interrupted):
            run_stage(FIT_STAGE, config, save_manifest=True)
        # The kill left checkpoints but no cached stage output...
        cache = StageCache(config.resolved_cache_dir())
        assert not any(e.stage == FIT_STAGE for e in cache.entries())
        assert any(cache.checkpoints_dir.iterdir())

        # ... so the re-run resumes from them instead of refitting.
        monkeypatch.undo()  # lift the simulated kill
        run_stage(FIT_STAGE, config, save_manifest=True)
        manifests = load_manifests(config.resolved_runs_dir())
        assert len(manifests) == 1  # the killed run saved no manifest
        record = {s.stage: s for s in manifests[0].stages}[FIT_STAGE]
        assert record.training is not None
        assert record.training["md"]["resumed_from"] == 1
        assert record.training["md"]["checkpoints"] >= 1
        assert record.training["md"]["checkpoint_digest"]
        assert record.training["ddi"]["epochs_run"] == 0  # terminal resume

        # Bitwise equality with a never-interrupted run: the cached
        # artifacts' content digests must match exactly.
        clean = _config(tmp_path, "clean", checkpoint_every=0)
        run_stage(FIT_STAGE, clean, save_manifest=True)
        assert _fit_digest(config) == _fit_digest(clean)

        clean_record = {
            s.stage: s
            for s in load_manifests(clean.resolved_runs_dir())[0].stages
        }[FIT_STAGE]
        assert clean_record.training["md"]["resumed_from"] is None
        assert (
            clean_record.training["md"]["final_loss"]
            == record.training["md"]["final_loss"]
        )

        # `repro report` surfaces the convergence metadata per stage.
        from repro.pipeline import render_report

        text = render_report(config.resolved_runs_dir(), include_outputs=False)
        assert f"Training — `{FIT_STAGE}`" in text
        assert "| Resumed from " in text
        assert "| epoch 1 |" in text  # the md module's resume epoch

    def test_cache_clear_removes_checkpoints(self, tmp_path, md_interrupt):
        config = _config(tmp_path, "cleared")
        with pytest.raises(_Interrupted):
            run_stage(FIT_STAGE, config)
        cache = StageCache(config.resolved_cache_dir())
        assert cache.checkpoints_dir.is_dir()
        cache.clear()
        assert not cache.checkpoints_dir.exists()

    def test_prune_drops_superseded_checkpoints_keeps_inflight(self, tmp_path):
        cache = StageCache(tmp_path / "cache")
        cache.store("key-old", "stage.x", "json", {"v": 1})
        import time as _time

        _time.sleep(0.01)  # order the created_at timestamps
        cache.store("key-new", "stage.x", "json", {"v": 2})
        (cache.checkpoints_dir / "key-old").mkdir(parents=True)
        (cache.checkpoints_dir / "key-new").mkdir(parents=True)
        # A key with checkpoints but no cache entry is an interrupted
        # fit awaiting resume — prune must not touch it.
        (cache.checkpoints_dir / "key-inflight").mkdir(parents=True)

        removed = cache.prune(keep_last=1)
        assert [e.key for e in removed] == ["key-old"]
        assert not (cache.checkpoints_dir / "key-old").exists()
        assert (cache.checkpoints_dir / "key-new").is_dir()
        assert (cache.checkpoints_dir / "key-inflight").is_dir()


class TestPublishFromCheckpoint:
    def test_best_so_far_model_served_from_killed_fit(
        self, tmp_path, md_interrupt
    ):
        from repro.server.registry import ModelRegistry, publish_artifact

        config = _config(tmp_path, "publish")
        with pytest.raises(_Interrupted):
            run_stage(FIT_STAGE, config)

        cache = StageCache(config.resolved_cache_dir())
        (stage_dir,) = list(cache.checkpoints_dir.iterdir())
        version = publish_artifact(stage_dir / "md", tmp_path / "models")
        assert version.name.startswith("v0001-")

        registry = ModelRegistry(tmp_path / "models")
        registry.reload()
        service = registry.active().service
        scores = service.predict_scores(np.zeros((1, service.feature_dim)))
        assert scores.shape == (1, service.num_drugs)

    def test_publish_rejects_checkpoint_free_directory(self, tmp_path):
        from repro.server.registry import publish_artifact

        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="servable checkpoint"):
            publish_artifact(empty, tmp_path / "models")


class TestStageCLI:
    def test_run_accepts_stage_names(self, tmp_path, capsys):
        code = repro_main(
            [
                "run", "chronic.data",
                "--scale", "tiny",
                "--cache-dir", str(tmp_path / "cli-cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage chronic.data materialized" in out

    def test_run_rejects_unknown_names(self, tmp_path, capsys):
        code = repro_main(
            ["run", "no.such.stage", "--cache-dir", str(tmp_path / "x")]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
