"""Checkpoints under ENOSPC and SIGKILL: the last complete one always wins.

The property checkpoints exist for — a fit killed at *any* instruction
resumes bitwise from the newest complete checkpoint — holds only if the
checkpoint write itself can die at any stage without corrupting what is
already on disk.  These tests drive :meth:`repro.train.TrainState.save`
through every ``ckpt.save.*`` failpoint with disk-full errors (in
process) and SIGKILL (subprocess), then prove the bitwise-restore
contract, ending with a real MD-module fit killed mid-checkpoint.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import chaos
from repro.nn import Tensor
from repro.train import TrainState, checkpoint_info, latest_checkpoint

REPO_ROOT = Path(__file__).resolve().parents[2]

#: ckpt.save failpoints at which the promotion has NOT yet happened.
PRE_PROMOTE = ("setup", "payload", "fsync", "rename")


def make_state(epoch: int) -> TrainState:
    """A deterministic small state: same ``epoch`` -> same bits."""
    rng = np.random.default_rng(1234)
    params = [
        Tensor(rng.standard_normal((4, 3)) + epoch),
        Tensor(rng.standard_normal(5) * (epoch + 1)),
    ]
    state = TrainState(params, optimizer=None, rng=rng)
    state.epoch = epoch
    state.step = epoch * 10
    state.history = {"loss": [1.0 / (i + 1) for i in range(epoch)]}
    return state


def assert_states_bitwise_equal(a: TrainState, b: TrainState) -> None:
    assert a.epoch == b.epoch and a.step == b.step
    assert a.history == b.history
    for pa, pb in zip(a.params, b.params):
        np.testing.assert_array_equal(pa.data, pb.data)
    assert a.rng.bit_generator.state == b.rng.bit_generator.state


def restore_into_fresh_state(path, epoch_shape_donor: int) -> TrainState:
    """Restore ``path`` into a state built like the writer built its own."""
    fresh = make_state(epoch_shape_donor)
    fresh.restore(path)
    return fresh


class TestEnospcDuringSave:
    @pytest.mark.parametrize("subpoint", PRE_PROMOTE)
    def test_disk_full_preserves_the_previous_checkpoint(
        self, tmp_path, subpoint
    ):
        path = tmp_path / "epoch-000002"
        make_state(2).save(path)
        with chaos.chaos(f"ckpt.save.{subpoint}=enospc"):
            with pytest.raises(OSError) as excinfo:
                make_state(3).save(path)
        assert excinfo.value.errno == __import__("errno").ENOSPC
        # The old checkpoint is untouched and restores bitwise.
        restored = restore_into_fresh_state(path, epoch_shape_donor=2)
        assert_states_bitwise_equal(restored, make_state(2))
        # The failed temp is gone (save cleans up on error).
        assert [p.name for p in tmp_path.iterdir()] == ["epoch-000002"]

    def test_transient_disk_full_then_success(self, tmp_path):
        path = tmp_path / "epoch-000002"
        make_state(2).save(path)
        with chaos.chaos("ckpt.save.payload=enospc#1"):
            with pytest.raises(OSError):
                make_state(3).save(path)
            make_state(3).save(path)  # budget spent: the retry lands
        restored = restore_into_fresh_state(path, epoch_shape_donor=3)
        assert_states_bitwise_equal(restored, make_state(3))


KILL_CHILD = """
import numpy as np
from repro import chaos
from repro.nn import Tensor
from repro.train import TrainState

def make_state(epoch):
    rng = np.random.default_rng(1234)
    params = [
        Tensor(rng.standard_normal((4, 3)) + epoch),
        Tensor(rng.standard_normal(5) * (epoch + 1)),
    ]
    state = TrainState(params, optimizer=None, rng=rng)
    state.epoch = epoch
    state.step = epoch * 10
    state.history = {{"loss": [1.0 / (i + 1) for i in range(epoch)]}}
    return state

make_state(3).save({path!r})
"""


class TestKillDuringSave:
    @pytest.mark.parametrize("subpoint", chaos.WRITE_SUBPOINTS)
    def test_kill_leaves_old_or_new_complete_checkpoint(
        self, tmp_path, subpoint
    ):
        path = tmp_path / "epoch-000002"
        make_state(2).save(path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env[chaos.ENV_VAR] = f"ckpt.save.{subpoint}=kill"
        result = subprocess.run(
            [sys.executable, "-c", KILL_CHILD.format(path=str(path))],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        # Whatever survived restores bitwise as one of the two states.
        restored = restore_into_fresh_state(path, epoch_shape_donor=2)
        assert restored.epoch in (2, 3)
        assert_states_bitwise_equal(restored, make_state(restored.epoch))
        if subpoint in PRE_PROMOTE:
            assert restored.epoch == 2  # promotion never happened
        # The next save sweeps the orphaned temp and converges.
        make_state(4).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["epoch-000002"]
        restored = restore_into_fresh_state(path, epoch_shape_donor=4)
        assert_states_bitwise_equal(restored, make_state(4))


FIT_CHILD = """
import numpy as np
from repro.core.md_module import MDModule
from repro.core import MDGCNConfig
from repro.data import generate_chronic_cohort, standardize_features

cohort = generate_chronic_cohort(num_patients=60, seed=9)
x = standardize_features(cohort.features)
y = cohort.medications
n = y.shape[1]
module = MDModule(MDGCNConfig(hidden_dim=8, epochs=8))
module.fit(
    x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
    checkpoint_dir={ckpt!r}, checkpoint_every=1,
)
"""


class TestTrainerResumeAfterKill:
    def test_fit_killed_mid_checkpoint_resumes_bitwise(self, tmp_path):
        """The end-to-end satellite: a real fit SIGKILLed *inside* a
        checkpoint write resumes from the last complete epoch and lands
        on the uninterrupted run's exact weights.

        ``@0.5`` with seed 0 draws (0.844, 0.758, 0.421, ...), so the
        kill deterministically fires on the *third* ``ckpt.save.rename``
        — epochs 1 and 2 are complete on disk, epoch 3 dies mid-write.
        """
        from repro.core import MDGCNConfig
        from repro.core.md_module import MDModule
        from repro.data import generate_chronic_cohort, standardize_features

        ckpt = tmp_path / "md"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env[chaos.ENV_VAR] = "ckpt.save.rename=kill@0.5#1"
        env[chaos.SEED_ENV] = "0"
        result = subprocess.run(
            [sys.executable, "-c", FIT_CHILD.format(ckpt=str(ckpt))],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert latest_checkpoint(ckpt) is not None
        assert checkpoint_info(ckpt)["epoch"] == 2

        cohort = generate_chronic_cohort(num_patients=60, seed=9)
        x = standardize_features(cohort.features)
        y = cohort.medications
        n = y.shape[1]

        clean = MDModule(MDGCNConfig(hidden_dim=8, epochs=8))
        clean_log = clean.fit(x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4)

        resumed = MDModule(MDGCNConfig(hidden_dim=8, epochs=8))
        resumed_log = resumed.fit(
            x, y, np.eye(n), cohort.ddi.graph, None, num_clusters=4,
            checkpoint_dir=ckpt, checkpoint_every=1,
        )
        assert resumed_log.train.resumed_from == 2
        # Loss curves and final predictions match the never-killed run
        # bitwise: the torn epoch-3 write cost nothing but recompute.
        assert resumed_log.factual_losses == clean_log.factual_losses
        assert (
            resumed_log.counterfactual_losses == clean_log.counterfactual_losses
        )
        np.testing.assert_array_equal(
            resumed.predict_scores(x[:7]), clean.predict_scores(x[:7])
        )
