"""Ensure the in-tree sources are importable even without an editable install.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot complete; ``python setup.py develop`` works, but this shim makes the
test-suite robust either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
