"""Gateway demo: publish, serve over HTTP, micro-batch, hot-swap.

The online-serving workflow end to end, in one process:

1. fit a small DSSDDI on the synthetic chronic cohort,
2. ``publish_artifact`` it into a versioned artifact root,
3. start the gateway (micro-batcher + registry + metrics) on an
   ephemeral port and fire concurrent ``POST /v1/suggest`` requests at
   it — watch them coalesce into shared flushes,
4. publish a second version and hot-swap it live via ``POST /-/reload``,
5. print the Prometheus metrics the gateway accumulated.

Usage::

    python examples/gateway_demo.py

In production you would run steps 1-2 as ``repro publish --scale small
--model-root models/`` and step 3 as ``repro-serve models/``.
"""

import http.client
import json
import tempfile
import threading
from pathlib import Path

from repro.core import DSSDDI, DSSDDIConfig, ServerConfig
from repro.data import generate_chronic_cohort, split_patients, standardize_features
from repro.server import (
    GatewayApp,
    ModelRegistry,
    build_server,
    publish_artifact,
    serve_in_thread,
)


def main() -> None:
    """Run the publish -> serve -> batch -> hot-swap walkthrough."""
    # 1. fit (tiny epochs: this is a demo, not an evaluation)
    cohort = generate_chronic_cohort(num_patients=200, seed=11)
    x = standardize_features(cohort.features)
    split = split_patients(cohort.num_patients, seed=1)
    config = DSSDDIConfig.fast()
    config.ddi.epochs, config.md.epochs = 20, 60
    system = DSSDDI(config)
    system.fit(x[split.train], cohort.medications[split.train], cohort.ddi)

    # 2. publish into a versioned artifact root
    root = Path(tempfile.mkdtemp()) / "models"
    version = publish_artifact(system, root)
    print(f"published {version.name} -> {version.path}")

    # 3. serve on an ephemeral port and hammer it concurrently
    app = GatewayApp(
        ModelRegistry(root),
        ServerConfig(max_batch_size=16, max_wait_ms=2.0, score_block=8),
    )
    server = build_server(app, port=0)
    port = server.server_address[1]
    _thread, stop = serve_in_thread(server)
    print(f"gateway listening on http://127.0.0.1:{port}")

    pool = x[split.test]

    def client(tid: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        for i in range(20):
            row = pool[(tid * 7 + i) % len(pool)]
            conn.request(
                "POST",
                "/v1/suggest",
                body=json.dumps({"features": [row.tolist()], "k": 3}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200, response.read()
            response.read()
        conn.close()

    threads = [threading.Thread(target=client, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sizes = app.metrics.batch_sizes
    print(
        f"served {sizes.total} patient rows in {sizes.count} flushes "
        f"(mean micro-batch {sizes.mean:.1f} rows)"
    )

    # 4. publish a new version and hot-swap without restarting
    second = publish_artifact(system, root, reuse_identical=False)
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request("POST", "/-/reload")
    print("reload:", json.loads(conn.getresponse().read()))
    conn.request("GET", "/healthz")
    health = json.loads(conn.getresponse().read())
    assert health["version"] == second.name
    print(f"now serving {health['version']} (zero requests dropped)")

    # 5. the metrics a Prometheus scraper would collect
    conn.request("GET", "/metrics")
    text = conn.getresponse().read().decode()
    interesting = [
        line
        for line in text.splitlines()
        if line.startswith(
            ("repro_server_requests_total", "repro_server_batch_size_bucket",
             "repro_server_model_info")
        )
    ]
    print("\n".join(interesting))

    conn.close()
    stop()
    app.close()


if __name__ == "__main__":
    main()
