"""Polypharmacy safety screening for a ward of chronic patients.

The scenario from the paper's introduction: elderly patients on multiple
medications, where antagonistic drug-drug interactions raise the risk of
severe adverse events.  This example:

1. screens every patient's *current* medication list against the DDI graph
   and flags antagonistic combinations (the paper's Case 4 situation),
2. asks DSSDDI for an alternative suggestion of the same size,
3. compares both regimens with the Suggestion Satisfaction measure and the
   raw antagonistic-pair count.

Usage::

    python examples/polypharmacy_screening.py
"""

import numpy as np

from repro import DSSDDI, generate_chronic_cohort, split_patients
from repro.core import DSSDDIConfig
from repro.data import drug_names, standardize_features
from repro.metrics import suggestion_satisfaction


def antagonistic_pairs(graph, drugs):
    """All antagonistic pairs inside a medication list."""
    pairs = []
    drugs = list(drugs)
    for i, u in enumerate(drugs):
        for v in drugs[i + 1 :]:
            if graph.sign_or_none(u, v) == -1:
                pairs.append((u, v))
    return pairs


def main() -> None:
    cohort = generate_chronic_cohort(
        num_patients=500, seed=11, antagonism_tolerance=0.15
    )
    features = standardize_features(cohort.features)
    split = split_patients(cohort.num_patients, seed=2)
    names = drug_names(cohort.catalog)
    graph = cohort.ddi.graph

    print("Training DSSDDI for the screening service ...")
    system = DSSDDI(DSSDDIConfig.fast())
    system.fit(features[split.train], cohort.medications[split.train], cohort.ddi)

    print("\nScreening the held-out ward ...\n")
    flagged = 0
    for row, patient_idx in enumerate(split.test):
        current = np.nonzero(cohort.medications[patient_idx])[0].tolist()
        conflicts = antagonistic_pairs(graph, current)
        if not conflicts or len(current) < 2:
            continue
        flagged += 1
        if flagged > 3:  # show the first three flagged patients in detail
            continue

        print(f"Patient #{patient_idx}: takes {[names[d] for d in current]}")
        for u, v in conflicts:
            print(f"  !! antagonism: {names[u]} <-> {names[v]}")

        current_ss = suggestion_satisfaction(graph, current).value
        suggestion = system.suggest(features[patient_idx : patient_idx + 1],
                                    k=len(current))[0]
        suggested_ss = suggestion_satisfaction(graph, suggestion).value
        remaining = antagonistic_pairs(graph, suggestion)

        print(f"  current regimen:   SS={current_ss:.4f}, "
              f"{len(conflicts)} antagonistic pair(s)")
        print(f"  DSSDDI suggestion: {[names[d] for d in suggestion]}")
        print(f"                     SS={suggested_ss:.4f}, "
              f"{len(remaining)} antagonistic pair(s)")
        print()

    total = len(split.test)
    print(f"Flagged {flagged} of {total} ward patients with antagonistic "
          f"co-prescriptions.")


if __name__ == "__main__":
    main()
