"""Quickstart: train DSSDDI and get explained medication suggestions.

Runs the full pipeline on a small synthetic cohort in under a minute:

1. generate the chronic cohort and the DrugCombDB-style DDI graph,
2. fit the system (DDIGCN -> MDGCN with counterfactual links),
3. suggest drugs for a held-out patient with the MS-module explanation.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import DSSDDI, generate_chronic_cohort, split_patients
from repro.core import DSSDDIConfig
from repro.data import standardize_features
from repro.metrics import ranking_report


def main() -> None:
    print("Generating the synthetic Hong Kong chronic cohort ...")
    cohort = generate_chronic_cohort(num_patients=400, seed=11)
    features = standardize_features(cohort.features)
    split = split_patients(cohort.num_patients, seed=1)
    print(
        f"  {cohort.num_patients} patients, {cohort.num_drugs} drugs, "
        f"{cohort.ddi.graph.num_edges} DDI pairs "
        f"({len(cohort.ddi.synergy)} synergy / {len(cohort.ddi.antagonism)} antagonism)"
    )

    print("Fitting DSSDDI (SGCN backbone) ...")
    config = DSSDDIConfig.fast()  # small epoch counts for the demo
    system = DSSDDI(config)
    report = system.fit(
        features[split.train], cohort.medications[split.train], cohort.ddi
    )
    print(f"  DDIGCN final MSE: {report.ddi_log.final_loss:.4f}")
    print(f"  MDGCN final BCE: {report.md_log.final_loss:.4f}")
    print(f"  counterfactual match rate: {report.md_log.cf_match_rate:.1%}")

    print("\nEvaluating on held-out patients ...")
    scores = system.predict_scores(features[split.test])
    for row in ranking_report(scores, cohort.medications[split.test], ks=(1, 3, 6)):
        print(
            f"  k={row.k}: precision={row.precision:.4f} "
            f"recall={row.recall:.4f} ndcg={row.ndcg:.4f}"
        )

    print("\nSuggestion + explanation for one new patient:")
    patient = features[split.test][:1]
    explanation = system.suggest_and_explain(patient, k=3)[0]
    print(explanation.render())


if __name__ == "__main__":
    main()
