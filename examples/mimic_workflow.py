"""Multi-visit EHR workflow on the synthetic MIMIC-III data (paper Sec. V-E).

Previous visits' diagnosis/procedure codes are the patient features and the
last visit's medications the prediction target.  The MIMIC DDI extract
contains only antagonistic pairs between anonymous drugs, so the GIN
backbone is used (signed backbones need both edge signs).

Compares DSSDDI(GIN) against LightGCN and the visit-sequential SafeDrug.

Usage::

    python examples/mimic_workflow.py
"""

import numpy as np

from repro.baselines import LightGCNRecommender, SafeDrug
from repro.core import DDIModule, MDModule
from repro.core.config import DDIGCNConfig, MDGCNConfig
from repro.data import generate_mimic, split_patients, visit_step_features
from repro.metrics import ndcg_at_k, precision_at_k, recall_at_k


def evaluate(name, scores, labels):
    for k in (4, 8):
        print(
            f"  {name:12s} k={k}: P={precision_at_k(scores, labels, k):.4f} "
            f"R={recall_at_k(scores, labels, k):.4f} "
            f"NDCG={ndcg_at_k(scores, labels, k):.4f}"
        )


def main() -> None:
    print("Generating the synthetic MIMIC-III cohort ...")
    data = generate_mimic(num_patients=800, seed=23)
    split = split_patients(data.num_patients, seed=3)
    x_train, y_train = data.features[split.train], data.labels[split.train]
    x_test, y_test = data.features[split.test], data.labels[split.test]
    print(
        f"  {data.num_patients} patients, {data.num_drugs} anonymous drugs, "
        f"{data.ddi.num_edges} antagonistic DDI pairs"
    )

    print("\nTraining DSSDDI(GIN) on the antagonism-only DDI graph ...")
    ddi_module = DDIModule(DDIGCNConfig(backbone="gin", hidden_dim=32, epochs=80))
    ddi_module.fit(data.ddi)
    md = MDModule(MDGCNConfig(hidden_dim=32, epochs=150))
    md.fit(
        x_train,
        y_train,
        np.eye(data.num_drugs),
        data.ddi,
        ddi_module.drug_embeddings(),
        num_clusters=10,
    )
    dssddi_scores = md.predict_scores(x_test)

    print("Training LightGCN ...")
    lightgcn = LightGCNRecommender(hidden_dim=32, epochs=120)
    lightgcn.fit(x_train, y_train)
    lightgcn_scores = lightgcn.predict_scores(x_test)

    print("Training SafeDrug on the true visit sequences ...")
    steps = visit_step_features(data, max_visits=3)
    steps_train = [s[split.train] for s in steps]
    steps_test = [s[split.test] for s in steps]
    safedrug = SafeDrug(hidden_dim=32, epochs=120, ddi_graph=data.ddi)
    safedrug.fit(x_train, y_train, visit_steps=steps_train)
    safedrug_scores = safedrug.predict_scores(x_test, visit_steps=steps_test)

    print("\nLast-visit medication prediction on held-out patients:")
    evaluate("DSSDDI(GIN)", dssddi_scores, y_test)
    evaluate("LightGCN", lightgcn_scores, y_test)
    evaluate("SafeDrug", safedrug_scores, y_test)


if __name__ == "__main__":
    main()
