"""Pipeline demo: cached stages shared across two experiments.

What the experiment pipeline buys over the ad-hoc ``main()`` entry
points, end to end:

1. run Fig. 7 through ``repro.pipeline`` — the cohort stage, the shared
   DSSDDI(SGCN) fit, the LightGCN fit and the analysis stage all execute
   and land in the on-disk stage cache,
2. run Fig. 9 — its "w/ DDI" system is the *same* SGCN fit, so the
   expensive stage is served from the cache (watch the hit flag and the
   timing collapse in the manifest),
3. re-run Fig. 7 — now *every* cacheable stage is a hit,
4. print the last run's JSON manifest: config, seed, library versions,
   and per-stage timings/digests — the reproducibility record that
   ``repro report`` renders to markdown.

Usage::

    python examples/pipeline_demo.py

Equivalent shell session::

    repro run fig7 --scale tiny --cache-dir demo_cache
    repro run fig9 --scale tiny --cache-dir demo_cache
    repro report --cache-dir demo_cache
"""

import json
import tempfile

from repro.pipeline import PipelineConfig, run_experiment


def show(manifest) -> None:
    """One line per stage: hit/miss and seconds."""
    for record in manifest.stages:
        status = "HIT " if record.cache_hit else ("miss" if record.cacheable else "----")
        print(f"    [{status}] {record.stage:<28} {record.seconds:8.3f}s")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        config = PipelineConfig(scale="tiny", cache_dir=tmp)

        print("1) repro run fig7  (cold cache: every stage executes)")
        _, m7 = run_experiment("fig7", config)
        show(m7)

        print("\n2) repro run fig9  (shares the DSSDDI(SGCN) fit with fig7)")
        result9, m9 = run_experiment("fig9", config)
        show(m9)
        fit = next(s for s in m9.stages if s.stage == "chronic.fit.dssddi_sgcn")
        assert fit.cache_hit, "the shared fit stage must be served from cache"

        print("\n3) repro run fig7 again  (warm cache: all cacheable stages hit)")
        _, m7b = run_experiment("fig7", config)
        show(m7b)
        assert all(s.cache_hit for s in m7b.stages if s.cacheable)

        print("\n4) the fig9 result and its run manifest:")
        print(result9.render())
        print()
        print(json.dumps(m9.to_dict(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
