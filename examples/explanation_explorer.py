"""Explore the Medical Support module: truss communities around drug combos.

Replays the paper's named case-study interactions (Fig. 8 / Fig. 9) against
the generated DDI graph and walks through what the subgraph-querying
algorithm (truss decomposition + Steiner tree + bulk/shrink) returns for
different suggestion sets — no model training involved.

Usage::

    python examples/explanation_explorer.py
"""

from repro.core import MSModule
from repro.data import drug_names, generate_ddi
from repro.graph import truss_decomposition


def main() -> None:
    ddi = generate_ddi(seed=7)
    names = drug_names(ddi.catalog)
    ms = MSModule(ddi.graph)

    unsigned = ddi.graph.to_unsigned()
    truss = truss_decomposition(unsigned)
    print(
        f"DDI graph: {unsigned.num_nodes} drugs, {unsigned.num_edges} "
        f"interactions, max truss number "
        f"{max(truss.values()) if truss else 2}"
    )

    combos = {
        "statin pair (Fig. 8a synergy)": [46, 47],          # Simvastatin+Atorvastatin
        "nitrate + anticonvulsant (Fig. 8a antagonism)": [59, 61],
        "diuretic + ACE inhibitor (Fig. 9 case 1)": [10, 5],
        "cardio triple": [46, 47, 59],
    }
    for label, suggestion in combos.items():
        print(f"\n=== {label}: {[names[d] for d in suggestion]} ===")
        community = ms.query_subgraph(suggestion)
        if community is None:
            print("  drugs are not connected in the DDI graph")
            continue
        print(
            f"  community: {len(community.nodes)} drugs, "
            f"{community.trussness}-truss, diameter {community.diameter:.0f}"
        )
        explanation = ms.explain(suggestion, drug_names=names)
        print("  " + explanation.render().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
