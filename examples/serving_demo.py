"""Serving demo: fit on synthetic MIMIC data, persist, reload, serve.

The fit-once/serve-many workflow end to end:

1. generate the synthetic MIMIC-III-style EHR cohort (Sec. V-E shape:
   multi-visit features, antagonism-only DDI graph, anonymous drugs),
2. fit DSSDDI with the GIN backbone (the paper's MIMIC setting — signed
   backbones need both edge signs),
3. ``save`` the fitted state to an ``.npz`` + JSON artifact,
4. reload the artifact in a *fresh* :class:`repro.serving.SuggestionService`
   and answer a batched request, printing one rendered explanation and the
   service counters.

Usage::

    python examples/serving_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import DSSDDI, DSSDDIConfig
from repro.data import DDIDataset, generate_mimic, split_patients
from repro.data.catalog import Drug
from repro.serving import SuggestionService


def mimic_ddi_dataset(ddi_graph, num_drugs: int) -> DDIDataset:
    """Wrap MIMIC's bare antagonism-only graph as a DDIDataset.

    MIMIC drugs are anonymous, so the catalog is synthetic ids; DSSDDI
    only needs it for rendering names and the cluster-count default.
    """
    catalog = [
        Drug(did=i, name=f"Medication {i:02d}", disease="mimic")
        for i in range(num_drugs)
    ]
    return DDIDataset(
        graph=ddi_graph,
        synergy=ddi_graph.edges_of_sign(1),
        antagonism=ddi_graph.edges_of_sign(-1),
        catalog=catalog,
    )


def main() -> None:
    print("Generating the synthetic MIMIC-III cohort ...")
    data = generate_mimic(num_patients=400, num_drugs=60, num_ddi_pairs=120, seed=23)
    split = split_patients(data.num_patients, seed=3)
    ddi = mimic_ddi_dataset(data.ddi, data.num_drugs)
    print(
        f"  {data.num_patients} patients, {data.num_drugs} drugs, "
        f"{data.ddi.num_edges} antagonistic DDI pairs"
    )

    print("Fitting DSSDDI (GIN backbone, the paper's MIMIC setting) ...")
    config = DSSDDIConfig.fast(backbone="gin")
    config.ddi.epochs = 30
    config.md.epochs = 60
    system = DSSDDI(config)
    report = system.fit(
        data.features[split.train],
        data.labels[split.train],
        ddi,
        num_clusters=10,
    )
    print(f"  MDGCN final BCE: {report.md_log.final_loss:.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mimic_model"
        system.save(path)
        size_kb = sum(f.stat().st_size for f in path.iterdir()) / 1024
        print(f"Saved artifact to {path} ({size_kb:.0f} KiB)")

        print("Reloading in a fresh SuggestionService ...")
        service = SuggestionService.load(path)
        x_test = data.features[split.test]
        assert np.array_equal(
            service.predict_scores(x_test[:5]), system.predict_scores(x_test[:5])
        ), "loaded scores must be bitwise-identical"

        suggestions = service.suggest(x_test, k=3)
        print(f"  scored {len(x_test)} held-out patients in one batch")
        print(f"  first rows: {suggestions[:3].tolist()}")

        print("\nExplanation for the first patient:")
        explanation = service.suggest_and_explain(x_test[:1], k=3)[0]
        print(explanation.render())

        stats = service.stats()
        print(
            f"\nService stats: {stats.requests} requests, "
            f"{stats.patients_scored} patients scored, "
            f"cache {stats.cache_hits} hits / {stats.cache_misses} misses"
        )


if __name__ == "__main__":
    main()
