"""Logistic regression (reference [26]) trained by full-batch gradient descent.

Used as the base classifier of the ECC baseline and available standalone.
Plain numpy: the gradient of the regularized log-loss is closed-form, so
the model step applies its own update and the shared
:class:`repro.train.Trainer` only drives the loop (with a
:class:`repro.train.ConvergenceStop` reproducing the classic
|Δloss| < tol stopping rule).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..train import ConvergenceStop, TrainState, Trainer, TrainingLog


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Attributes:
        weights: (d,) coefficient vector after :meth:`fit`.
        bias: intercept.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.1,
        max_iter: int = 300,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.training_log: Optional[TrainingLog] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y disagree on the number of samples")
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0

        def step(state: TrainState, _batch) -> float:
            probs = _sigmoid(x @ self.weights + self.bias)
            error = probs - y
            grad_w = x.T @ error / n + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
            # Historical loop semantics: pre-update probabilities, but the
            # regularizer over the just-updated weights.
            return self._loss(probs, y)

        self.training_log = Trainer(self.max_iter).fit(
            step, TrainState(params=[]), callbacks=[ConvergenceStop(self.tol)]
        )
        return self

    def _loss(self, probs: np.ndarray, y: np.ndarray) -> float:
        eps = 1e-12
        ll = -(y * np.log(probs + eps) + (1 - y) * np.log(1 - probs + eps)).mean()
        return float(ll + 0.5 * self.l2 * (self.weights**2).sum())

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("call fit() before predict_proba()")
        x = np.asarray(x, dtype=np.float64)
        return _sigmoid(x @ self.weights + self.bias)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)
