"""K-means clustering (Hartigan & Wong reference [20]; Lloyd's algorithm).

The MD module clusters patients to define the treatment matrix: patients in
the same cluster as a treated patient inherit treatment 1 (Sec. IV-B1).
The paper sets the number of clusters to the number of chronic diseases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class KMeansResult:
    """Fitted clustering.

    Attributes:
        centers: (k, d) cluster centroids.
        labels: (n,) cluster index per sample.
        inertia: total within-cluster squared distance.
        iterations: Lloyd iterations until convergence.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        points = np.asarray(points, dtype=np.float64)
        distances = _pairwise_sq(points, self.centers)
        return distances.argmin(axis=1)


def _pairwise_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between row sets, numerically clipped."""
    sq = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    return np.maximum(sq, 0.0)


def _kmeans_pp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = x[first]
    closest = _pairwise_sq(x, centers[:1]).ravel()
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points identical to chosen centers; fill with random rows.
            centers[c] = x[int(rng.integers(0, n))]
            continue
        probs = closest / total
        choice = int(rng.choice(n, p=probs))
        centers[c] = x[choice]
        closest = np.minimum(closest, _pairwise_sq(x, centers[c : c + 1]).ravel())
    return centers


def kmeans(
    x: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        x: (n, d) data matrix.
        k: number of clusters (1 <= k <= n).
        seed: RNG seed for the initialization.
        max_iter: iteration cap.
        tol: stop when centroids move less than this (squared L2).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centers = _kmeans_pp_init(x, k, rng)

    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        distances = _pairwise_sq(x, centers)
        labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for c in range(k):
            members = x[labels == c]
            if len(members):
                new_centers[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point furthest from its center.
                worst = int(distances.min(axis=1).argmax())
                new_centers[c] = x[worst]
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift < tol:
            break
    distances = _pairwise_sq(x, centers)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, iterations=iteration)
