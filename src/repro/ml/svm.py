"""Linear support vector machine (references [27], [28]).

Trained by sub-gradient descent on the L2-regularized hinge loss (Pegasos
style with a fixed learning-rate schedule), driven by the shared
:class:`repro.train.Trainer` with a seeded :class:`repro.train.MiniBatcher`
(one permutation per epoch, contiguous slices — the classic Pegasos
pattern).  The SVM baseline of the paper ranks drugs for a patient by the
decision value of 86 one-vs-rest binary SVMs — :class:`MultiLabelSVM`
packages that.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..train import MiniBatcher, TrainState, Trainer, TrainingLog


class LinearSVM:
    """Binary linear SVM: minimize  lambda/2 ||w||^2 + mean hinge(y f(x)).

    Labels are {0, 1} at the API boundary and mapped to {-1, +1} internally.
    """

    def __init__(
        self,
        reg: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if reg <= 0:
            raise ValueError("reg must be positive")
        self.reg = reg
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.training_log: Optional[TrainingLog] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=np.float64)
        y01 = np.asarray(y, dtype=np.float64).ravel()
        if set(np.unique(y01)) - {0.0, 1.0}:
            raise ValueError("labels must be binary {0, 1}")
        y_pm = 2.0 * y01 - 1.0
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0

        def step(state: TrainState, idx: np.ndarray) -> float:
            # Pegasos schedule over the global step count (the Trainer
            # increments state.step before each batch).
            lr = 1.0 / (self.reg * state.step)
            margin = y_pm[idx] * (x[idx] @ self.weights + self.bias)
            active = margin < 1.0
            grad_w = self.reg * self.weights
            grad_b = 0.0
            if active.any():
                xa = x[idx][active]
                ya = y_pm[idx][active]
                grad_w = grad_w - (ya[:, None] * xa).mean(axis=0)
                grad_b = -float(ya.mean())
            # Batch objective before the update (monitoring only; the
            # historical loop never logged it).
            objective = 0.5 * self.reg * float(self.weights @ self.weights)
            objective += float(np.maximum(0.0, 1.0 - margin).mean())
            self.weights -= lr * grad_w
            self.bias -= lr * grad_b
            return objective

        state = TrainState(params=[], rng=np.random.default_rng(self.seed))
        self.training_log = Trainer(self.epochs).fit(
            step, state, MiniBatcher(n, self.batch_size)
        )
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("call fit() before decision_function()")
        return np.asarray(x, dtype=np.float64) @ self.weights + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(np.int64)


class MultiLabelSVM:
    """One-vs-rest linear SVMs, one per label column.

    ``decision_matrix`` returns the (n, num_labels) decision values used as
    ranking scores for medication suggestion.
    """

    def __init__(self, reg: float = 1e-3, epochs: int = 40, seed: int = 0) -> None:
        self.reg = reg
        self.epochs = epochs
        self.seed = seed
        self.models: List[Optional[LinearSVM]] = []
        self._constant_scores: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MultiLabelSVM":
        y = np.asarray(y)
        if y.ndim != 2:
            raise ValueError("y must be (n, num_labels)")
        self.models = []
        self._constant_scores = []
        for label in range(y.shape[1]):
            column = y[:, label]
            if column.min() == column.max():
                # Constant label: no separating problem to solve.
                self.models.append(None)
                self._constant_scores.append(float(column[0]))
                continue
            model = LinearSVM(
                reg=self.reg, epochs=self.epochs, seed=self.seed + label
            ).fit(x, column)
            self.models.append(model)
            self._constant_scores.append(0.0)
        return self

    def decision_matrix(self, x: np.ndarray) -> np.ndarray:
        if not self.models:
            raise RuntimeError("call fit() before decision_matrix()")
        n = np.asarray(x).shape[0]
        out = np.zeros((n, len(self.models)))
        for label, model in enumerate(self.models):
            if model is None:
                out[:, label] = self._constant_scores[label] * 2.0 - 1.0
            else:
                out[:, label] = model.decision_function(x)
        return out
