"""Classic machine-learning substrate: K-means, logistic regression, SVM.

Replaces scikit-learn (unavailable offline) for the treatment clustering of
the MD module and the traditional baselines (ECC over LR, one-vs-rest SVM).
"""

from .kmeans import KMeansResult, kmeans
from .logistic import LogisticRegression
from .svm import LinearSVM, MultiLabelSVM

__all__ = [
    "kmeans",
    "KMeansResult",
    "LogisticRegression",
    "LinearSVM",
    "MultiLabelSVM",
]
