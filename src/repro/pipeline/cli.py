"""The ``repro`` command line: run experiments, manage the cache, report.

Installed as a console script by ``setup.py`` and runnable without
installation as ``python -m repro.pipeline``::

    repro run table1 --scale small        # one experiment
    repro run all --jobs 4 --scale medium # every experiment, 4 workers
    repro run fig7 --force                # ignore cached stages
    repro run chronic.fit.dssddi_sgcn --checkpoint-every 10
                                          # checkpointed (resumable) fit
    repro publish --scale small           # fit -> serving artifact root
    repro cache ls                        # what is materialized
    repro cache prune --keep-last 3       # bound the cache on serving hosts
    repro cache clear
    repro report -o RESULTS.md            # manifests -> markdown
    repro trace summary --input run.json  # span latency stats
    repro trace slowest --url http://127.0.0.1:8035
    repro trace export --input spans.jsonl -o trace.json  # Perfetto
    repro list                            # registered experiments

Every ``run`` prints the rendered paper artifact and a per-stage cache
summary, and writes a JSON manifest (plus the rendered text) under
``<cache-dir>/runs/``; see :mod:`repro.pipeline.manifest`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..obs.cli import add_trace_parser, cmd_trace
from .cache import StageCache
from .registry import list_experiments
from .report import render_report
from .runner import (
    PipelineConfig,
    all_experiment_names,
    run_many,
    run_stage,
)

SCALES = ("tiny", "small", "medium", "full")


def _add_cache_dir_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache root (default: $REPRO_CACHE_DIR or ./.repro_cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative experiment pipeline for the DSSDDI reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one experiment, one stage, or 'all'"
    )
    run.add_argument(
        "experiment",
        help="experiment name (see 'repro list'), a stage name "
        "(e.g. chronic.fit.dssddi_sgcn), or 'all'",
    )
    run.add_argument("--scale", default="small", choices=SCALES)
    run.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes for independent experiments",
    )
    run.add_argument(
        "--force", action="store_true",
        help="re-execute every stage even when cached",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the stage cache entirely (no reads, no writes)",
    )
    run.add_argument(
        "--runs-dir", default=None,
        help="manifest directory (default: <cache-dir>/runs)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint training stages every N epochs; an interrupted "
        "run resumes from its newest checkpoint (0 disables)",
    )
    _add_cache_dir_arg(run)

    publish = sub.add_parser(
        "publish",
        help="fit (or reuse the cached fit of) DSSDDI(SGCN) and publish "
        "it as a new version in the serving artifact root",
    )
    publish.add_argument("--scale", default="small", choices=SCALES)
    publish.add_argument(
        "--model-root", default=None,
        help="artifact root served by repro-serve "
        "(default: $REPRO_MODEL_ROOT or ./.repro_models)",
    )
    publish.add_argument(
        "--force", action="store_true",
        help="refit even when the fit stage is cached",
    )
    publish.add_argument(
        "--no-cache", action="store_true",
        help="disable the stage cache entirely (no reads, no writes)",
    )
    _add_cache_dir_arg(publish)

    cache = sub.add_parser(
        "cache", help="inspect, prune, or clear the stage cache"
    )
    cache.add_argument("action", choices=("ls", "prune", "clear"))
    cache.add_argument(
        "--keep-last", type=int, default=None, metavar="N",
        help="prune: keep only the N newest entries of each stage",
    )
    _add_cache_dir_arg(cache)

    report = sub.add_parser("report", help="render run manifests to markdown")
    report.add_argument(
        "--runs-dir", default=None,
        help="manifest directory (default: <cache-dir>/runs)",
    )
    report.add_argument(
        "-o", "--output", default=None,
        help="write the markdown here instead of stdout",
    )
    report.add_argument(
        "--no-outputs", action="store_true",
        help="omit the rendered experiment outputs from the report",
    )
    _add_cache_dir_arg(report)

    add_trace_parser(sub)

    sub.add_parser("list", help="list registered experiments")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        scale=args.scale,
        cache_dir=args.cache_dir,
        runs_dir=args.runs_dir,
        use_cache=not args.no_cache,
        force=args.force,
        jobs=args.jobs,
        checkpoint_every=args.checkpoint_every,
    )
    known = all_experiment_names()
    names = known if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in known]
    if unknown and args.experiment in _stage_names():
        # Not an experiment but a registered stage: run it directly —
        # the path checkpointed training fits take (`repro run
        # chronic.fit.dssddi_sgcn --checkpoint-every 1`).
        return _run_single_stage(args.experiment, config)
    if unknown:
        # Reject bad names up front with a clean usage error; failures
        # during execution propagate with their traceback instead.
        print(
            f"error: unknown experiment {unknown[0]!r} "
            f"(experiments: {known}; stages: {_stage_names()})",
            file=sys.stderr,
        )
        return 2
    results = run_many(names, config)
    for name, rendered, manifest in results:
        print(f"\n{'=' * 70}")
        print(rendered)
        hits = manifest.cache_hits
        print(
            f"[{name}] {len(manifest.stages)} stage(s), {hits} cached, "
            f"{manifest.total_seconds:.2f}s — manifest {manifest.run_id}.json"
        )
    return 0


def _stage_names() -> List[str]:
    from .registry import list_stages
    from .runner import _ensure_registered

    _ensure_registered()
    return [spec.name for spec in list_stages()]


def _run_single_stage(name: str, config: PipelineConfig) -> int:
    """Materialize one stage by name, with a manifest (see run_stage)."""
    run_stage(name, config, save_manifest=True)
    print(f"stage {name} materialized (scale {config.scale})")
    if config.checkpoint_every:
        print(
            f"  checkpointing every {config.checkpoint_every} epoch(s); "
            "an interrupted run resumes from the newest checkpoint"
        )
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        scale=args.scale,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        force=args.force,
        model_root=args.model_root,
    )
    info = run_stage("chronic.publish", config)
    print(
        f"published {info['version']} (scale {info['scale']}) "
        f"to {info['model_root']}"
    )
    print(f"  digest {info['digest']}")
    print(f"  serve it: repro-serve {info['model_root']}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = StageCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached stage output(s) from {cache.root}")
        return 0
    if args.action == "prune":
        if args.keep_last is None or args.keep_last < 1:
            print("error: prune requires --keep-last N (N >= 1)", file=sys.stderr)
            return 2
        removed = cache.prune(args.keep_last)
        freed = sum(e.size_bytes for e in removed) / (1024 * 1024)
        print(
            f"pruned {len(removed)} entrie(s) ({freed:.1f} MiB) from "
            f"{cache.root}, keeping the {args.keep_last} newest per stage"
        )
        for e in removed:
            print(f"  {e.key}  {e.stage}")
        return 0
    entries = cache.entries()
    if not entries:
        print(f"cache at {cache.root} is empty")
        return 0
    print(f"{len(entries)} entrie(s) under {cache.root}:")
    for e in entries:
        size_kb = e.size_bytes / 1024
        print(f"  {e.key}  {e.stage:<28} {e.serializer:<7} {size_kb:9.1f} KiB")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    runs_dir = args.runs_dir or (StageCache(args.cache_dir).root / "runs")
    text = render_report(runs_dir, include_outputs=not args.no_outputs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_list() -> int:
    from .runner import _ensure_registered

    _ensure_registered()
    for spec in list_experiments():
        print(f"{spec.name:<8} {spec.title}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "publish":
            return _cmd_publish(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "trace":
            return cmd_trace(args)
        return _cmd_list()
    except BrokenPipeError:  # e.g. `repro report | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
