"""Experiment pipeline: declarative stages, disk caching, run manifests.

The paper's nine tables and figures share most of their expensive work —
the same cohort, the same DSSDDI(SGCN) fit, the same per-method score
matrices.  This package turns each experiment into a small DAG of
registered *stages* so that shared work is computed once, cached on disk
and reused across experiments and invocations:

* :mod:`repro.pipeline.registry` — the ``@stage`` / ``@experiment``
  decorators and topological resolution;
* :mod:`repro.pipeline.cache` — the content-addressed stage cache
  (fitted systems stored through the PR-1 serving artifact format);
* :mod:`repro.pipeline.runner` — cached execution of one experiment and
  ``ProcessPoolExecutor`` fan-out over independent experiments;
* :mod:`repro.pipeline.manifest` — per-run JSON manifests (config,
  seed, versions, per-stage timings and digests);
* :mod:`repro.pipeline.report` — manifests → markdown results report;
* :mod:`repro.pipeline.cli` — the ``repro`` command
  (``run`` / ``publish`` / ``cache`` / ``report`` / ``list``).

Quickstart::

    from repro.pipeline import PipelineConfig, run_experiment

    result, manifest = run_experiment("table1", PipelineConfig(scale="small"))
    print(result.render())
    # second call: fit/score stages served from the cache
    result, manifest = run_experiment("table1", PipelineConfig(scale="small"))
    assert manifest.cache_hits > 0

or, from a shell::

    repro run all --jobs 4 --scale small
    repro report -o RESULTS.md

Stage registration lives next to the experiment code in
:mod:`repro.experiments`; importing that package (the runner does it
on demand) populates the registry.
"""

from .cache import CacheEntry, StageCache, default_cache_dir, stage_key
from .manifest import RunManifest, StageRecord, library_versions, load_manifests
from .registry import (
    ExperimentSpec,
    StageSpec,
    experiment,
    get_experiment,
    get_stage,
    list_experiments,
    list_stages,
    register_experiment,
    resolve,
    stage,
)
from .report import render_report
from .runner import (
    PipelineConfig,
    StageContext,
    all_experiment_names,
    run_experiment,
    run_many,
    run_stage,
    shared_stages,
    warm_shared_stages,
)

__all__ = [
    "stage",
    "experiment",
    "register_experiment",
    "StageSpec",
    "ExperimentSpec",
    "get_stage",
    "get_experiment",
    "list_stages",
    "list_experiments",
    "resolve",
    "StageCache",
    "CacheEntry",
    "stage_key",
    "default_cache_dir",
    "RunManifest",
    "StageRecord",
    "library_versions",
    "load_manifests",
    "PipelineConfig",
    "StageContext",
    "run_experiment",
    "run_many",
    "run_stage",
    "shared_stages",
    "warm_shared_stages",
    "all_experiment_names",
    "render_report",
]
