"""Disk artifact cache for pipeline stages.

Layout (everything under one root, default ``.repro_cache``)::

    <root>/stages/<key>/meta.json     # stage name, serializer, digest, ...
    <root>/stages/<key>/<payload>     # serializer-specific files
    <root>/runs/<run_id>.json         # run manifests (see manifest.py)

``<key>`` is the content hash produced by :func:`stage_key`: sha256 over
the canonical JSON of the stage name, its version, its resolved parameter
values and the keys of its inputs.  Because input keys recurse, a key is
a Merkle root — changing the scale changes the cohort stage's key, which
changes every downstream fit/score/metric key, while stages that declare
``params=()`` (e.g. the scale-independent Fig. 3 catalog count) keep one
shared entry.

Serializers (chosen per stage in :class:`repro.pipeline.StageSpec`):

* ``dssddi`` — a fitted :class:`repro.core.DSSDDI`, stored through the
  serving artifact format of PR 1 (:mod:`repro.serving.artifact`), so a
  cached fit reloads with bitwise-identical ``predict_scores``.
* ``npz`` — a ``dict[str, np.ndarray]`` (method name -> score matrix);
  arbitrary dict keys are preserved through a ``keys.json`` sidecar
  because npz entry names cannot contain ``/``.
* ``json`` — any plain-JSON value.
* ``pickle`` — the fallback for result dataclasses.

Writes are atomic and durable (temp directory + per-file fsync +
``os.replace`` — the :mod:`repro.atomicio` idiom, instrumented with
``cache.store.*`` :mod:`repro.chaos` failpoints), so concurrent workers
racing on the same key at worst do duplicate work, never leave a
half-written entry, and a process killed mid-store leaves only a
dot-prefixed orphan that the next store sweeps away.  Deletion
(``clear``/``prune``) renames entries to a dot-prefixed trash name
before removing them, so a concurrent reader sees every entry either
complete or absent — never half-deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import atomicio, chaos
from .registry import StageSpec

PathLike = Union[str, Path]

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

META_NAME = "meta.json"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stage_key(
    spec: StageSpec, params: Mapping[str, Any], input_keys: Sequence[str]
) -> str:
    """Content-hashed cache key for one stage invocation.

    ``params`` maps each declared parameter name to its resolved value
    (e.g. the full ``Scale`` field dict, not just the preset name, so
    editing a preset invalidates dependents); ``input_keys`` are the keys
    of the stage's inputs in declared order.
    """
    payload = canonical_json(
        {
            "stage": spec.name,
            "version": spec.version,
            "params": {name: params[name] for name in spec.params},
            "inputs": list(input_keys),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


# ----------------------------------------------------------------------
# Serializers
# ----------------------------------------------------------------------
_NPZ_NAME = "data.npz"
_NPZ_KEYS_NAME = "keys.json"
_JSON_NAME = "data.json"
_PICKLE_NAME = "data.pkl"
_DSSDDI_NAME = "artifact"


def _save_dssddi(value: Any, directory: Path) -> None:
    from ..serving.artifact import save_artifact

    save_artifact(value, directory / _DSSDDI_NAME)


def _load_dssddi(directory: Path) -> Any:
    from ..serving.artifact import load_system

    return load_system(directory / _DSSDDI_NAME)


def _save_npz(value: Any, directory: Path) -> None:
    if not isinstance(value, Mapping):
        raise TypeError(f"npz serializer needs a dict of arrays, got {type(value)!r}")
    keys = list(value)  # insertion order is display order downstream
    safe = {f"a{i}": np.asarray(value[k]) for i, k in enumerate(keys)}
    np.savez(directory / _NPZ_NAME, **safe)  # lint: staged-write
    with open(directory / _NPZ_KEYS_NAME, "w", encoding="utf-8") as fh:  # lint: staged-write
        json.dump(keys, fh)


def _load_npz(directory: Path) -> Dict[str, np.ndarray]:
    with open(directory / _NPZ_KEYS_NAME, "r", encoding="utf-8") as fh:
        keys = json.load(fh)
    with np.load(directory / _NPZ_NAME) as loaded:
        return {k: loaded[f"a{i}"] for i, k in enumerate(keys)}


def _save_json(value: Any, directory: Path) -> None:
    with open(directory / _JSON_NAME, "w", encoding="utf-8") as fh:  # lint: staged-write
        json.dump(value, fh, indent=2, sort_keys=True)


def _load_json(directory: Path) -> Any:
    with open(directory / _JSON_NAME, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _save_pickle(value: Any, directory: Path) -> None:
    with open(directory / _PICKLE_NAME, "wb") as fh:  # lint: staged-write
        pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)


def _load_pickle(directory: Path) -> Any:
    with open(directory / _PICKLE_NAME, "rb") as fh:
        return pickle.load(fh)


_SERIALIZERS = {
    "dssddi": (_save_dssddi, _load_dssddi),
    "npz": (_save_npz, _load_npz),
    "json": (_save_json, _load_json),
    "pickle": (_save_pickle, _load_pickle),
}


def _digest_dir(directory: Path) -> str:
    """sha256 over every payload file (sorted relative path + bytes)."""
    h = hashlib.sha256()
    for path in sorted(directory.rglob("*")):
        if path.is_file() and path.name != META_NAME:
            h.update(str(path.relative_to(directory)).encode("utf-8"))
            h.update(path.read_bytes())
    return h.hexdigest()


class CacheIntegrityError(RuntimeError):
    """A cache entry's payload no longer matches its recorded digest."""


@dataclass
class CacheEntry:
    """Metadata of one materialized cache entry (from ``meta.json``)."""

    key: str
    stage: str
    serializer: str
    digest: str
    created_at: float
    size_bytes: int


class StageCache:
    """Content-addressed store of stage outputs under one root directory."""

    def __init__(self, root: Optional[PathLike] = None) -> None:
        """``root`` defaults to :func:`default_cache_dir`."""
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def stages_dir(self) -> Path:
        """Directory holding one subdirectory per cached stage output."""
        return self.root / "stages"

    def _entry_dir(self, key: str) -> Path:
        return self.stages_dir / key

    def contains(self, key: str) -> bool:
        """Whether a complete entry for ``key`` is on disk."""
        return (self._entry_dir(key) / META_NAME).is_file()

    def load(self, key: str, verify: bool = False) -> Tuple[Any, CacheEntry]:
        """Deserialize the entry for ``key`` (raises ``KeyError`` if absent).

        ``verify=True`` re-hashes the payload files and compares against
        the digest recorded at store time, raising
        :class:`CacheIntegrityError` on mismatch — the defense against a
        torn or bit-rotted entry written by a pre-atomic-write version
        (or a failing disk).  An entry that vanishes mid-load (a
        concurrent ``prune``/``clear`` renamed it away) raises
        ``KeyError``, the same as never having existed — callers already
        handle a miss by recomputing.
        """
        entry_dir = self._entry_dir(key)
        meta_path = entry_dir / META_NAME
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except FileNotFoundError:
            raise KeyError(f"no cache entry for key {key!r}") from None
        if verify:
            try:
                actual = _digest_dir(entry_dir)
            except FileNotFoundError:
                # A listed payload file vanished before it could be read:
                # the entry was renamed away (prune/clear) mid-digest.
                raise KeyError(f"cache entry {key!r} removed mid-load") from None
            if actual != meta["digest"]:
                if not meta_path.is_file():
                    # The entry was renamed away (prune/clear) between
                    # the meta read and the digest pass: that is a clean
                    # miss, not corruption.
                    raise KeyError(f"cache entry {key!r} removed mid-load")
                raise CacheIntegrityError(
                    f"cache entry {key!r} is corrupt: digest {actual[:12]} != "
                    f"recorded {meta['digest'][:12]}"
                )
        _, load = _SERIALIZERS[meta["serializer"]]
        try:
            value = load(entry_dir)
        except FileNotFoundError:
            raise KeyError(f"cache entry {key!r} removed mid-load") from None
        return value, CacheEntry(
            key=key,
            stage=meta["stage"],
            serializer=meta["serializer"],
            digest=meta["digest"],
            created_at=meta["created_at"],
            size_bytes=meta["size_bytes"],
        )

    def store(self, key: str, stage_name: str, serializer: str, value: Any) -> CacheEntry:
        """Serialize ``value`` under ``key`` atomically; returns its metadata.

        A concurrent writer that lands first wins; the loser's temp
        directory replaces nothing and is discarded.
        """
        if serializer not in _SERIALIZERS:
            raise ValueError(f"unknown serializer {serializer!r}")
        save, _ = _SERIALIZERS[serializer]
        self.stages_dir.mkdir(parents=True, exist_ok=True)
        # Reclaim temp/trash orphans a killed predecessor left behind —
        # the startup-sweep half of the atomic-write idiom.  Store runs
        # only on cache misses, so the extra globs are off the hot path.
        atomicio.sweep_orphans(self.stages_dir)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{key[:8]}-", dir=self.stages_dir)
        )
        try:
            chaos.failpoint("cache.store.setup")
            save(value, tmp)
            chaos.failpoint("cache.store.payload")
            digest = _digest_dir(tmp)
            size = sum(p.stat().st_size for p in tmp.rglob("*") if p.is_file())
            meta = {
                "stage": stage_name,
                "serializer": serializer,
                "digest": digest,
                "created_at": time.time(),
                "size_bytes": size,
            }
            with open(tmp / META_NAME, "w", encoding="utf-8") as fh:  # lint: staged-write
                json.dump(meta, fh, indent=2)
            # Durability before visibility: the rename must never
            # publish bytes still sitting only in the page cache.
            if chaos.fsync_enabled("cache.store.fsync"):
                atomicio.fsync_tree(tmp)
            final = self._entry_dir(key)
            chaos.failpoint("cache.store.rename")
            try:
                os.replace(tmp, final)
            except OSError:
                if not (final / META_NAME).is_file():
                    # Not an existing entry: a real write failure (parent
                    # removed, stray file, permissions) — surface it rather
                    # than reporting a store that is not on disk.
                    shutil.rmtree(tmp, ignore_errors=True)
                    raise
                # A complete entry already exists — a racing writer's
                # equivalent payload, or a stale entry being refreshed
                # under --force.  Replace it (rename-to-trash first, so a
                # concurrent reader never sees a half-deleted entry) and
                # return metadata describing what is actually on disk.
                atomicio.remove_dir(final)
                try:
                    os.replace(tmp, final)
                except OSError:
                    shutil.rmtree(tmp, ignore_errors=True)
                    raise
            chaos.failpoint("cache.store.after")
            atomicio.fsync_dir(self.stages_dir)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return CacheEntry(
            key=key,
            stage=stage_name,
            serializer=serializer,
            digest=digest,
            created_at=meta["created_at"],
            size_bytes=size,
        )

    def entries(self) -> List[CacheEntry]:
        """Metadata of every complete entry, newest first."""
        result: List[CacheEntry] = []
        if not self.stages_dir.is_dir():
            return result
        for entry_dir in sorted(self.stages_dir.iterdir()):
            # Dot-prefixed siblings are in-flight temps or trash staged
            # for deletion — they may hold a complete-looking payload
            # (including a meta.json) but are not committed entries.
            if entry_dir.name.startswith("."):
                continue
            meta_path = entry_dir / META_NAME
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (FileNotFoundError, ValueError):
                continue  # incomplete or vanishing entry: not listable
            result.append(
                CacheEntry(
                    key=entry_dir.name,
                    stage=meta["stage"],
                    serializer=meta["serializer"],
                    digest=meta["digest"],
                    created_at=meta["created_at"],
                    size_bytes=meta["size_bytes"],
                )
            )
        result.sort(key=lambda e: -e.created_at)
        return result

    @property
    def checkpoints_dir(self) -> Path:
        """Training-checkpoint root (one subdirectory per stage key).

        Written by checkpointed training stages (``repro run ...
        --checkpoint-every N``); cleared together with the stage outputs.
        """
        return self.root / "checkpoints"

    def clear(self) -> int:
        """Delete every cached stage output (and training checkpoint);
        returns the count of stage entries removed.

        Deletion is rename-to-trash then remove
        (:func:`repro.atomicio.remove_dir`): a reader racing this call
        sees each entry either complete or absent — never a directory
        whose ``meta.json`` still exists but whose payload is already
        gone, which a later ``contains``/``load`` would treat as a hit
        and then crash on.
        """
        count = 0
        if self.stages_dir.is_dir():
            for entry_dir in self.stages_dir.iterdir():
                if entry_dir.is_dir() and not entry_dir.name.startswith("."):
                    if atomicio.remove_dir(entry_dir):
                        count += 1
            atomicio.sweep_orphans(self.stages_dir)
        shutil.rmtree(self.checkpoints_dir, ignore_errors=True)
        return count

    def prune(self, keep_last: int) -> List[CacheEntry]:
        """Keep the ``keep_last`` newest entries per stage; drop the rest.

        "Per stage" because entries of the *same* stage are superseded
        versions (older scales/code revisions) while different stages
        are unrelated artifacts — pruning globally would let one noisy
        stage evict every other stage's only entry.  A removed entry's
        training checkpoints (``checkpoints/<key>``, same content key)
        go with it; checkpoints of keys with *no* cache entry are kept —
        they belong to interrupted fits that have not completed yet and
        are exactly what resume needs.  Returns the removed entries'
        metadata (newest first, like :meth:`entries`).
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        kept_per_stage: Dict[str, int] = {}
        removed: List[CacheEntry] = []
        for entry in self.entries():  # newest first
            kept = kept_per_stage.get(entry.stage, 0)
            if kept < keep_last:
                kept_per_stage[entry.stage] = kept + 1
                continue
            # Rename-to-trash first (see clear): a concurrent reader of
            # this entry gets a clean miss, never a half-deleted hit.
            atomicio.remove_dir(self._entry_dir(entry.key))
            shutil.rmtree(self.checkpoints_dir / entry.key, ignore_errors=True)
            removed.append(entry)
        if removed:
            atomicio.sweep_orphans(self.stages_dir)
        return removed
