"""Pipeline execution: stage scheduling, caching, and parallel experiments.

:func:`run_experiment` resolves an experiment's stage closure in
topological order and executes it stage by stage: compute the content
hash (:func:`repro.pipeline.cache.stage_key`), serve a cache hit from
disk, otherwise run the stage body and store its output.  Every stage —
hit or miss — appends a :class:`repro.pipeline.manifest.StageRecord`, and
the finished :class:`~repro.pipeline.manifest.RunManifest` plus the
rendered artifact text are written to the runs directory.

:func:`run_many` executes several experiments.  With ``jobs > 1`` it
first materializes, in dependency order, every *shared* cacheable stage
(one required by two or more of the requested experiments — e.g. the
DSSDDI(SGCN) fit that table1, table3, fig7, fig8 and fig9 all consume),
then fans the experiments out over a ``ProcessPoolExecutor``; the workers
find the shared work already cached, so the expensive fits run exactly
once regardless of parallelism.  Results come back as rendered text plus
the manifest, which is all the CLI needs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from itertools import count

from .. import atomicio
from ..obs.trace import Tracer, set_tracer
from .cache import StageCache, default_cache_dir, stage_key
from .manifest import RunManifest, StageRecord
from .registry import (
    ExperimentSpec,
    StageSpec,
    get_experiment,
    list_experiments,
    resolve,
)


@dataclass
class PipelineConfig:
    """Run-wide knobs shared by every stage of a pipeline invocation.

    Attributes:
        scale: experiment scale preset name (``tiny``/``small``/
            ``medium``/``full``), resolved through
            :meth:`repro.experiments.Scale.by_name`.
        cache_dir: stage-cache root (default ``$REPRO_CACHE_DIR`` or
            ``./.repro_cache``).
        runs_dir: manifest directory (default ``<cache_dir>/runs``).
        use_cache: ``False`` disables both lookups and writes.
        force: re-execute every stage, overwriting cached entries.
        jobs: worker processes for :func:`run_many` (1 = serial).
        model_root: artifact root used by publish stages (``repro
            publish``); ``None`` falls back to ``$REPRO_MODEL_ROOT`` or
            ``./.repro_models``.
        checkpoint_every: epoch cadence at which training stages write
            :class:`repro.train.TrainState` checkpoints under
            ``<cache_dir>/checkpoints/<stage key>``; 0 (the default)
            disables checkpointing.  A re-run of an interrupted training
            stage resumes from the newest checkpoint instead of
            refitting, and records ``resumed_from`` in its manifest.
        force_reuse: stage names exempt from ``force`` — set internally
            by :func:`run_many` so parallel workers reuse the shared
            stages the parent just force-re-executed instead of refitting
            them once per worker.
    """

    scale: str = "small"
    cache_dir: Optional[str] = None
    runs_dir: Optional[str] = None
    use_cache: bool = True
    force: bool = False
    jobs: int = 1
    model_root: Optional[str] = None
    checkpoint_every: int = 0
    force_reuse: Tuple[str, ...] = ()

    def resolved_cache_dir(self) -> Path:
        """The effective cache root as a :class:`~pathlib.Path`."""
        return Path(self.cache_dir) if self.cache_dir else default_cache_dir()

    def resolved_runs_dir(self) -> Path:
        """The effective manifest directory."""
        return Path(self.runs_dir) if self.runs_dir else self.resolved_cache_dir() / "runs"

    def resolved_model_root(self) -> Path:
        """The artifact root for publish stages (see :data:`MODEL_ROOT_ENV`)."""
        if self.model_root:
            return Path(self.model_root)
        return Path(os.environ.get(MODEL_ROOT_ENV, DEFAULT_MODEL_ROOT))


#: Environment variable overriding the default publish target.
MODEL_ROOT_ENV = "REPRO_MODEL_ROOT"
#: Default artifact root for `repro publish` (relative to the cwd).
DEFAULT_MODEL_ROOT = ".repro_models"

#: Disambiguates run ids minted by the same process in the same second.
_RUN_COUNTER = count()


class StageContext:
    """What a stage body sees: the run config and the resolved scale."""

    def __init__(self, config: PipelineConfig) -> None:
        """Resolve ``config.scale`` once; stages share the instance."""
        from ..experiments import Scale

        self.config = config
        self.scale = Scale.by_name(config.scale)
        #: Cache key of the stage currently executing (set by the runner
        #: right before each stage body runs; keys checkpoint dirs).
        self.current_stage_key: Optional[str] = None
        self._training: Optional[Dict[str, Any]] = None

    def param_value(self, name: str) -> Any:
        """Hashable value of a declared stage parameter.

        ``"scale"`` resolves to the preset's full field dict (so editing
        a preset's epochs invalidates dependent cache entries, not just
        renaming it).  Unknown names raise ``KeyError``.
        """
        if name == "scale":
            return asdict(self.scale)
        raise KeyError(f"unknown stage parameter {name!r}")

    def checkpoint_dir(self) -> Optional[Path]:
        """Checkpoint root for the executing training stage, or ``None``.

        Only training stages that opt in use this; it is keyed by the
        stage's content-hash cache key, so a re-run with identical
        inputs finds its own checkpoints (and resumes) while any change
        to scale, code version or inputs lands in a fresh directory.
        Returns ``None`` unless ``config.checkpoint_every > 0``.
        """
        if self.config.checkpoint_every <= 0 or self.current_stage_key is None:
            return None
        return self.config.resolved_cache_dir() / "checkpoints" / self.current_stage_key

    def record_training(self, summary: Dict[str, Any]) -> None:
        """Attach per-module convergence metadata to this stage's record.

        Training stages call this with e.g.
        ``FitReport.training_summary()``; the runner copies it onto the
        manifest's :class:`~repro.pipeline.manifest.StageRecord`, where
        ``repro report`` surfaces it.
        """
        self._training = summary

    def take_training(self) -> Optional[Dict[str, Any]]:
        """Pop the recorded training metadata (runner use)."""
        summary, self._training = self._training, None
        return summary


def _ensure_registered() -> None:
    """Populate the registry (stage registration happens at import)."""
    from .. import experiments  # noqa: F401  (imported for side effect)


def _execute_stages(
    order: Sequence[StageSpec],
    targets: Set[str],
    ctx: StageContext,
    cache: StageCache,
    config: PipelineConfig,
    manifest: Optional[RunManifest] = None,
    load_targets: bool = True,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Materialize the ``targets`` stages of ``order`` (topo-sorted).

    With ``load_targets=False`` (the pre-warm path) a target that is
    already cached is left on disk unread — only presence matters there.

    Three passes: (1) compute every stage's content key and whether it
    would execute (miss / forced / uncacheable); (2) walk backwards to
    find which stage *values* are actually needed — a target's, plus the
    inputs of anything that will execute.  A fully-warm run therefore
    loads only the terminal artifact and skips upstream work entirely:
    cohorts are not regenerated and cached fits are not deserialized
    just to be discarded; (3) execute/load in dependency order,
    appending a :class:`StageRecord` per stage when a manifest is given
    (skipped-but-cached stages record as hits with ~0 seconds).

    Returns the loaded/computed values keyed by stage name.
    """
    keys: Dict[str, str] = {}
    will_execute: Dict[str, bool] = {}
    for spec in order:
        params = {p: ctx.param_value(p) for p in spec.params}
        key = stage_key(spec, params, [keys[i] for i in spec.inputs])
        keys[spec.name] = key
        can_reuse = (
            config.use_cache
            and spec.cacheable
            and (not config.force or spec.name in config.force_reuse)
        )
        will_execute[spec.name] = not (can_reuse and cache.contains(key))

    needed: Set[str] = (
        set(targets) if load_targets else {t for t in targets if will_execute[t]}
    )
    for spec in reversed(order):
        if spec.name in needed and will_execute[spec.name]:
            needed.update(spec.inputs)

    values: Dict[str, Any] = {}
    for spec in order:
        key = keys[spec.name]
        can_cache = config.use_cache and spec.cacheable
        started = time.perf_counter()
        hit = not will_execute[spec.name]
        digest: Optional[str] = None
        training: Optional[Dict[str, Any]] = None
        # One span per materialized stage (skipped-but-cached stages stay
        # silent).  Activating the span makes it the parent of anything a
        # stage body traces — training epoch spans nest under their stage.
        span_cm = (
            tracer.span(
                f"stage:{spec.name}",
                attrs={"key": key[:12], "cache_hit": hit},
            )
            if tracer is not None and spec.name in needed
            else nullcontext()
        )
        with span_cm:
            if spec.name not in needed:
                pass  # subsumed by a cached consumer: no execute, no load
            elif hit:
                value, entry = cache.load(key)
                digest = entry.digest
                values[spec.name] = value
            else:
                ctx.current_stage_key = key
                try:
                    value = spec.fn(ctx, *(values[i] for i in spec.inputs))
                finally:
                    training = ctx.take_training()
                    ctx.current_stage_key = None
                if can_cache:
                    digest = cache.store(key, spec.name, spec.serializer, value).digest
                values[spec.name] = value
        if manifest is not None:
            manifest.stages.append(
                StageRecord(
                    stage=spec.name,
                    key=key,
                    cache_hit=hit,
                    seconds=time.perf_counter() - started,
                    cacheable=spec.cacheable,
                    serializer=spec.serializer,
                    digest=digest,
                    training=training,
                )
            )
    return values


def _new_manifest(
    name: str, title: str, ctx: StageContext, config: PipelineConfig
) -> RunManifest:
    """A fresh run manifest (shared by experiment and stage runs)."""
    run_id = (
        f"{name}-{time.strftime('%Y%m%d-%H%M%S')}"
        f"-{os.getpid()}-{next(_RUN_COUNTER):03d}"
    )
    return RunManifest(
        run_id=run_id,
        experiment=name,
        title=title,
        scale=config.scale,
        seed=ctx.scale.seed,
        config={"scale": asdict(ctx.scale), "force": config.force,
                "use_cache": config.use_cache,
                "checkpoint_every": config.checkpoint_every},
    )


def run_experiment(
    name: str,
    config: Optional[PipelineConfig] = None,
    save_manifest: bool = True,
) -> Tuple[Any, RunManifest]:
    """Run one experiment through the cached pipeline.

    Returns ``(result, manifest)`` where ``result`` is the terminal
    stage's output (a ``Table*Result`` / ``Fig*Result``).  The manifest —
    and the rendered result text — are written to the runs directory
    unless ``save_manifest`` is false.
    """
    _ensure_registered()
    config = config or PipelineConfig()
    spec = get_experiment(name)
    ctx = StageContext(config)
    cache = StageCache(config.resolved_cache_dir())
    manifest = _new_manifest(name, spec.title, ctx, config)
    run_id = manifest.run_id

    # A run traces itself unconditionally: a handful of stage spans per
    # run costs nothing, and the manifest becomes a `repro trace` input.
    # Installing the tracer as the process global for the duration lets
    # stage bodies (training's TraceCallback) join the same trace.
    tracer = Tracer(
        sample=1.0, ring_size=2048, seed=ctx.scale.seed, service="repro-pipeline"
    )
    previous = set_tracer(tracer)
    try:
        with tracer.span(
            f"run:{name}", attrs={"run_id": run_id, "scale": config.scale}
        ):
            values = _execute_stages(
                resolve(spec.stage), {spec.stage}, ctx, cache, config, manifest,
                tracer=tracer,
            )
    finally:
        set_tracer(previous)
    result = values[spec.stage]
    manifest.finish()
    manifest.trace = tracer.drain()
    if save_manifest:
        runs_dir = config.resolved_runs_dir()
        manifest.save(runs_dir)
        rendered = render_result(spec, result)
        atomicio.atomic_write_text(
            runs_dir / f"{run_id}.txt", rendered + "\n", site="manifest.write"
        )
    return result, manifest


def run_stage(
    name: str,
    config: Optional[PipelineConfig] = None,
    save_manifest: bool = False,
) -> Any:
    """Materialize one stage (and its dependency closure) by name.

    The stage-level sibling of :func:`run_experiment` for targets that
    are not paper artifacts — e.g. ``chronic.publish``, which ships the
    cached DSSDDI(SGCN) fit into the serving registry, or a bare
    ``chronic.fit.*`` run driven by ``repro run`` with checkpointing.
    Cached inputs are reused exactly as in an experiment run.  With
    ``save_manifest`` a run manifest (including any per-stage training
    metadata) is written to the runs directory, which is what the CI
    resume smoke asserts ``resumed_from`` against.  Returns the stage's
    output value.
    """
    _ensure_registered()
    config = config or PipelineConfig()
    ctx = StageContext(config)
    cache = StageCache(config.resolved_cache_dir())
    manifest: Optional[RunManifest] = None
    tracer: Optional[Tracer] = None
    if save_manifest:
        manifest = _new_manifest(name, f"stage {name}", ctx, config)
        tracer = Tracer(
            sample=1.0, ring_size=2048, seed=ctx.scale.seed,
            service="repro-pipeline",
        )
    if tracer is not None:
        previous = set_tracer(tracer)
        try:
            with tracer.span(f"run:{name}", attrs={"scale": config.scale}):
                values = _execute_stages(
                    resolve(name), {name}, ctx, cache, config, manifest,
                    tracer=tracer,
                )
        finally:
            set_tracer(previous)
    else:
        values = _execute_stages(resolve(name), {name}, ctx, cache, config, manifest)
    if manifest is not None:
        manifest.finish()
        manifest.trace = tracer.drain() if tracer is not None else None
        manifest.save(config.resolved_runs_dir())
    return values[name]


def render_result(spec: ExperimentSpec, result: Any) -> str:
    """Title plus the result's own ``render()`` text."""
    body = result.render() if hasattr(result, "render") else str(result)
    return f"{spec.title}\n{body}"


def shared_stages(names: Sequence[str]) -> List[StageSpec]:
    """Cacheable stages required by more than one of ``names``, in
    dependency order (the pre-warm set for parallel runs)."""
    _ensure_registered()
    counts: Dict[str, int] = {}
    order: List[StageSpec] = []
    for name in names:
        for stage in resolve(get_experiment(name).stage):
            if stage.name not in counts:
                order.append(stage)
            counts[stage.name] = counts.get(stage.name, 0) + 1
    return [s for s in order if counts[s.name] > 1 and s.cacheable]


def warm_shared_stages(names: Sequence[str], config: PipelineConfig) -> List[str]:
    """Materialize every shared cacheable stage of ``names`` in the cache.

    Executes (in the calling process, dependency order) each stage that
    at least two requested experiments consume, so parallel workers hit
    the cache instead of fitting the same model once per process.
    Returns the warmed stage names.
    """
    shared = shared_stages(names)
    if not shared:
        return []
    # The union closure of the shared stages: their own inputs (shared or
    # not) must be available to compute them.  Concatenating the per-target
    # resolutions first-seen keeps topological validity, since each
    # resolution already lists a stage after its dependencies.
    closure: List[StageSpec] = []
    seen: set = set()
    for target in shared:
        for spec in resolve(target.name):
            if spec.name not in seen:
                seen.add(spec.name)
                closure.append(spec)
    _execute_stages(
        closure,
        {s.name for s in shared},
        StageContext(config),
        StageCache(config.resolved_cache_dir()),
        config,
        load_targets=False,
    )
    return [s.name for s in shared]


def _run_one_worker(name: str, config: PipelineConfig) -> Tuple[str, str, Dict[str, Any]]:
    """Process-pool entry: run one experiment, ship text + manifest back."""
    result, manifest = run_experiment(name, config)
    spec = get_experiment(name)
    return name, render_result(spec, result), manifest.to_dict()


def run_many(
    names: Sequence[str],
    config: Optional[PipelineConfig] = None,
) -> List[Tuple[str, str, RunManifest]]:
    """Run several experiments, in parallel when ``config.jobs > 1``.

    Returns ``[(name, rendered_text, manifest), ...]`` in the requested
    order.  Multi-experiment runs pre-warm the shared stages first (see
    :func:`warm_shared_stages`); with ``jobs > 1`` the experiments then
    fan out one per worker process.  Results and manifests are identical
    to a serial run because every stage is deterministic and the cache
    is content-addressed.
    """
    _ensure_registered()
    config = config or PipelineConfig()
    for name in names:
        get_experiment(name)  # fail fast on unknown names

    run_config = config
    if config.use_cache and len(names) > 1:
        warmed = warm_shared_stages(names, config)
        if config.force and warmed:
            # The shared stages were just force-re-executed once, above;
            # exempt exactly those from force in the per-experiment runs
            # (serial or worker) so each run reuses the fresh entries
            # instead of refitting them — DSSDDI(SGCN) is fitted once per
            # scale, not once per dependent experiment.  Everything else
            # still re-executes, honoring --force.
            run_config = replace(
                config, force_reuse=tuple(set(config.force_reuse) | set(warmed))
            )

    if config.jobs <= 1 or len(names) <= 1:
        out: List[Tuple[str, str, RunManifest]] = []
        for name in names:
            result, manifest = run_experiment(name, run_config)
            out.append((name, render_result(get_experiment(name), result), manifest))
        return out

    results: Dict[str, Tuple[str, RunManifest]] = {}
    with ProcessPoolExecutor(max_workers=min(config.jobs, len(names))) as pool:
        futures = [pool.submit(_run_one_worker, name, run_config) for name in names]
        for future in futures:
            name, rendered, manifest_dict = future.result()
            results[name] = (rendered, RunManifest.from_dict(manifest_dict))
    return [(name, results[name][0], results[name][1]) for name in names]


def all_experiment_names() -> List[str]:
    """Registered experiment names in the paper's presentation order."""
    _ensure_registered()
    preferred = ["fig2", "fig3", "table1", "table2", "table3", "fig7", "fig8", "table4", "fig9"]
    known = [spec.name for spec in list_experiments()]
    ordered = [n for n in preferred if n in known]
    ordered.extend(n for n in known if n not in ordered)
    return ordered
