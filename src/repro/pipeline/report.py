"""``repro report``: render run manifests into a markdown results report.

The report has four parts: a summary table over every run found in the
runs directory (experiment, scale, when, duration, cache hits), a
per-run stage breakdown (cache key, hit/miss, seconds, digest prefix),
the run's span-tree waterfall (when the manifest carries a ``trace``
section from :mod:`repro.obs`), and — when the runner saved one — the
rendered paper artifact itself in a fenced code block.  Pointing the command at a fresh runs directory
after ``repro run all`` yields a self-contained record of the whole
reproduction: what ran, how long each phase took, what was reused, and
the resulting tables.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .manifest import load_manifests

PathLike = Union[str, Path]


def _fmt_when(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.0f}ms"


def _training_lines(record) -> List[str]:
    """Markdown sub-table for one training stage's convergence record.

    One row per trained module: epochs run (with the early-stop epoch
    when a callback cut the run short), the final loss, the wall time,
    the checkpoint epoch a resumed run continued from, and the number of
    checkpoints written (with the newest checkpoint's digest prefix).
    """
    lines = [
        f"Training — `{record.stage}`:",
        "",
        "| Module | Epochs | Final loss | Early stop | Resumed from "
        "| Checkpoints | Wall |",
        "|---|---|---|---|---|---|---|",
    ]
    for module, info in sorted(record.training.items()):
        epochs = info.get("total_epochs", "?")
        final_loss = info.get("final_loss")
        loss_text = f"{final_loss:.6f}" if final_loss is not None else "-"
        stopped = (
            f"epoch {info['stopped_epoch']}"
            if info.get("stopped_early") and info.get("stopped_epoch")
            else "no"
        )
        resumed = (
            f"epoch {info['resumed_from']}"
            if info.get("resumed_from") is not None
            else "-"
        )
        checkpoints = str(info.get("checkpoints", 0))
        digest = info.get("checkpoint_digest")
        if digest:
            checkpoints += f" (`{digest[:12]}`)"
        wall = _fmt_seconds(info.get("wall_seconds", 0.0))
        lines.append(
            f"| {module} | {epochs} | {loss_text} | {stopped} "
            f"| {resumed} | {checkpoints} | {wall} |"
        )
    lines.append("")
    return lines


def _trace_lines(spans: List[Dict[str, Any]]) -> List[str]:
    """ASCII waterfall of one run's span tree (manifest ``trace``).

    Each row is indented by depth and shows the span's offset from the
    root, its duration, and any chaos annotations it carries.  Spans
    whose parent fell off the tracer ring render as extra roots.
    """
    by_id = {s["span"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent not in by_id:
            parent = None  # orphaned (parent trimmed from the ring)
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s["start"])
    roots = children.get(None, [])
    if not roots:
        return []
    origin = roots[0]["start"]
    lines = ["Trace:", "", "```"]

    def emit(span: Dict[str, Any], depth: int) -> None:
        offset_ms = (span["start"] - origin) * 1e3
        dur_ms = (span.get("dur_s") or 0.0) * 1e3
        chaos_hits = sum(
            1 for e in span.get("events", []) if e.get("name") == "chaos"
        )
        suffix = f"  [chaos x{chaos_hits}]" if chaos_hits else ""
        lines.append(
            f"{'  ' * depth}{span['name']}  "
            f"+{offset_ms:.1f}ms  {dur_ms:.1f}ms{suffix}"
        )
        for child in children.get(span["span"], []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    lines += ["```", ""]
    return lines


def render_report(
    runs_dir: PathLike, include_outputs: bool = True
) -> str:
    """Markdown report over every manifest under ``runs_dir``."""
    manifests = load_manifests(runs_dir)
    lines: List[str] = ["# Experiment pipeline report", ""]
    if not manifests:
        lines.append(f"No run manifests found under `{runs_dir}`.")
        return "\n".join(lines)

    lines += [
        f"{len(manifests)} run(s) under `{runs_dir}`.",
        "",
        "| Run | Experiment | Scale | Started | Duration | Stages (cached) |",
        "|---|---|---|---|---|---|",
    ]
    for m in manifests:
        lines.append(
            f"| `{m.run_id}` | {m.experiment} | {m.scale} "
            f"| {_fmt_when(m.started_at)} | {_fmt_seconds(m.total_seconds)} "
            f"| {len(m.stages)} ({m.cache_hits} cached) |"
        )
    lines.append("")

    for m in manifests:
        lines += [
            f"## {m.title}",
            "",
            f"Run `{m.run_id}` — scale `{m.scale}`, seed {m.seed}, "
            f"python {m.versions.get('python', '?')}, "
            f"numpy {m.versions.get('numpy', '?')}, "
            f"repro {m.versions.get('repro', '?')}.",
            "",
            "| Stage | Cache | Seconds | Key | Digest |",
            "|---|---|---|---|---|",
        ]
        for s in m.stages:
            status = "hit" if s.cache_hit else ("miss" if s.cacheable else "uncached")
            digest = (s.digest or "")[:12] or "-"
            lines.append(
                f"| `{s.stage}` | {status} | {s.seconds:.3f} "
                f"| `{s.key[:12]}` | `{digest}` |"
            )
        lines.append("")
        for s in m.stages:
            if s.training:
                lines += _training_lines(s)
        if m.trace:
            lines += _trace_lines(m.trace)
        if include_outputs:
            output_path = Path(runs_dir) / f"{m.run_id}.txt"
            if output_path.is_file():
                lines += ["```", output_path.read_text(encoding="utf-8").rstrip(), "```", ""]
    return "\n".join(lines)
