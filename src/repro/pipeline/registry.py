"""Stage and experiment registry: the declarative layer of the pipeline.

A *stage* is one named, versioned unit of work (generate a cohort, fit a
model, compute a metric table) with declared inputs (other stages) and a
declared parameter subset (which run-configuration knobs affect its
output).  An *experiment* is a named pointer at the stage whose output is
a paper artifact (a ``Table*Result`` / ``Fig*Result`` with a ``render()``
method) plus its display title.

Registration happens at import time through the :func:`stage` and
:func:`experiment` decorators — importing :mod:`repro.experiments`
populates the registry with every table and figure of the paper.  The
scheduler (:mod:`repro.pipeline.runner`) consumes the registry through
:func:`resolve`, which returns the dependency-closed, topologically
ordered stage list for an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

#: Serializer names understood by :mod:`repro.pipeline.cache`.
SERIALIZERS = ("pickle", "json", "npz", "dssddi")


@dataclass(frozen=True)
class StageSpec:
    """One registered pipeline stage.

    Attributes:
        name: globally unique dotted name (``"chronic.fit.dssddi_sgcn"``).
        fn: the stage body, called as ``fn(ctx, *input_values)`` where
            ``ctx`` is a :class:`repro.pipeline.runner.StageContext` and
            the input values arrive in ``inputs`` order.
        inputs: names of the stages whose outputs this stage consumes.
        params: run-configuration knobs that affect the output (today:
            ``"scale"``); they are resolved to concrete values and hashed
            into the cache key, so e.g. ``fig3`` (``params=()``) shares
            one cache entry across every scale.
        version: bump to invalidate cached outputs after a code change.
        serializer: cache representation — ``"dssddi"`` reuses the
            serving artifact format (`manifest.json` + `arrays.npz`),
            ``"npz"`` a named-array archive, ``"json"`` plain JSON,
            ``"pickle"`` the fallback for result dataclasses.
        cacheable: ``False`` for stages that are cheaper to recompute
            than to deserialize (the seeded cohort generators); their
            key still exists so dependents hash correctly.
    """

    name: str
    fn: Callable
    inputs: Tuple[str, ...] = ()
    params: Tuple[str, ...] = ("scale",)
    version: int = 1
    serializer: str = "pickle"
    cacheable: bool = True


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: a paper artifact built by a stage.

    ``stage`` names the terminal stage; its output must provide a
    ``render() -> str`` method, which the CLI prints under ``title``.
    """

    name: str
    stage: str
    title: str
    description: str = ""


_STAGES: Dict[str, StageSpec] = {}
_EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def stage(
    name: str,
    inputs: Sequence[str] = (),
    params: Sequence[str] = ("scale",),
    version: int = 1,
    serializer: str = "pickle",
    cacheable: bool = True,
) -> Callable[[Callable], Callable]:
    """Register the decorated function as a pipeline stage.

    The function itself is returned unchanged, so modules can keep
    calling it directly (the legacy ``run_*`` entry points do).
    """
    if serializer not in SERIALIZERS:
        raise ValueError(f"serializer must be one of {SERIALIZERS}, got {serializer!r}")

    def decorate(fn: Callable) -> Callable:
        if name in _STAGES:
            raise ValueError(f"stage {name!r} is already registered")
        _STAGES[name] = StageSpec(
            name=name,
            fn=fn,
            inputs=tuple(inputs),
            params=tuple(params),
            version=version,
            serializer=serializer,
            cacheable=cacheable,
        )
        return fn

    return decorate


def experiment(
    name: str, stage: str, title: str, description: str = ""
) -> Callable[[Callable], Callable]:
    """Register the decorated function's stage as experiment ``name``.

    Usable on the stage function itself (apply above/below :func:`stage`)
    or standalone via :func:`register_experiment`.
    """

    def decorate(fn: Callable) -> Callable:
        register_experiment(name, stage, title, description)
        return fn

    return decorate


def register_experiment(
    name: str, stage: str, title: str, description: str = ""
) -> ExperimentSpec:
    """Non-decorator experiment registration (see :func:`experiment`)."""
    if name in _EXPERIMENTS:
        raise ValueError(f"experiment {name!r} is already registered")
    spec = ExperimentSpec(name=name, stage=stage, title=title, description=description)
    _EXPERIMENTS[name] = spec
    return spec


def get_stage(name: str) -> StageSpec:
    """Look up one stage; raises ``KeyError`` with the known names."""
    try:
        return _STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r} (known: {sorted(_STAGES)})"
        ) from None


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment; raises ``KeyError`` with the known names."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r} (known: {sorted(_EXPERIMENTS)})"
        ) from None


def list_stages() -> List[StageSpec]:
    """Every registered stage, sorted by name."""
    return [_STAGES[name] for name in sorted(_STAGES)]


def list_experiments() -> List[ExperimentSpec]:
    """Every registered experiment, sorted by name."""
    return [_EXPERIMENTS[name] for name in sorted(_EXPERIMENTS)]


def resolve(stage_name: str) -> List[StageSpec]:
    """Dependency closure of ``stage_name`` in topological order.

    Inputs always precede their consumers; ties break by registration
    name so the order is deterministic.  Raises on unknown inputs and on
    dependency cycles.
    """
    order: List[StageSpec] = []
    seen: Dict[str, str] = {}  # name -> "visiting" | "done"

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        state = seen.get(name)
        if state == "done":
            return
        if state == "visiting":
            cycle = " -> ".join(chain + (name,))
            raise ValueError(f"stage dependency cycle: {cycle}")
        seen[name] = "visiting"
        spec = get_stage(name)
        for dep in sorted(spec.inputs):
            visit(dep, chain + (name,))
        seen[name] = "done"
        order.append(spec)

    visit(stage_name, ())
    return order


def unregister(*names: str) -> None:
    """Remove specific stages/experiments (test isolation only).

    Python caches module imports, so a blanket "clear everything" would
    permanently lose the registrations made when :mod:`repro.experiments`
    was first imported; tests therefore register uniquely-named specs and
    remove exactly those.
    """
    for name in names:
        _STAGES.pop(name, None)
        _EXPERIMENTS.pop(name, None)
