"""Per-run JSON manifests: the reproducibility record of a pipeline run.

Every ``repro run`` of one experiment writes ``<runs_dir>/<run_id>.json``
(plus ``<run_id>.txt`` with the rendered artifact).  The manifest captures
everything needed to audit or replay the run:

* the experiment name and title, the run id, wall-clock start/end;
* the resolved configuration (scale preset fields, cache settings) and
  the seed the scale pins;
* library versions (python, numpy, repro) — drift shows up here first;
* one record per executed stage: its cache key, whether it was a cache
  hit, the seconds it took, and the sha256 digest of its serialized
  output, so two runs can be compared stage by stage ("the second run's
  fit stage was a hit and took 0.01s instead of 40s").

``repro report`` (:mod:`repro.pipeline.report`) renders a directory of
manifests into one markdown results report.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

MANIFEST_SCHEMA_VERSION = 1


def library_versions() -> Dict[str, str]:
    """The version triple recorded in every manifest."""
    import numpy

    from .. import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro_version,
    }


@dataclass
class StageRecord:
    """Execution record of one stage within a run."""

    stage: str
    key: str
    cache_hit: bool
    seconds: float
    cacheable: bool
    serializer: str
    digest: Optional[str] = None
    #: Per-module convergence metadata reported by training stages via
    #: ``StageContext.record_training`` — e.g. ``{"md": {"epochs_run":
    #: 40, "final_loss": ..., "stopped_epoch": ..., "resumed_from": 12,
    #: "checkpoints": 3, "checkpoint_digest": "..."}}``.  ``None`` for
    #: non-training stages, cache hits, and pre-training-engine runs.
    training: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageRecord":
        """Inverse of :meth:`to_dict` (tolerates pre-``training`` files)."""
        return cls(**data)


@dataclass
class RunManifest:
    """The full record of one experiment run (see module docstring)."""

    run_id: str
    experiment: str
    title: str
    scale: str
    seed: int
    config: Dict[str, Any]
    versions: Dict[str, str] = field(default_factory=library_versions)
    started_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    stages: List[StageRecord] = field(default_factory=list)
    #: Finished ``repro.obs`` span dicts for the run (root ``run:<name>``
    #: plus one ``stage:<name>`` child per executed/loaded stage, and any
    #: training epoch spans) — ``repro report`` renders the waterfall and
    #: ``repro trace`` reads manifests directly.  ``None`` for manifests
    #: written before tracing existed.
    trace: Optional[List[Dict[str, Any]]] = None
    schema_version: int = MANIFEST_SCHEMA_VERSION

    @property
    def total_seconds(self) -> float:
        """Wall-clock duration (0.0 while the run is still open)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def cache_hits(self) -> int:
        """Number of stages served from the cache."""
        return sum(1 for s in self.stages if s.cache_hit)

    def finish(self) -> "RunManifest":
        """Stamp the end time; returns self for chaining."""
        self.finished_at = time.time()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (stages included)."""
        data = asdict(self)
        data["total_seconds"] = self.total_seconds
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        data = dict(data)
        data.pop("total_seconds", None)
        stages = [StageRecord.from_dict(s) for s in data.pop("stages", [])]
        return cls(stages=stages, **data)

    def save(self, runs_dir: PathLike) -> Path:
        """Write ``<runs_dir>/<run_id>.json`` crash-safely; returns the path.

        Manifests are the audit trail of a run — a half-written one
        would poison ``load_manifests`` for every later ``repro
        report``, so the write goes through the shared atomic idiom
        (:func:`repro.atomicio.atomic_write_json`, site
        ``manifest.write``).
        """
        from .. import atomicio

        runs_dir = Path(runs_dir)
        runs_dir.mkdir(parents=True, exist_ok=True)
        atomicio.sweep_orphans(runs_dir)
        return atomicio.atomic_write_json(
            runs_dir / f"{self.run_id}.json",
            self.to_dict(),
            site="manifest.write",
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        """Read one manifest file back."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def load_manifests(runs_dir: PathLike) -> List[RunManifest]:
    """Every manifest under ``runs_dir``, oldest first."""
    runs_dir = Path(runs_dir)
    if not runs_dir.is_dir():
        return []
    manifests = [RunManifest.load(p) for p in sorted(runs_dir.glob("*.json"))]
    manifests.sort(key=lambda m: m.started_at)
    return manifests
