"""HTTP transport for the gateway: a stdlib threaded JSON server.

A deliberately thin shim: every route parses JSON, calls the matching
:class:`repro.server.app.GatewayApp` method, and serializes the result.
Using ``http.server.ThreadingHTTPServer`` keeps the gateway free of
third-party dependencies; each connection gets a daemon thread, and all
the concurrency-sensitive work (batching, hot-swap, metrics) lives in
``GatewayApp``, which is built for exactly that.

Usage::

    server = build_server(app, host="127.0.0.1", port=8035)
    serve_forever(server)          # blocking; or server in a thread

``build_server`` binds immediately (port 0 picks a free port — tests use
this), so by the time it returns, ``/healthz`` is reachable.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Tuple

from .app import GatewayApp, RequestError, parse_json_body

#: Hard cap on accepted request bodies (1 MiB is ~1300 patient rows).
MAX_BODY_BYTES = 1 << 20


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Route table of the gateway's HTTP surface."""

    #: Set by :func:`build_server`.
    app: GatewayApp = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    #: Micro-batched request/response round-trips are latency-critical;
    #: leaving Nagle on costs a delayed-ACK stall (~40 ms) per request.
    disable_nagle_algorithm = True
    #: Quiet by default; ``build_server(verbose=True)`` restores logging.
    verbose = False

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        """Dispatch ``GET`` routes (healthz, metrics, versions)."""
        try:
            if self.path == "/healthz":
                self._send_json(*self.app.healthz())
            elif self.path == "/metrics":
                self._send_text(200, self.app.metrics_text())
            elif self.path == "/v1/versions":
                self._send_json(*self.app.versions())
            else:
                self._send_json(
                    404, {"error": f"no such endpoint: GET {self.path}"}
                )
        except Exception as exc:  # never drop the connection responseless
            self._send_internal_error(exc)

    def do_POST(self) -> None:  # noqa: N802  (http.server API)
        """Dispatch ``POST`` routes (suggest, explain, reload)."""
        try:
            try:
                # Drain the body before routing, whatever the outcome — a
                # keep-alive connection desyncs if unread bytes linger.
                raw = self._read_body()
            except RequestError as exc:
                self._send_json(400, {"error": str(exc)})
                self.close_connection = True
                return
            if self.path == "/-/reload":
                self._send_json(*self.app.reload())  # body intentionally unused
                return
            routes = {
                "/v1/suggest": self.app.suggest,
                "/v1/explain": self.app.explain,
            }
            handler = routes.get(self.path)
            if handler is None:
                self._send_json(
                    404, {"error": f"no such endpoint: POST {self.path}"}
                )
                return
            try:
                body = parse_json_body(raw)
            except RequestError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            status, response = handler(body)
            self._send_json(status, response)
        except Exception as exc:  # never drop the connection responseless
            self._send_internal_error(exc)

    # ------------------------------------------------------------------
    def _send_internal_error(self, exc: Exception) -> None:
        """Best-effort 500: the client sees an error, not a reset."""
        try:
            self._send_json(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
        except OSError:
            pass  # headers already sent or socket gone
        self.close_connection = True

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise RequestError("invalid Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        return self.rfile.read(length) if length else b""

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        raw = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, raw, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _send_bytes(self, status: int, raw: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def log_message(self, fmt: str, *args) -> None:
        """Per-request access logging, silenced unless ``verbose``."""
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)


def build_server(
    app: GatewayApp,
    host: str = "127.0.0.1",
    port: int = 8035,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server serving ``app`` (port 0 = ephemeral)."""
    handler = type(
        "BoundGatewayHandler",
        (GatewayRequestHandler,),
        {"app": app, "verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_in_thread(
    server: ThreadingHTTPServer,
) -> Tuple[threading.Thread, Callable[[], None]]:
    """Run ``server.serve_forever`` on a daemon thread; returns a stopper.

    Tests and the load generator use this to host a live gateway inside
    one process::

        server = build_server(app, port=0)
        thread, stop = serve_in_thread(server)
        ...
        stop()
    """
    thread = threading.Thread(
        target=server.serve_forever, name="repro-gateway-http", daemon=True
    )
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    return thread, stop
