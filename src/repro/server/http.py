"""HTTP transport for the gateway: a stdlib threaded JSON server.

A deliberately thin shim: every route parses JSON, calls the matching
:class:`repro.server.app.GatewayApp` method, and serializes the result.
Using ``http.server.ThreadingHTTPServer`` keeps the gateway free of
third-party dependencies; each connection gets a daemon thread, and all
the concurrency-sensitive work (batching, hot-swap, metrics) lives in
``GatewayApp``, which is built for exactly that.

Usage::

    server = build_server(app, host="127.0.0.1", port=8035)
    serve_forever(server)          # blocking; or server in a thread

``build_server`` binds immediately (port 0 picks a free port — tests use
this), so by the time it returns, ``/healthz`` is reachable.  Passing an
already-bound listening socket via ``sock=`` skips the bind: the pre-fork
worker pool (:mod:`repro.server.pool`) creates one socket in the parent
and every forked worker serves it, so the kernel load-balances accepts
across workers and the listener never goes down while a worker restarts.

Graceful drain: every server carries a :class:`RequestTracker` counting
in-flight request dispatches.  A worker shutting down sets
``server.draining = True`` (handlers then close their connection after
the current response instead of keeping it alive), stops the accept loop,
and waits on ``tracker.wait_idle`` so every request that already arrived
gets its response before the process exits.
"""

from __future__ import annotations

import json
import socket as socket_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs.trace import TRACE_HEADER
from .app import GatewayApp, RequestError, parse_json_body

#: Hard cap on accepted request bodies (1 MiB is ~1300 patient rows).
MAX_BODY_BYTES = 1 << 20


class RequestTracker:
    """Count in-flight request dispatches; support a bounded idle wait.

    ``ThreadingHTTPServer`` runs daemon handler threads and never joins
    them, so "shut down gracefully" needs its own bookkeeping: handlers
    bracket each dispatch with :meth:`begin`/:meth:`end`, and the drain
    path blocks on :meth:`wait_idle` until every accepted request has
    been answered (or the timeout expires).
    """

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._inflight = 0
        self.total = 0

    def begin(self) -> None:
        """One request dispatch started."""
        with self._cv:
            self._inflight += 1
            self.total += 1

    def end(self) -> None:
        """One request dispatch finished (response written or failed)."""
        with self._cv:
            self._inflight -= 1
            self._cv.notify_all()

    @property
    def inflight(self) -> int:
        """Requests currently being dispatched."""
        with self._cv:
            return self._inflight

    def wait_idle(self, timeout: float) -> bool:
        """Block until no dispatch is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Route table of the gateway's HTTP surface."""

    #: Set by :func:`build_server`.
    app: GatewayApp = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    #: Micro-batched request/response round-trips are latency-critical;
    #: leaving Nagle on costs a delayed-ACK stall (~40 ms) per request.
    disable_nagle_algorithm = True
    #: Quiet by default; ``build_server(verbose=True)`` restores logging.
    verbose = False

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        """Dispatch ``GET`` routes (healthz, metrics, versions)."""
        tracker = getattr(self.server, "request_tracker", None)
        if tracker is not None:
            tracker.begin()
        try:
            parts = urlsplit(self.path)
            if parts.path == "/healthz":
                self._send_json(*self.app.healthz())
            elif parts.path == "/metrics":
                self._send_text(200, self.app.metrics_text())
            elif parts.path == "/v1/versions":
                self._send_json(*self.app.versions())
            elif parts.path == "/v1/trace":
                query = {
                    key: values[-1]
                    for key, values in parse_qs(parts.query).items()
                }
                self._send_json(*self.app.trace_payload(query))
            else:
                self._send_json(
                    404, {"error": f"no such endpoint: GET {self.path}"}
                )
        except Exception as exc:  # never drop the connection responseless
            self._send_internal_error(exc)
        finally:
            if tracker is not None:
                tracker.end()
            if getattr(self.server, "draining", False):
                self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802  (http.server API)
        """Dispatch ``POST`` routes (suggest, explain, reload)."""
        tracker = getattr(self.server, "request_tracker", None)
        if tracker is not None:
            tracker.begin()
        try:
            try:
                # Drain the body before routing, whatever the outcome — a
                # keep-alive connection desyncs if unread bytes linger.
                raw = self._read_body()
            except RequestError as exc:
                self._send_json(400, {"error": str(exc)})
                self.close_connection = True
                return
            if self.path == "/-/reload":
                self._send_json(*self.app.reload())  # body intentionally unused
                return
            routes = {
                "/v1/suggest": self.app.suggest,
                "/v1/explain": self.app.explain,
            }
            handler = routes.get(self.path)
            if handler is None:
                self._send_json(
                    404, {"error": f"no such endpoint: POST {self.path}"}
                )
                return
            content_type = (self.headers.get("Content-Type") or "").strip()
            if content_type and content_type.split(";")[0].strip().lower() != (
                "application/json"
            ):
                self._send_json(
                    415,
                    {
                        "error": f"unsupported Content-Type {content_type!r} "
                        "(expected application/json)"
                    },
                )
                return
            try:
                body = parse_json_body(raw)
            except RequestError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            if self.path == "/v1/suggest":
                # Propagate the caller's trace context (if any) so the
                # request's spans join the caller's trace across the
                # process boundary.
                status, response = self.app.suggest(
                    body, trace_parent=self.headers.get(TRACE_HEADER)
                )
            else:
                status, response = handler(body)
            self._send_json(status, response)
        except Exception as exc:  # never drop the connection responseless
            self._send_internal_error(exc)
        finally:
            if tracker is not None:
                tracker.end()
            if getattr(self.server, "draining", False):
                self.close_connection = True

    # ------------------------------------------------------------------
    def _send_internal_error(self, exc: Exception) -> None:
        """Best-effort 500: the client sees an error, not a reset."""
        try:
            self._send_json(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
        except OSError:
            pass  # headers already sent or socket gone
        self.close_connection = True

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise RequestError("invalid Content-Length header") from None
        if length < 0:
            raise RequestError("invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if len(raw) < length:
            # The client advertised more bytes than it sent (connection
            # truncated mid-body): a parse of the stub would produce a
            # misleading "invalid JSON" — name the real problem.
            raise RequestError(
                f"truncated request body ({len(raw)} of {length} bytes)"
            )
        return raw

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        raw = json.dumps(payload).encode("utf-8")
        headers: Optional[Dict[str, str]] = None
        if status in (429, 503) and "retry_after_s" in payload:
            # The app layer picks the hint (breaker cooldown remaining,
            # deadline headroom); the transport promotes it to the
            # standard header so plain HTTP clients can honor it.
            headers = {"Retry-After": str(payload["retry_after_s"])}
        if "trace_id" in payload:
            # Traced responses echo the server-side trace id, so a
            # client (or the load generator) can join its latency
            # measurement to the server's span decomposition.
            headers = dict(headers or {})
            headers[TRACE_HEADER] = str(payload["trace_id"])
        self._send_bytes(status, raw, "application/json", headers)

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _send_bytes(
        self,
        status: int,
        raw: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(raw)

    def log_message(self, fmt: str, *args) -> None:
        """Per-request access logging, silenced unless ``verbose``."""
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)


def build_server(
    app: GatewayApp,
    host: str = "127.0.0.1",
    port: int = 8035,
    verbose: bool = False,
    sock: Optional[socket_module.socket] = None,
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server serving ``app`` (port 0 = ephemeral).

    ``sock``, when given, must be an already-bound listening socket; the
    server adopts it instead of binding ``(host, port)``.  This is the
    pre-fork path: the pool parent binds once, and every forked worker
    builds its server over the inherited socket.
    """
    handler = type(
        "BoundGatewayHandler",
        (GatewayRequestHandler,),
        {"app": app, "verbose": verbose},
    )
    if sock is None:
        server = ThreadingHTTPServer((host, port), handler)
    else:
        bound_host, bound_port = sock.getsockname()[:2]
        server = ThreadingHTTPServer(
            (bound_host, bound_port), handler, bind_and_activate=False
        )
        server.socket.close()  # the constructor's unbound placeholder
        server.socket = sock
        server.server_address = sock.getsockname()[:2]
        # What HTTPServer.server_bind would have derived (minus the
        # reverse-DNS getfqdn lookup, pointless for a worker).
        server.server_name = bound_host
        server.server_port = bound_port
    server.daemon_threads = True
    server.request_tracker = RequestTracker()
    server.draining = False
    return server


def serve_in_thread(
    server: ThreadingHTTPServer,
) -> Tuple[threading.Thread, Callable[[], None]]:
    """Run ``server.serve_forever`` on a daemon thread; returns a stopper.

    Tests and the load generator use this to host a live gateway inside
    one process::

        server = build_server(app, port=0)
        thread, stop = serve_in_thread(server)
        ...
        stop()
    """
    thread = threading.Thread(
        target=server.serve_forever, name="repro-gateway-http", daemon=True
    )
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    return thread, stop
