"""Pre-fork worker pool: one listening socket, N serving processes.

``repro-serve <root> --workers N`` runs this module instead of the
single-process gateway.  The division of labor is the classic pre-fork
design (nginx/gunicorn shape), stdlib-only:

* The **parent** binds the listening socket once, forks N workers, and
  then does nothing but supervise: reap dead children, respawn them with
  exponential backoff, and translate SIGTERM/SIGINT into a graceful
  pool-wide drain.  Because the parent holds the socket open the whole
  time, the listener never goes down — a worker crash costs only the
  requests that worker had in flight.
* Each **worker** inherits the bound socket across ``fork`` and runs the
  ordinary gateway over it (:func:`repro.server.http.build_server` with
  ``sock=``): the kernel load-balances ``accept`` across the workers
  blocked on the shared socket.  Workers load the artifact with
  ``mmap_mode="r"``, so N processes share one physical copy of the model
  weights through the page cache instead of N copies.
* Hot-swap stays **per worker**: each worker runs its own registry
  watcher, notices a new published version within ``watch_interval_s``,
  and swaps atomically — exactly the single-process semantics, N times.

Worker death and restart:

* crash (SIGKILL, segfault, unhandled exception) → the parent reaps it,
  clears its stats-board snapshot, and respawns after an exponential
  backoff (``backoff_delay``); a worker that had been up for a while
  resets the backoff, so one-off crashes restart fast while a
  crash-looping worker backs off to ``backoff_cap``.
* graceful (parent got SIGTERM) → every worker gets SIGTERM, stops
  accepting, marks itself draining, answers everything already in
  flight (``RequestTracker.wait_idle``), flushes the micro-batcher, and
  exits 0.

The supervisor also maintains ``pool.json`` in the stats directory (see
:mod:`repro.server.stats`): host/port of the shared socket plus the live
worker-id → pid map, rewritten after every spawn and reap.  Tests and
tooling use it to find the pool and to target individual workers.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.config import ServerConfig
from ..obs.log import get_logger
from .app import GatewayApp
from .http import build_server
from .registry import ModelRegistry
from .stats import StatsBoard, write_pool_state

PathLike = Union[str, Path]

#: Supervisor incidents (worker exits, drain-timeout kills) go through
#: the structured logger: one JSON object per line on stderr.
_log = get_logger("repro.server.pool")

#: Supervision loop tick (reap + respawn scheduling granularity).
POLL_INTERVAL_S = 0.05


def create_listen_socket(
    host: str, port: int, backlog: int = 128
) -> socket.socket:
    """Bind the pool's shared listening socket (port 0 = ephemeral).

    Created in the parent *before* any fork so every worker inherits the
    same file descriptor and the kernel distributes accepts among them.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def backoff_delay(
    restarts: int, base: float = 0.1, cap: float = 5.0
) -> float:
    """Exponential respawn backoff: base * 2^(restarts-1), capped.

    ``restarts`` counts consecutive fast failures (a worker that stayed
    up past the stability window resets to 1), so the first respawn is
    quick and a crash loop decays to one attempt per ``cap`` seconds.
    """
    if restarts <= 0:
        return 0.0
    return min(cap, base * (2 ** (restarts - 1)))


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def worker_main(
    worker_id: int,
    sock: socket.socket,
    root: PathLike,
    config: ServerConfig,
    verbose: bool = False,
    stats_dir: Optional[PathLike] = None,
    mmap_mode: Optional[str] = "r",
) -> int:
    """Serve the shared socket until SIGTERM; returns the exit code.

    Runs inside the forked child (also callable directly in-process for
    unit tests).  The lifecycle on SIGTERM:

    1. mark the server draining (handlers stop keep-alive),
    2. stop the accept loop (``server.shutdown`` from a helper thread —
       calling it from the signal handler would deadlock the serve loop),
    3. wait for in-flight requests to be answered (requests parked in
       the micro-batcher flush within ``max_wait_ms``, so the wait
       converges),
    4. flush/close the batcher and publish final counters, exit 0.

    Exit code 1 means the drain timed out with requests still in flight.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent orchestrates
    registry = ModelRegistry(
        root,
        pinned_version=config.pinned_version,
        score_block=config.score_block,
        mmap_mode=mmap_mode,
    )
    app = GatewayApp(registry, config)
    app.worker_info = {
        "worker": worker_id,
        "pid": os.getpid(),
        "mmap": mmap_mode == "r",
    }
    board = StatsBoard(stats_dir) if stats_dir is not None else None
    if board is not None:
        app.metrics_extra = board.render_aggregate
    server = build_server(app, sock=sock, verbose=verbose)
    tracker = server.request_tracker

    def snapshot() -> dict:
        snap = app.stats_snapshot()
        snap["handled_total"] = tracker.total
        snap["inflight"] = tracker.inflight
        snap["draining"] = bool(server.draining)
        return snap

    stop_publishing = threading.Event()

    def publish_loop() -> None:
        while True:
            try:
                board.publish(worker_id, snapshot())
            except OSError:
                pass  # stats dir vanished mid-shutdown: not fatal
            if stop_publishing.wait(config.stats_interval_s):
                return

    publisher: Optional[threading.Thread] = None
    if board is not None:
        board.publish(worker_id, snapshot())
        publisher = threading.Thread(
            target=publish_loop,
            name=f"repro-worker-{worker_id}-stats",
            daemon=True,
        )
        publisher.start()

    def on_sigterm(signum, frame) -> None:
        server.draining = True
        app.draining = True  # /healthz answers "draining" from here on
        # shutdown() blocks until serve_forever exits; from the signal
        # handler (which interrupts serve_forever's own frame) that is a
        # deadlock — hand it to a throwaway thread instead.
        threading.Thread(
            target=server.shutdown,
            name=f"repro-worker-{worker_id}-shutdown",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, on_sigterm)

    server.serve_forever()
    server.draining = True
    app.draining = True
    drained = tracker.wait_idle(config.drain_timeout_s)
    app.close()  # stop the watcher, flush whatever the batcher still holds
    stop_publishing.set()
    if publisher is not None:
        publisher.join(timeout=2.0)
    if board is not None:
        try:
            board.publish(worker_id, snapshot())  # final counters
        except OSError:
            pass
    server.server_close()
    return 0 if drained else 1


# ----------------------------------------------------------------------
# Parent / supervisor
# ----------------------------------------------------------------------


class WorkerSupervisor:
    """Fork, watch, respawn, and drain a pool of gateway workers.

    Usage (what ``repro-serve --workers N`` runs)::

        supervisor = WorkerSupervisor(root, config, stats_dir)
        sys.exit(supervisor.run())      # blocks until SIGTERM/SIGINT

    Args:
        root: artifact root (or bare artifact directory) to serve.
        config: validated :class:`repro.core.ServerConfig`; ``workers``,
            ``host``/``port``, ``drain_timeout_s`` and the usual gateway
            knobs all come from here.
        stats_dir: directory for the stats board and ``pool.json``.
        verbose: per-request logging in every worker.
        mmap_mode: artifact load mode for workers (``"r"`` = shared
            pages, ``None`` = per-worker copies).
        stable_uptime_s: a worker alive at least this long resets its
            crash-backoff counter.
    """

    def __init__(
        self,
        root: PathLike,
        config: ServerConfig,
        stats_dir: PathLike,
        verbose: bool = False,
        mmap_mode: Optional[str] = "r",
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        stable_uptime_s: float = 10.0,
    ) -> None:
        config.validate()
        self.root = Path(root)
        self.config = config
        self.verbose = verbose
        self.mmap_mode = mmap_mode
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stable_uptime_s = stable_uptime_s
        self.stats_dir = Path(stats_dir)
        self.board = StatsBoard(self.stats_dir)
        self.sock = create_listen_socket(config.host, config.port)
        self.host, self.port = self.sock.getsockname()[:2]
        self.pids: Dict[int, int] = {}
        self.spawned_at: Dict[int, float] = {}
        self.restarts: Dict[int, int] = {
            wid: 0 for wid in range(config.workers)
        }
        self.respawn_due: Dict[int, float] = {}
        self.respawns_total = 0
        self._stop = False

    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        self.board.clear(worker_id)  # predecessor's counters, if any
        pid = os.fork()
        if pid == 0:
            # Child: never return into the supervisor's stack.  Reset the
            # inherited parent signal handlers before worker_main installs
            # the worker's own.
            code = 1
            try:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                signal.signal(signal.SIGINT, signal.SIG_IGN)
                code = worker_main(
                    worker_id,
                    self.sock,
                    self.root,
                    self.config,
                    verbose=self.verbose,
                    stats_dir=self.stats_dir,
                    mmap_mode=self.mmap_mode,
                )
            except BaseException:
                traceback.print_exc()
                code = 1
            finally:
                os._exit(code)
        self.pids[worker_id] = pid
        self.spawned_at[worker_id] = time.monotonic()

    def _reap(self) -> bool:
        """Collect exited workers; schedule their respawns.  True if any."""
        changed = False
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid == 0:
                break
            worker_id = next(
                (w for w, p in self.pids.items() if p == pid), None
            )
            if worker_id is None:
                continue  # not one of ours (shouldn't happen)
            changed = True
            del self.pids[worker_id]
            uptime = time.monotonic() - self.spawned_at.pop(
                worker_id, time.monotonic()
            )
            self.board.clear(worker_id)
            if self._stop:
                continue  # orderly shutdown: no respawn
            if uptime >= self.stable_uptime_s:
                self.restarts[worker_id] = 1
            else:
                self.restarts[worker_id] += 1
            delay = backoff_delay(
                self.restarts[worker_id], self.backoff_base, self.backoff_cap
            )
            _log.warning(
                "worker_exited",
                worker=worker_id,
                pid=pid,
                status=status,
                uptime_s=round(uptime, 1),
                respawn_in_s=round(delay, 2),
            )
            self.respawn_due[worker_id] = time.monotonic() + delay
        return changed

    def _spawn_due(self) -> bool:
        """Start workers whose backoff has elapsed.  True if any spawned."""
        if self._stop:
            return False
        now = time.monotonic()
        changed = False
        for worker_id, due in sorted(self.respawn_due.items()):
            if now >= due:
                del self.respawn_due[worker_id]
                self._spawn(worker_id)
                self.respawns_total += 1
                changed = True
        return changed

    def _write_state(self) -> None:
        write_pool_state(
            self.stats_dir,
            {
                "pid": os.getpid(),
                "host": self.host,
                "port": self.port,
                "root": str(self.root),
                "num_workers": self.config.workers,
                "mmap": self.mmap_mode == "r",
                "respawns_total": self.respawns_total,
                "workers": {
                    str(wid): pid for wid, pid in sorted(self.pids.items())
                },
            },
        )

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Spawn the pool and supervise until SIGTERM/SIGINT; returns 0."""

        def on_stop_signal(signum, frame) -> None:
            self._stop = True

        signal.signal(signal.SIGTERM, on_stop_signal)
        signal.signal(signal.SIGINT, on_stop_signal)
        for worker_id in range(self.config.workers):
            self._spawn(worker_id)
        self._write_state()
        try:
            while not self._stop:
                changed = self._reap()
                changed = self._spawn_due() or changed
                if changed:
                    self._write_state()
                time.sleep(POLL_INTERVAL_S)
        finally:
            self._shutdown()
        return 0

    def _shutdown(self) -> None:
        """SIGTERM every worker, wait for drains, SIGKILL stragglers."""
        self._stop = True
        self.respawn_due.clear()
        for pid in self.pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = (
            time.monotonic() + self.config.drain_timeout_s + 5.0
        )
        while self.pids and time.monotonic() < deadline:
            self._reap()
            if self.pids:
                time.sleep(POLL_INTERVAL_S)
        for worker_id, pid in list(self.pids.items()):
            _log.error("worker_drain_timeout_kill", worker=worker_id, pid=pid)
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self.pids.pop(worker_id, None)
        self.sock.close()
        self._write_state()  # workers: {} — the pool is down
