"""Load generator for the gateway: closed/open-loop + BENCH_server.json.

Two arrival models over the same targets:

* **closed-loop** (:func:`run_load`) — ``concurrency`` workers, each
  sending its next request as soon as the previous one answers; the
  standard way to measure a serving system's throughput/latency
  trade-off.
* **open-loop** (:func:`run_open_loop`) — requests dispatched on a
  precomputed arrival schedule *independent of response times*, the way
  real traffic arrives.  Latency is measured from the scheduled arrival,
  so queueing delay when the gateway falls behind the offered rate is
  *included* — closed-loop generators hide exactly that (coordinated
  omission).  Schedules are seeded and fully deterministic:
  :func:`poisson_schedule` (exponential inter-arrivals) and
  :func:`burst_schedule` (periodic on/off bursts via thinning).

Two transports, same traffic:

* **HTTP** (:class:`HTTPTarget`) — real ``POST /v1/suggest`` requests
  over persistent ``http.client`` connections against a live gateway;
  what the CI smoke job runs.
* **in-process** (:class:`InprocTarget`) — drives
  :meth:`repro.server.app.GatewayApp.suggest` directly, which measures
  the serving stack (batcher + registry + scorer + metrics) without the
  socket stack; what the batching-efficiency benchmark uses so the
  batched vs. batch-size-1 comparison is not drowned in HTTP overhead.

Traffic shape: single-patient requests drawn from a synthetic feature
pool (seeded Gaussian rows of the model's feature dimension — the scorer
is scale-oblivious at serving time, so this exercises the identical code
path as real cohort features).  ``hot_fraction`` focuses that draw on a
few hot rows to mimic the skew of production traffic.

As a script (see ``repro-serve`` docs; also ``python -m
repro.server.loadgen``) it targets a running gateway over HTTP and merges
its report into ``BENCH_server.json``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import queue
import random
import socket
import sys
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from .resilience import backoff_delay

#: Where the bench report lands unless --output overrides it.
DEFAULT_REPORT = "BENCH_server.json"

#: Statuses worth retrying: transport failure, throttled, unavailable.
#: 503 carries the gateway's Retry-After hint (shed queue, open breaker,
#: expired deadline) — exactly the answers that mean "come back shortly".
RETRYABLE_STATUSES = frozenset({-1, 429, 503})


@dataclass
class RetryPolicy:
    """Client-side retry schedule for shed/unavailable responses.

    ``retries`` extra attempts per request, spaced by seeded
    full-jitter exponential backoff (:func:`repro.server.resilience.
    backoff_delay`) that never undercuts a server ``Retry-After`` hint.
    ``None`` (the default everywhere) keeps the old fire-once behavior.
    """

    retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 5.0


def _request_with_hint(conn, payload) -> Tuple[int, Optional[float]]:
    """(status, server retry hint in seconds) from one request."""
    fn = getattr(conn, "request_with_hint", None)
    if fn is not None:
        return fn(payload)
    return conn.request(payload), None


def send_with_retries(
    conn,
    payload: Dict[str, Any],
    policy: Optional[RetryPolicy],
    rng: random.Random,
) -> Tuple[int, int]:
    """One logical request under ``policy``; returns (status, retries used).

    Retries only :data:`RETRYABLE_STATUSES`; client errors (4xx) and
    successes return immediately.  The recorded latency of a retried
    request spans every attempt *including* the backoff sleeps — from
    the caller's point of view that is what the request cost.
    """
    attempts = 0
    while True:
        status, hint = _request_with_hint(conn, payload)
        if (
            policy is None
            or status not in RETRYABLE_STATUSES
            or attempts >= policy.retries
        ):
            return status, attempts
        delay = backoff_delay(
            attempts,
            policy.backoff_s,
            rng,
            cap_s=policy.backoff_cap_s,
            retry_after_s=hint,
        )
        if delay > 0:
            time.sleep(delay)
        attempts += 1


@dataclass
class LoadReport:
    """Result of one load-generation run.

    Attributes:
        requests / errors: completed and failed request counts.
        duration_s: measured wall-clock of the run.
        throughput_rps: requests per second (completed only).
        p50_ms / p90_ms / p99_ms: latency percentiles over all requests.
        mean_latency_ms: mean request latency.
        concurrency: closed-loop worker count (open-loop: sender cap).
        mean_batch_rows: mean rows per micro-batch flush observed by the
            gateway during the run (0 when the target cannot report it).
        mode: ``"closed"`` or the open-loop schedule kind
            (``"poisson"``/``"burst"``).
        offered_rps: scheduled arrival rate of an open-loop run (0 for
            closed-loop, where the load adapts to the service rate).
        retries: extra attempts spent on retryable (503/429/transport)
            responses across the whole run (0 without a
            :class:`RetryPolicy`).  ``errors`` counts only requests
            whose *final* attempt still failed.
        traced_requests: successful requests whose response carried a
            server trace id (``X-Repro-Trace`` / body ``trace_id``) —
            nonzero only when the gateway samples (``--trace-sample``).
        slowest_traces: the slowest traced requests as
            ``{"latency_ms", "trace_id"}``, so client-observed latency
            joins the server-side span decomposition: feed a trace id
            to ``GET /v1/trace?trace=...`` or ``repro trace``.
    """

    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    mean_latency_ms: float
    concurrency: int
    mean_batch_rows: float = 0.0
    mode: str = "closed"
    offered_rps: float = 0.0
    retries: int = 0
    traced_requests: int = 0
    slowest_traces: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation."""
        return asdict(self)


class InprocTarget:
    """Drive a :class:`~repro.server.app.GatewayApp` without sockets."""

    def __init__(self, app) -> None:
        self.app = app
        #: Server trace id of the most recent response (best-effort:
        #: in-process workers share this target, so under concurrency
        #: this is telemetry, not an exact per-request join).
        self.last_trace_id: Optional[str] = None

    def connect(self):
        """Workers share the app; nothing per-worker to set up."""
        return self

    def request(self, payload: Dict[str, Any]) -> int:
        """One suggest call; returns the HTTP-equivalent status code."""
        return self.request_with_hint(payload)[0]

    def request_with_hint(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Optional[float]]:
        """One suggest call plus the body's ``retry_after_s`` hint."""
        status, body = self.app.suggest(payload)
        hint = None
        if isinstance(body, dict):
            hint = body.get("retry_after_s")
            self.last_trace_id = body.get("trace_id")
        return status, hint

    def batch_stats(self) -> float:
        """Mean rows per flush from the app's batch histogram."""
        return self.app.metrics.batch_sizes.mean


class HTTPTarget:
    """Drive a live gateway over persistent HTTP connections."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// targets are supported, got {base_url!r}")
        netloc = parts.netloc or parts.path  # allow bare host:port
        self.host, _, port = netloc.partition(":")
        self.port = int(port or 80)
        self.timeout = timeout

    def connect(self) -> "_HTTPWorkerConnection":
        """A keep-alive connection owned by one worker thread."""
        return _HTTPWorkerConnection(self.host, self.port, self.timeout)

    def batch_stats(self) -> float:
        """HTTP targets do not expose flush sizes; the report shows 0."""
        return 0.0


class _HTTPWorkerConnection:
    """One worker's persistent connection to the gateway."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._host, self._port, self._timeout = host, port, timeout
        #: Server trace id (``X-Repro-Trace``) of the last response,
        #: None when the gateway did not trace that request.
        self.last_trace_id: Optional[str] = None
        self._conn = self._connect()

    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        conn.connect()
        # Request/response ping-pong on a keep-alive connection: without
        # TCP_NODELAY every request risks a Nagle/delayed-ACK stall.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def request(self, payload: Dict[str, Any]) -> int:
        """One suggest POST; returns the status (-1 = transport error)."""
        return self.request_with_hint(payload)[0]

    def request_with_hint(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Optional[float]]:
        """One suggest POST; returns (status, Retry-After seconds or None)."""
        body = json.dumps(payload)
        try:
            self._conn.request(
                "POST",
                "/v1/suggest",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = self._conn.getresponse()
            response.read()  # drain so the connection can be reused
            self.last_trace_id = response.getheader("X-Repro-Trace")
            retry_after = response.getheader("Retry-After")
            hint: Optional[float] = None
            if retry_after is not None:
                try:
                    hint = float(retry_after)
                except ValueError:
                    pass  # HTTP-date form: ignore, jitter alone decides
            return response.status, hint
        except (http.client.HTTPException, OSError):
            try:
                self._conn.close()
                self._conn = self._connect()
            except OSError:
                pass
            return -1, None


def make_feature_pool(
    feature_dim: int, pool_size: int = 256, seed: int = 7
) -> np.ndarray:
    """Seeded synthetic patient rows matching the model's feature width."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((pool_size, feature_dim))


def run_load(
    target,
    feature_pool: np.ndarray,
    duration_s: float = 2.0,
    concurrency: int = 32,
    k: int = 3,
    hot_fraction: float = 0.0,
    hot_rows: int = 8,
    seed: int = 23,
    retry_policy: Optional[RetryPolicy] = None,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` workers for ``duration_s`` seconds.

    Each worker draws a row from ``feature_pool`` (with probability
    ``hot_fraction`` from its first ``hot_rows`` rows — skewed traffic),
    sends ``{"features": [row], "k": k}``, and records the latency.
    Returns a :class:`LoadReport`; failed requests count as errors and
    do not contribute latencies.  With a :class:`RetryPolicy`, shed and
    unavailable responses are retried under seeded jittered backoff
    (latency then spans all attempts) and only final failures count as
    errors.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    rng = np.random.default_rng(seed)
    # Pre-build a payload ring per worker so the measurement loop does no
    # numpy work of its own.
    ring_size = 64
    rings: List[List[Dict[str, Any]]] = []
    for _worker in range(concurrency):
        ring = []
        for _ in range(ring_size):
            if hot_fraction and rng.random() < hot_fraction:
                row = feature_pool[int(rng.integers(0, min(hot_rows, len(feature_pool))))]
            else:
                row = feature_pool[int(rng.integers(0, len(feature_pool)))]
            ring.append({"features": [row.tolist()], "k": k})
        rings.append(ring)

    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    retries = [0] * concurrency
    traced: List[List[Tuple[float, str]]] = [[] for _ in range(concurrency)]
    stop = threading.Event()
    barrier = threading.Barrier(concurrency + 1)

    def worker(index: int) -> None:
        try:
            conn = target.connect()
        except Exception:
            # A worker that cannot even connect must not leave the
            # barrier waiting forever: break it so everyone fails fast.
            errors[index] += 1
            barrier.abort()
            return
        ring = rings[index]
        mine = latencies[index]
        retry_rng = random.Random(seed * 7919 + index)
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            return
        i = 0
        while not stop.is_set():
            started = time.perf_counter()
            status, attempts = send_with_retries(
                conn, ring[i % ring_size], retry_policy, retry_rng
            )
            elapsed = time.perf_counter() - started
            retries[index] += attempts
            if status == 200:
                mine.append(elapsed)
                trace_id = getattr(conn, "last_trace_id", None)
                if trace_id:
                    traced[index].append((elapsed, trace_id))
            else:
                errors[index] += 1
            i += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait(timeout=60.0)
    except threading.BrokenBarrierError:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        return LoadReport(
            requests=0,
            errors=max(1, sum(errors)),
            duration_s=0.0,
            throughput_rps=0.0,
            p50_ms=0.0,
            p90_ms=0.0,
            p99_ms=0.0,
            mean_latency_ms=0.0,
            concurrency=concurrency,
        )
    started = time.perf_counter()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - started

    all_latencies = np.array(
        [value for worker_latencies in latencies for value in worker_latencies]
    )
    requests = int(all_latencies.size)
    if requests:
        p50, p90, p99 = (
            float(np.percentile(all_latencies, q) * 1e3) for q in (50, 90, 99)
        )
        mean_ms = float(all_latencies.mean() * 1e3)
    else:
        p50 = p90 = p99 = mean_ms = 0.0
    return LoadReport(
        requests=requests,
        errors=sum(errors),
        duration_s=elapsed,
        throughput_rps=requests / elapsed if elapsed > 0 else 0.0,
        p50_ms=p50,
        p90_ms=p90,
        p99_ms=p99,
        mean_latency_ms=mean_ms,
        concurrency=concurrency,
        mean_batch_rows=target.batch_stats(),
        retries=sum(retries),
        **_trace_summary(traced),
    )


def _trace_summary(
    traced: List[List[Tuple[float, str]]], top_n: int = 8
) -> Dict[str, Any]:
    """The ``traced_requests`` / ``slowest_traces`` report fields."""
    flat = [pair for worker_pairs in traced for pair in worker_pairs]
    flat.sort(key=lambda pair: -pair[0])
    return {
        "traced_requests": len(flat),
        "slowest_traces": [
            {"latency_ms": round(latency * 1e3, 3), "trace_id": trace_id}
            for latency, trace_id in flat[:top_n]
        ],
    }


def poisson_schedule(
    rate_rps: float, duration_s: float, seed: int = 23
) -> np.ndarray:
    """Seeded Poisson arrival times (seconds from start), sorted.

    Exponential inter-arrival gaps at ``rate_rps``, accumulated until
    ``duration_s`` is covered.  Fully deterministic for a given
    ``(rate_rps, duration_s, seed)`` — the open-loop tests replay the
    exact same trace twice and assert bitwise-equal timestamps.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    rng = np.random.default_rng(seed)
    block = max(16, int(rate_rps * duration_s * 1.25) + 16)
    chunks: List[np.ndarray] = []
    last = 0.0
    while last <= duration_s:
        gaps = rng.exponential(1.0 / rate_rps, block)
        times = last + np.cumsum(gaps)
        chunks.append(times)
        last = float(times[-1])
    arrivals = np.concatenate(chunks)
    return arrivals[arrivals <= duration_s]


def burst_schedule(
    base_rate_rps: float,
    burst_rate_rps: float,
    duration_s: float,
    period_s: float = 1.0,
    burst_fraction: float = 0.25,
    seed: int = 23,
) -> np.ndarray:
    """Seeded bursty arrivals: periodic spikes over a base rate.

    The rate function alternates every ``period_s`` seconds: the first
    ``burst_fraction`` of each period runs at ``burst_rate_rps``, the
    rest at ``base_rate_rps``.  Sampled by *thinning*: draw a
    homogeneous Poisson stream at the peak rate, then keep each
    candidate with probability ``rate(t) / peak`` — the textbook exact
    method for inhomogeneous Poisson processes, and deterministic here
    because both the candidates and the keep draws come from one seeded
    generator.
    """
    if base_rate_rps <= 0:
        raise ValueError("base_rate_rps must be > 0")
    if burst_rate_rps < base_rate_rps:
        raise ValueError("burst_rate_rps must be >= base_rate_rps")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    if period_s <= 0:
        raise ValueError("period_s must be > 0")
    rng = np.random.default_rng(seed)
    block = max(16, int(burst_rate_rps * duration_s * 1.25) + 16)
    chunks: List[np.ndarray] = []
    last = 0.0
    while last <= duration_s:
        gaps = rng.exponential(1.0 / burst_rate_rps, block)
        times = last + np.cumsum(gaps)
        chunks.append(times)
        last = float(times[-1])
    candidates = np.concatenate(chunks)
    candidates = candidates[candidates <= duration_s]
    phase = np.mod(candidates, period_s)
    rate_at = np.where(
        phase < burst_fraction * period_s, burst_rate_rps, base_rate_rps
    )
    keep = rng.random(candidates.size) < rate_at / burst_rate_rps
    return candidates[keep]


def run_open_loop(
    target,
    feature_pool: np.ndarray,
    schedule: np.ndarray,
    k: int = 3,
    hot_fraction: float = 0.0,
    hot_rows: int = 8,
    seed: int = 23,
    max_inflight: int = 64,
    mode: str = "poisson",
    retry_policy: Optional[RetryPolicy] = None,
) -> LoadReport:
    """Open-loop load: dispatch on ``schedule``, regardless of responses.

    A dispatcher walks the arrival schedule in real time and hands each
    arrival to a pool of ``max_inflight`` sender threads (each owning a
    persistent connection).  Latency is measured **from the scheduled
    arrival time** to response completion, so if the gateway falls
    behind the offered rate, the backlog shows up as latency — the
    coordinated-omission-free measurement closed loops cannot give.

    ``max_inflight`` bounds concurrent outstanding requests; arrivals
    beyond it queue (and their queue wait is, correctly, part of their
    latency).  Returns a :class:`LoadReport` with ``mode`` and the
    offered rate filled in.
    """
    schedule = np.sort(np.asarray(schedule, dtype=np.float64))
    if schedule.size == 0:
        raise ValueError("schedule must contain at least one arrival")
    if max_inflight < 1:
        raise ValueError("max_inflight must be >= 1")
    rng = np.random.default_rng(seed)
    ring_size = 64
    ring: List[Dict[str, Any]] = []
    for _ in range(ring_size):
        if hot_fraction and rng.random() < hot_fraction:
            row = feature_pool[int(rng.integers(0, min(hot_rows, len(feature_pool))))]
        else:
            row = feature_pool[int(rng.integers(0, len(feature_pool)))]
        ring.append({"features": [row.tolist()], "k": k})

    work: "queue.Queue" = queue.Queue()
    latencies: List[List[float]] = [[] for _ in range(max_inflight)]
    errors = [0] * max_inflight
    retries = [0] * max_inflight
    traced: List[List[Tuple[float, str]]] = [[] for _ in range(max_inflight)]
    connect_failed = threading.Event()

    def sender(index: int) -> None:
        try:
            conn = target.connect()
        except Exception:
            connect_failed.set()
            errors[index] += 1
            # Keep draining so the dispatcher never blocks on a dead pool.
            while work.get() is not None:
                errors[index] += 1
            return
        mine = latencies[index]
        retry_rng = random.Random(seed * 7919 + index)
        while True:
            item = work.get()
            if item is None:
                return
            i, scheduled_at = item
            status, attempts = send_with_retries(
                conn, ring[i % ring_size], retry_policy, retry_rng
            )
            completed = time.perf_counter() - start
            retries[index] += attempts
            if status == 200:
                mine.append(completed - scheduled_at)
                trace_id = getattr(conn, "last_trace_id", None)
                if trace_id:
                    traced[index].append((completed - scheduled_at, trace_id))
            else:
                errors[index] += 1

    threads = [
        threading.Thread(target=sender, args=(i,), daemon=True)
        for i in range(max_inflight)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for i, scheduled_at in enumerate(schedule):
        delay = start + scheduled_at - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        work.put((i, float(scheduled_at)))
    for _ in threads:
        work.put(None)
    for thread in threads:
        thread.join(timeout=60.0)
    elapsed = time.perf_counter() - start

    all_latencies = np.array(
        [value for sender_latencies in latencies for value in sender_latencies]
    )
    requests = int(all_latencies.size)
    if requests:
        p50, p90, p99 = (
            float(np.percentile(all_latencies, q) * 1e3) for q in (50, 90, 99)
        )
        mean_ms = float(all_latencies.mean() * 1e3)
    else:
        p50 = p90 = p99 = mean_ms = 0.0
    span = float(schedule[-1]) if schedule[-1] > 0 else elapsed
    return LoadReport(
        requests=requests,
        errors=sum(errors),
        duration_s=elapsed,
        throughput_rps=requests / elapsed if elapsed > 0 else 0.0,
        p50_ms=p50,
        p90_ms=p90,
        p99_ms=p99,
        mean_latency_ms=mean_ms,
        concurrency=max_inflight,
        mean_batch_rows=target.batch_stats(),
        mode=mode,
        offered_rps=schedule.size / span if span > 0 else 0.0,
        retries=sum(retries),
        **_trace_summary(traced),
    )


def merge_report(path: str, key: str, payload: Dict[str, Any]) -> None:
    """Merge ``payload`` under ``key`` in the JSON report at ``path``.

    The benchmark and the HTTP load generator both write to
    ``BENCH_server.json``; merging keeps one file with every section.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        if not isinstance(report, dict):
            report = {}
    except (FileNotFoundError, json.JSONDecodeError):
        report = {}
    report[key] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _fetch_healthz(url: str, timeout: float = 10.0) -> Dict[str, Any]:
    target = HTTPTarget(url)
    conn = http.client.HTTPConnection(target.host, target.port, timeout=timeout)
    conn.request("GET", "/healthz")
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    if response.status != 200:
        raise RuntimeError(f"healthz returned {response.status}: {raw[:200]!r}")
    return json.loads(raw)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: load-generate against a live gateway over HTTP."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadgen",
        description="Closed/open-loop load generator for the repro-serve gateway.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8035")
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument(
        "--mode", choices=("closed", "poisson", "burst"), default="closed",
        help="closed-loop workers (default) or open-loop seeded arrivals",
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop offered rate in requests/s (poisson; burst base rate)",
    )
    parser.add_argument(
        "--burst-rate", type=float, default=None,
        help="burst mode: peak rate during bursts (default 4x --rate)",
    )
    parser.add_argument(
        "--burst-period", type=float, default=1.0,
        help="burst mode: seconds per base+burst cycle",
    )
    parser.add_argument(
        "--burst-fraction", type=float, default=0.25,
        help="burst mode: fraction of each period spent at the peak rate",
    )
    parser.add_argument(
        "--seed", type=int, default=23,
        help="seed for the arrival schedule and payload draw "
        "(same seed = bitwise-identical schedule)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="open-loop: cap on concurrently outstanding requests",
    )
    parser.add_argument(
        "--hot-fraction", type=float, default=0.0,
        help="fraction of requests drawn from a few hot rows (skewed traffic)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request HTTP timeout in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per request on 503/429/transport errors "
        "(0 = fire once, the old behavior)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05,
        help="base of the seeded full-jitter exponential retry backoff "
        "in seconds (honors the server's Retry-After)",
    )
    parser.add_argument(
        "--output", default=None,
        help=f"merge the report into this JSON file (e.g. {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--report-key", default="loadgen_http",
        help="section name used inside the output JSON",
    )
    args = parser.parse_args(argv)

    health = _fetch_healthz(args.url)
    print(
        f"gateway {args.url}: version={health.get('version')} "
        f"feature_dim={health.get('feature_dim')} num_drugs={health.get('num_drugs')}"
    )
    pool = make_feature_pool(int(health["feature_dim"]))
    retry_policy = (
        RetryPolicy(retries=args.retries, backoff_s=args.backoff)
        if args.retries > 0
        else None
    )
    if args.mode == "closed":
        report = run_load(
            HTTPTarget(args.url, timeout=args.timeout),
            pool,
            duration_s=args.duration,
            concurrency=args.concurrency,
            k=args.k,
            hot_fraction=args.hot_fraction,
            seed=args.seed,
            retry_policy=retry_policy,
        )
    else:
        if args.mode == "poisson":
            schedule = poisson_schedule(args.rate, args.duration, seed=args.seed)
        else:
            burst_rate = args.burst_rate if args.burst_rate is not None else 4.0 * args.rate
            schedule = burst_schedule(
                args.rate,
                burst_rate,
                args.duration,
                period_s=args.burst_period,
                burst_fraction=args.burst_fraction,
                seed=args.seed,
            )
        report = run_open_loop(
            HTTPTarget(args.url, timeout=args.timeout),
            pool,
            schedule,
            k=args.k,
            hot_fraction=args.hot_fraction,
            seed=args.seed,
            max_inflight=args.max_inflight,
            mode=args.mode,
            retry_policy=retry_policy,
        )
        print(
            f"open-loop {args.mode}: {schedule.size} scheduled arrivals "
            f"({report.offered_rps:.0f}/s offered, seed {args.seed})"
        )
    print(
        f"{report.requests} requests in {report.duration_s:.2f}s "
        f"({report.throughput_rps:.0f}/s, concurrency {report.concurrency}), "
        f"{report.errors} errors, {report.retries} retries"
    )
    print(
        f"latency ms: p50 {report.p50_ms:.2f}  p90 {report.p90_ms:.2f}  "
        f"p99 {report.p99_ms:.2f}  mean {report.mean_latency_ms:.2f}"
    )
    if args.output:
        payload = report.to_dict()
        payload["url"] = args.url
        payload["version"] = health.get("version")
        merge_report(args.output, args.report_key, payload)
        print(f"merged section {args.report_key!r} into {args.output}")
    return 0 if report.errors == 0 and report.requests > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
