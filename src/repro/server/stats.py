"""Cross-process stats for the pre-fork worker pool.

Workers are separate processes, so the in-process
:class:`~repro.server.metrics.GatewayMetrics` of one worker only sees the
requests the kernel happened to route to *it*.  The pool therefore keeps
a shared **stats board**: a directory in which every worker periodically
publishes a JSON snapshot of its counters (atomic ``os.replace``, so a
reader never sees a torn file), and from which any worker's ``/metrics``
endpoint renders pool-wide ``repro_pool_*`` aggregates.

Files are the IPC here on purpose: no shared memory, no sockets between
siblings, crash-tolerant by construction (a dead worker's last snapshot
simply goes stale, and the supervisor removes it on respawn so restarts
do not double-count).

Layout::

    <stats_dir>/
      pool.json        # supervisor state: pids, socket address (pool.py)
      worker-0.json    # one snapshot per live worker
      worker-1.json
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import atomicio

PathLike = Union[str, Path]

#: Snapshot fields summed across workers into ``repro_pool_*_total``.
SUMMED_FIELDS: Tuple[str, ...] = (
    "requests_total",
    "errors_total",
    "patients_scored",
    "flushes",
    "handled_total",
)


class StatsBoard:
    """One worker's publishing handle / any process's aggregation view.

    Usage (worker side)::

        board = StatsBoard(stats_dir)
        board.publish(worker_id, app.stats_snapshot())   # every interval

    Usage (reader side — ``/metrics`` of any worker, tests)::

        text = board.render_aggregate()
    """

    def __init__(self, stats_dir: PathLike) -> None:
        self.stats_dir = Path(stats_dir)
        self.stats_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _worker_path(self, worker_id: int) -> Path:
        return self.stats_dir / f"worker-{worker_id}.json"

    def publish(self, worker_id: int, snapshot: Dict[str, Any]) -> None:
        """Atomically replace this worker's snapshot file.

        Write-to-temp + ``os.replace`` means a concurrent reader gets
        either the previous complete snapshot or this one, never a
        truncated file.
        """
        payload = dict(snapshot)
        payload["worker"] = worker_id
        payload["published_at"] = time.time()
        # durable=False: snapshots are republished every interval, so
        # losing the newest one to a power cut costs nothing — but the
        # replace must still be atomic so a reader never parses a torn
        # file.  (``stats.publish.*`` failpoints live inside.)
        atomicio.atomic_write_json(
            self._worker_path(worker_id),
            payload,
            site="stats.publish",
            durable=False,
            sort_keys=True,
        )

    def clear(self, worker_id: int) -> None:
        """Drop a worker's snapshot (supervisor, before a respawn).

        A respawned worker restarts its counters at zero; leaving the
        predecessor's snapshot in place would double-count its requests
        until the replacement's first publish.
        """
        try:
            self._worker_path(worker_id).unlink()
        except FileNotFoundError:
            pass

    def read_all(self) -> List[Dict[str, Any]]:
        """Every readable worker snapshot, sorted by worker id.

        Tolerant by design: a file mid-replace, half-gone, or somehow
        corrupt is skipped — aggregation over the survivors is always
        well-defined.
        """
        snapshots: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.stats_dir))
        except FileNotFoundError:
            return snapshots
        for name in names:
            if not (name.startswith("worker-") and name.endswith(".json")):
                continue
            try:
                data = json.loads((self.stats_dir / name).read_text())
            except (OSError, ValueError):
                continue
            if isinstance(data, dict):
                snapshots.append(data)
        snapshots.sort(key=lambda s: int(s.get("worker", -1)))
        return snapshots

    # ------------------------------------------------------------------
    def render_aggregate(self) -> str:
        """Pool-wide Prometheus text from whatever snapshots exist.

        Appended verbatim to each worker's per-process ``/metrics``
        output, so scraping *any* worker through the shared socket shows
        the whole pool: per-worker ``repro_pool_worker_*`` samples plus
        summed ``repro_pool_*`` totals.
        """
        snapshots = self.read_all()
        lines: List[str] = []
        lines.append("# TYPE repro_pool_workers_reporting gauge")
        lines.append(f"repro_pool_workers_reporting {len(snapshots)}")

        totals = {field: 0.0 for field in SUMMED_FIELDS}
        inflight = 0.0
        for snap in snapshots:
            for field in SUMMED_FIELDS:
                totals[field] += float(snap.get(field, 0) or 0)
            inflight += float(snap.get("inflight", 0) or 0)

        lines.append("# TYPE repro_pool_requests_total counter")
        lines.append(f"repro_pool_requests_total {int(totals['requests_total'])}")
        lines.append("# TYPE repro_pool_errors_total counter")
        lines.append(f"repro_pool_errors_total {int(totals['errors_total'])}")
        lines.append("# TYPE repro_pool_patients_scored_total counter")
        lines.append(
            f"repro_pool_patients_scored_total {int(totals['patients_scored'])}"
        )
        lines.append("# TYPE repro_pool_flushes_total counter")
        lines.append(f"repro_pool_flushes_total {int(totals['flushes'])}")
        lines.append("# TYPE repro_pool_handled_total counter")
        lines.append(f"repro_pool_handled_total {int(totals['handled_total'])}")
        lines.append("# TYPE repro_pool_inflight_requests gauge")
        lines.append(f"repro_pool_inflight_requests {int(inflight)}")

        lines.append("# TYPE repro_pool_worker_info gauge")
        for snap in snapshots:
            wid = snap.get("worker", "?")
            pid = snap.get("pid", "?")
            version = snap.get("version") or "none"
            lines.append(
                f'repro_pool_worker_info{{worker="{wid}",pid="{pid}",'
                f'version="{version}"}} 1'
            )
        lines.append("# TYPE repro_pool_worker_requests_total counter")
        for snap in snapshots:
            wid = snap.get("worker", "?")
            total = int(snap.get("requests_total", 0) or 0)
            lines.append(
                f'repro_pool_worker_requests_total{{worker="{wid}"}} {total}'
            )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Pool state file (written by the supervisor, read by tests/tooling)
# ----------------------------------------------------------------------

POOL_STATE_NAME = "pool.json"


def write_pool_state(stats_dir: PathLike, state: Dict[str, Any]) -> Path:
    """Atomically write the supervisor's ``pool.json`` next to the stats.

    The state file is the authoritative "who is alive" record: host/port
    of the shared socket, the supervisor pid, and the worker-id -> pid
    map after every spawn and reap.  Tests target specific workers (for
    SIGKILL fault injection) through it.
    """
    stats_dir = Path(stats_dir)
    stats_dir.mkdir(parents=True, exist_ok=True)
    return atomicio.atomic_write_json(
        stats_dir / POOL_STATE_NAME,
        state,
        site="stats.pool",
        sort_keys=True,
        indent=2,
    )


def read_pool_state(stats_dir: PathLike) -> Optional[Dict[str, Any]]:
    """The current ``pool.json`` contents, or None if absent/unreadable."""
    try:
        data = json.loads((Path(stats_dir) / POOL_STATE_NAME).read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
