"""The gateway application: routes, validation, batching, telemetry.

:class:`GatewayApp` is the transport-independent heart of the online
gateway.  It owns the :class:`~repro.server.registry.ModelRegistry`, the
:class:`~repro.server.batcher.MicroBatcher` and the
:class:`~repro.server.metrics.GatewayMetrics`, and exposes one method per
endpoint taking/returning plain Python values:

========================  =============================================
``POST /v1/suggest``      :meth:`GatewayApp.suggest`
``POST /v1/explain``      :meth:`GatewayApp.explain`
``GET /healthz``          :meth:`GatewayApp.healthz`
``GET /metrics``          :meth:`GatewayApp.metrics_text`
``GET /v1/versions``      :meth:`GatewayApp.versions`
``POST /-/reload``        :meth:`GatewayApp.reload`
========================  =============================================

The HTTP layer (:mod:`repro.server.http`) is a thin JSON shim over these
methods, and the load generator's in-process mode drives them directly —
both therefore measure and exercise the same code.

Request flow for ``suggest``: validate the feature matrix, submit it to
the micro-batcher (where it coalesces with concurrent requests into one
:meth:`repro.serving.SuggestionService.predict_scores` call), then apply
the per-request top-k / re-rank step through the service that scored the
batch.  The model handle is resolved *per flush*, so a hot-swap between
two flushes is atomic and drops nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import __version__, chaos
from ..core.config import ServerConfig
from ..core.ms_module import Explanation
from ..obs.log import JsonlSink
from ..obs.trace import Span, SpanContext, Tracer, chrome_trace, parse_header
from .batcher import BatcherClosed, MicroBatcher, SubmitTimeout
from .metrics import GatewayMetrics
from .registry import ModelRegistry, NoModelError, ServingHandle, watch
from .resilience import CLOSED, CircuitBreaker


class RequestError(ValueError):
    """A client error (HTTP 400): malformed body or out-of-range fields."""


def _as_feature_matrix(value: Any, feature_dim: int, max_rows: int) -> np.ndarray:
    """Validate and convert the ``features`` field to (n, feature_dim)."""
    if value is None:
        raise RequestError("missing required field 'features'")
    try:
        x = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"features must be numeric: {exc}") from None
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2:
        raise RequestError(f"features must be 1-D or 2-D, got {x.ndim}-D")
    if x.size == 0:
        raise RequestError("features must contain at least one row")
    if x.shape[0] > max_rows:
        raise RequestError(
            f"too many rows ({x.shape[0]} > max_request_rows={max_rows})"
        )
    if x.shape[1] != feature_dim:
        raise RequestError(
            f"feature dimension mismatch: got {x.shape[1]}, model expects "
            f"{feature_dim}"
        )
    if not np.isfinite(x).all():
        raise RequestError("features must be finite (no NaN/Inf)")
    return x


def explanation_to_dict(explanation: Explanation) -> Dict[str, Any]:
    """JSON-safe representation of an MS-module explanation."""
    return {
        "suggested": [int(d) for d in explanation.suggested],
        "community": [int(d) for d in explanation.community],
        "synergy_within": [[int(a), int(b)] for a, b in explanation.synergy_within],
        "antagonism_within": [
            [int(a), int(b)] for a, b in explanation.antagonism_within
        ],
        "antagonism_avoided": [
            [int(a), int(b)] for a, b in explanation.antagonism_avoided
        ],
        "satisfaction": {
            "value": float(explanation.satisfaction.value),
            "r_in_pos": int(explanation.satisfaction.r_in_pos),
            "r_in_neg": int(explanation.satisfaction.r_in_neg),
            "r_out_neg": int(explanation.satisfaction.r_out_neg),
            "subgraph_nodes": int(explanation.satisfaction.subgraph_nodes),
            "k": int(explanation.satisfaction.k),
        },
        "text": explanation.render(),
    }


@dataclass(frozen=True)
class _ReqMeta:
    """Per-request metadata riding through the micro-batcher.

    The batcher treats ``meta`` as opaque; the flush unpacks the
    requested ``k`` and, for traced requests, the span context that
    links the request's trace to the shared batch-scoring span.
    """

    k: Optional[int]
    trace: Optional[SpanContext] = None


@dataclass(frozen=True)
class _FlushInfo:
    """Flush-shared context returned to every request in a batch.

    Carries the model handle that answered the flush (the existing
    contract) plus the ``perf_counter`` stamps the request path turns
    into its ``queue_wait`` / ``batch_wait`` / ``score`` phases, and
    the batch span (if any traced request rode in this flush).
    """

    handle: ServingHandle
    flush_started: float
    score_started: float
    score_ended: float
    rows: int
    requests: int
    batch_span: Optional[SpanContext] = None


#: The request-lifecycle phases a traced ``suggest`` decomposes into.
SUGGEST_PHASES = ("parse", "queue_wait", "batch_wait", "score", "serialize")


class GatewayApp:
    """Online serving gateway over a versioned model registry.

    Args:
        registry: the model registry to serve from (the app calls
            ``reload()`` once at start-up unless ``lazy`` is set).
        config: deployment knobs (:class:`repro.core.ServerConfig`).
        lazy: skip the initial model load (requests 503 until a
            successful ``reload``) — used by tests and by deployments
            that publish after the gateway starts.

    Usage::

        app = GatewayApp(ModelRegistry("models/"), ServerConfig())
        status, body = app.suggest({"features": [[...]]})
        app.close()
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServerConfig] = None,
        lazy: bool = False,
    ) -> None:
        self.config = config or ServerConfig()
        self.config.validate()
        self.registry = registry
        if registry.score_block is None:
            # Deployment config decides the scoring shape; an explicit 0
            # (legacy variable-shape path) overrides the artifact too.
            registry.score_block = self.config.score_block
        self.metrics = GatewayMetrics(self.config.latency_reservoir)
        self.started_at = time.monotonic()
        #: Request tracer (see :mod:`repro.obs`).  With the default
        #: ``trace_sample=0.0`` only requests that *arrive* with an
        #: ``X-Repro-Trace`` header are traced; everything else pays a
        #: single float comparison.
        self._trace_sink = (
            JsonlSink(self.config.trace_log) if self.config.trace_log else None
        )
        self.tracer = Tracer(
            sample=self.config.trace_sample,
            ring_size=self.config.trace_ring,
            service="repro-server",
            sink=self._trace_sink,
        )
        #: Registry lifecycle (swap/quarantine) lands as instant spans.
        registry.trace_events = self._registry_event
        #: Circuit breaker around the scoring path; ``None`` when
        #: ``breaker_threshold`` is 0 (disabled).
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
            if self.config.breaker_threshold > 0
            else None
        )
        #: Set by the pool's worker drain path: /healthz answers 503
        #: "draining" so load balancers stop routing here while in-flight
        #: requests finish.
        self.draining = False
        #: Set by the pre-fork pool's worker_main: {"worker", "pid",
        #: "mmap"}.  None in the single-process gateway.
        self.worker_info: Optional[Dict[str, Any]] = None
        #: Extra text appended to /metrics (the pool's cross-process
        #: aggregate); None renders per-process metrics only.
        self.metrics_extra: Optional[Callable[[], str]] = None
        if not lazy:
            self.registry.reload()
        self.batcher = MicroBatcher(
            self._flush,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            on_flush=lambda requests, rows: self.metrics.batch_sizes.observe(rows),
        )
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None
        if self.config.watch_interval_s > 0:
            self._watch_thread = threading.Thread(
                target=watch,
                args=(self.registry, self.config.watch_interval_s, self._watch_stop),
                kwargs={"on_swap": self._on_swap},
                name="repro-registry-watch",
                daemon=True,
            )
            self._watch_thread.start()

    # ------------------------------------------------------------------
    def _registry_event(self, event: str, fields: Dict[str, Any]) -> None:
        """Registry swap/quarantine observer -> instant span (if sampled)."""
        self.tracer.instant(event, **fields)

    def _flush(self, stacked: np.ndarray, items) -> Tuple[list, _FlushInfo]:
        """Batch executor: one scoring call + one top-k call per distinct k.

        ``items`` is ``[(row_count, _ReqMeta), ...]``.  Scoring *and*
        the top-k/re-rank step run on the whole coalesced matrix (top-k
        is a per-row pure function, so batching it preserves bitwise
        equality with sequential ``suggest``); each request gets back
        its ``(scores_rows, suggestion_rows)`` slice.  The model handle
        is resolved once per flush: every request in a flush is answered
        by one consistent model version.

        Returns a :class:`_FlushInfo` shared by every request in the
        flush: the handle plus the phase-boundary timestamps.  When any
        request in the batch is traced, the whole scoring step runs
        under one ``batch_score`` span parented to the first traced
        request — the other traced requests link to it by id, which is
        how N request traces share a single kernel invocation.
        """
        flush_started = time.perf_counter()
        handle = self.registry.active()
        service = handle.service
        traced = [meta.trace for _rows, meta in items if meta.trace is not None]
        batch_span: Optional[Span] = None
        if traced:
            batch_span = self.tracer.start_span(
                "batch_score",
                parent=traced[0],
                attrs={
                    "rows": int(stacked.shape[0]),
                    "requests": len(items),
                    "traces": sorted({t.trace_id for t in traced}),
                    "version": handle.version.name,
                },
            )
            # Activate on the batcher thread so chaos hits inside the
            # scoring call annotate this span.
            batch_span.__enter__()
        score_started = time.perf_counter()
        try:
            try:
                # ``gateway.score`` is the chaos harness's hook into the
                # hot path: an ``err`` rule simulates a broken model
                # (feeds the breaker), a ``sleep`` rule injects scoring
                # latency (feeds the deadline tests).
                chaos.failpoint("gateway.score")
                scores = service.predict_scores(stacked)
            except Exception:
                # One flush failure is one scoring failure, however many
                # requests were coalesced into it — record it here, not
                # per request, so the breaker threshold means what it
                # says.
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            distinct_k = {meta.k if meta.k is not None else service.config.default_k
                          for _rows, meta in items}
            topk = {k: service.topk_from_scores(scores, k) for k in distinct_k}
            results = []
            offset = 0
            for rows, meta in items:
                k = meta.k if meta.k is not None else service.config.default_k
                results.append(
                    (scores[offset : offset + rows], topk[k][offset : offset + rows])
                )
                offset += rows
        except BaseException as exc:
            if batch_span is not None:
                batch_span.__exit__(type(exc), exc, exc.__traceback__)
                batch_span = None
            raise
        finally:
            if batch_span is not None:
                batch_span.__exit__(None, None, None)
        score_ended = time.perf_counter()
        return results, _FlushInfo(
            handle=handle,
            flush_started=flush_started,
            score_started=score_started,
            score_ended=score_ended,
            rows=int(stacked.shape[0]),
            requests=len(items),
            batch_span=batch_span.context() if batch_span is not None else None,
        )

    def _on_swap(self, version) -> None:
        self.metrics.counters.inc(
            "repro_server_model_swaps_total", {"trigger": "watch"}
        )

    # ------------------------------------------------------------------
    def suggest(
        self, body: Dict[str, Any], trace_parent: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/suggest``: micro-batched top-k suggestions.

        Body: ``{"features": [[...]] | [...], "k": int?,
        "return_scores": bool?}``.  Returns suggestions (one id list per
        patient row), the serving version, and optionally the raw score
        rows.

        ``trace_parent`` is the raw ``X-Repro-Trace`` header value, if
        the client sent one: the request is then traced unconditionally
        and its spans join the caller's trace.  Otherwise the sampler
        (``--trace-sample``) decides.  Traced responses carry
        ``trace_id``; the HTTP layer echoes it as ``X-Repro-Trace``.
        """
        started = time.perf_counter()
        status, response = self._suggest_inner(body, trace_parent)
        self.metrics.observe_request(
            "suggest", status, time.perf_counter() - started
        )
        return status, response

    def _deadline_s(self, body: Dict[str, Any]) -> Optional[float]:
        """Effective time budget in seconds for this request, or None.

        The deployment's ``deadline_ms`` is the ceiling; a request body
        may carry its own (smaller) ``deadline_ms`` — a client that will
        give up in 50 ms gains nothing from the server working for 200.
        """
        config_ms = self.config.deadline_ms or None
        body_ms = body.get("deadline_ms")
        if body_ms is not None:
            try:
                body_ms = float(body_ms)
            except (TypeError, ValueError):
                raise RequestError("deadline_ms must be a number") from None
            if body_ms <= 0:
                raise RequestError("deadline_ms must be > 0")
            if config_ms is not None:
                body_ms = min(body_ms, config_ms)
            return body_ms / 1000.0
        return config_ms / 1000.0 if config_ms is not None else None

    def _shed(
        self, reason: str, error: str, retry_after_s: float
    ) -> Tuple[int, Dict[str, Any]]:
        """One load-shedding 503: count it, attach the retry hint."""
        self.metrics.counters.inc("repro_server_shed_total", {"reason": reason})
        return 503, {
            "error": error,
            "shed": reason,
            "retry_after_s": round(max(retry_after_s, 0.001), 3),
        }

    def _suggest_inner(
        self, body: Dict[str, Any], trace_parent: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Sampling decision, phase bookkeeping, and span finalization.

        The request work itself lives in :meth:`_suggest_phased`, which
        appends ``(phase, perf_start, perf_end)`` triples as it crosses
        each boundary.  Phase *timestamps* are collected for every
        request (three ``perf_counter`` calls per flush plus per-request
        arithmetic — they feed the ``/metrics`` phase histograms);
        *spans* are only materialized for sampled requests.
        """
        ctx = parse_header(trace_parent)
        root: Optional[Span] = None
        if ctx is not None or self.tracer.sample_decision():
            root = self.tracer.start_span("request.suggest", parent=ctx)
            if self.worker_info is not None:
                root.set("worker", self.worker_info["worker"])
        phases: List[Tuple[str, float, float]] = []
        try:
            status, response = self._suggest_phased(body, root, phases)
        except BaseException as exc:
            if root is not None:
                root.set("error", f"{type(exc).__name__}: {exc}")
                root.end()
            raise
        if status == 200:
            self.metrics.observe_phases(
                [(name, end - start) for name, start, end in phases]
            )
        if root is not None:
            root.set("status", status)
            root.end()
            # Children are derived from the recorded stamps *after* the
            # root closes, so their bookkeeping cost never widens the
            # parent they must account for.
            for name, start, end in phases:
                self.tracer.record_child(root, name, start, end)
            response["trace_id"] = root.trace_id
        return status, response

    def _suggest_phased(
        self,
        body: Dict[str, Any],
        root: Optional[Span],
        phases: List[Tuple[str, float, float]],
    ) -> Tuple[int, Dict[str, Any]]:
        t0 = root.start_perf if root is not None else time.perf_counter()
        started = time.monotonic()
        try:
            handle = self.registry.active()
        except NoModelError as exc:
            return 503, {"error": str(exc)}
        service = handle.service
        try:
            x = _as_feature_matrix(
                body.get("features"),
                service.feature_dim,
                self.config.max_request_rows,
            )
            k = body.get("k")
            if k is not None:
                k = int(k)
                if not 1 <= k <= service.num_drugs:
                    raise RequestError(
                        f"k must be in [1, {service.num_drugs}], got {k}"
                    )
            return_scores = bool(body.get("return_scores", False))
            deadline_s = self._deadline_s(body)
        except RequestError as exc:
            return 400, {"error": str(exc)}
        if self.breaker is not None and not self.breaker.allow():
            return self._shed(
                "breaker",
                "scoring circuit open: gateway is in degraded mode",
                self.breaker.retry_after(),
            )
        limit = self.config.queue_limit
        if limit and self.batcher.queue_depth >= limit:
            # Admission control: beyond the limit, every queued row only
            # adds latency for everyone — shed now, retry after roughly
            # one flush interval.
            return self._shed(
                "queue_full",
                f"admission queue full ({self.batcher.queue_depth} rows "
                f">= queue_limit={limit})",
                max(0.05, self.config.max_wait_ms / 1000.0),
            )
        timeout = self.config.submit_timeout_s
        if deadline_s is not None:
            remaining = deadline_s - (time.monotonic() - started)
            if remaining <= 0:
                return self._shed(
                    "deadline",
                    f"deadline of {deadline_s * 1000:.0f} ms expired before "
                    f"scoring started",
                    deadline_s,
                )
            timeout = min(timeout, remaining)
        t_submit = time.perf_counter()
        phases.append(("parse", t0, t_submit))
        meta = _ReqMeta(
            k=k, trace=root.context() if root is not None else None
        )
        try:
            (scores, suggestions), info = self.batcher.submit(
                x, meta=meta, timeout=timeout
            )
        except SubmitTimeout as exc:
            if deadline_s is not None and timeout < self.config.submit_timeout_s:
                return self._shed(
                    "deadline",
                    f"deadline of {deadline_s * 1000:.0f} ms expired in the "
                    f"batch queue: {exc}",
                    deadline_s,
                )
            return 503, {"error": f"batch timeout: {exc}", "retry_after_s": 1.0}
        except BatcherClosed:
            return 503, {"error": "gateway is shutting down", "retry_after_s": 1.0}
        except NoModelError as exc:
            return 503, {"error": str(exc)}
        except Exception as exc:
            # A flush blew up (a broken model, an injected fault, a
            # hot-swap to a different feature width invalidating queued
            # requests).  The batch is poisoned but the gateway is fine
            # — this is a *service-unavailable* condition, not a server
            # bug: answer 503 with a retry hint (the breaker, fed inside
            # the flush, decides whether the next attempt is even let
            # through) so a well-behaved client backs off and retries.
            self.metrics.counters.inc("repro_server_scoring_failures_total")
            retry_after = (
                self.breaker.retry_after() if self.breaker is not None else 0.1
            )
            return 503, {
                "error": f"scoring failed: {type(exc).__name__}: {exc}",
                "retry_after_s": round(max(retry_after, 0.001), 3),
            }
        t_wake = time.perf_counter()
        phases.append(("queue_wait", t_submit, info.flush_started))
        phases.append(("batch_wait", info.flush_started, info.score_started))
        phases.append(("score", info.score_started, info.score_ended))
        if root is not None and info.batch_span is not None:
            root.event(
                "batch",
                span=info.batch_span.span_id,
                rows=info.rows,
                requests=info.requests,
            )
        if deadline_s is not None and time.monotonic() - started > deadline_s:
            # The result exists but arrived past the budget: the caller
            # has (by contract) already given up, so the honest answer
            # is the deadline 503, not a response nobody is reading.
            return self._shed(
                "deadline",
                f"deadline of {deadline_s * 1000:.0f} ms expired during "
                f"scoring",
                deadline_s,
            )
        response: Dict[str, Any] = {
            "suggestions": suggestions.tolist(),
            "k": int(suggestions.shape[1]),
            "version": info.handle.version.name,
        }
        if self.worker_info is not None:
            response["worker"] = self.worker_info["worker"]
        if return_scores:
            response["scores"] = scores.tolist()
        phases.append(("serialize", t_wake, time.perf_counter()))
        return 200, response

    def explain(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/explain``: MS-module explanation of a drug set.

        Body: ``{"suggested": [drug ids]}``.  Served from the service's
        LRU explanation cache when the set was explained before.
        """
        started = time.perf_counter()
        status, response = self._explain_inner(body)
        self.metrics.observe_request(
            "explain", status, time.perf_counter() - started
        )
        return status, response

    def _explain_inner(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        try:
            handle = self.registry.active()
        except NoModelError as exc:
            return 503, {"error": str(exc)}
        suggested = body.get("suggested")
        if not isinstance(suggested, (list, tuple)) or not suggested:
            return 400, {"error": "'suggested' must be a non-empty list of drug ids"}
        try:
            drugs = [int(d) for d in suggested]
        except (TypeError, ValueError):
            return 400, {"error": "'suggested' must contain integers"}
        n = handle.service.num_drugs
        bad = [d for d in drugs if not 0 <= d < n]
        if bad:
            return 400, {"error": f"unknown drug ids {bad} (catalog size {n})"}
        explanation = handle.service.explain(drugs)
        response = explanation_to_dict(explanation)
        response["version"] = handle.version.name
        return 200, response

    @property
    def degraded(self) -> bool:
        """Whether the scoring circuit is currently open or probing."""
        return self.breaker is not None and self.breaker.state != CLOSED

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``: deep health, not just liveness.

        Status ladder (each state implies the ones below are moot):

        * ``draining`` (503) — the worker is shutting down; stop routing
          here, in-flight requests still get answers.
        * ``no_model`` (503) — nothing loadable to serve.
        * ``degraded`` (200) — serving, but the scoring breaker is open
          or probing: expect 503s with ``Retry-After`` on suggest.
        * ``ok`` (200) — serving normally.
        """
        base: Dict[str, Any] = {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.batcher.queue_depth,
            # Package version and sampling rate, so probes and
            # dashboards stop scraping /metrics for liveness metadata.
            # ("version" is taken by the *model* version below.)
            "repro_version": __version__,
            "trace_sample": self.tracer.sample,
        }
        if self.worker_info is not None:
            base["worker"] = dict(self.worker_info)
        if self.breaker is not None:
            base["breaker"] = self.breaker.state
        quarantined = self.registry.quarantined
        if quarantined:
            base["quarantined"] = sorted(quarantined)
        if self.draining:
            base["status"] = "draining"
            return 503, base
        try:
            handle = self.registry.active()
        except NoModelError as exc:
            base.update({"status": "no_model", "error": str(exc)})
            return 503, base
        base.update(
            {
                "status": "degraded" if self.degraded else "ok",
                "version": handle.version.name,
                "feature_dim": handle.service.feature_dim,
                "num_drugs": handle.service.num_drugs,
                "versions_available": len(self.registry.versions()),
            }
        )
        return 200, base

    def trace_payload(
        self, query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/trace``: recent finished spans from the in-memory ring.

        Query parameters: ``trace=<id>`` filters to one trace,
        ``limit=<n>`` bounds the span count, ``format=chrome`` returns a
        Chrome ``trace_event`` document (Perfetto-loadable as saved)
        instead of the default ``{"spans": [...]}`` payload.

        In a ``--workers N`` pool each worker owns its ring, so one GET
        sees one worker's spans; clients chasing a specific trace retry
        until the kernel routes them to the worker that served it (the
        payload's ``pid`` says who answered).
        """
        query = query or {}
        limit: Optional[int] = None
        if "limit" in query:
            try:
                limit = max(0, int(query["limit"]))
            except (TypeError, ValueError):
                return 400, {"error": "limit must be an integer"}
        trace_id = query.get("trace") or None
        spans = self.tracer.drain(limit=limit, trace_id=trace_id)
        if query.get("format") == "chrome":
            return 200, chrome_trace(spans, service=self.tracer.service)
        return 200, {
            "spans": spans,
            "count": len(spans),
            "sample": self.tracer.sample,
            "pid": os.getpid(),
        }

    def versions(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/versions``: what the artifact root currently holds."""
        active = (
            self.registry.active().version.name if self.registry.has_model else None
        )
        return 200, {
            "active": active,
            "pinned": self.registry.pinned_version,
            "versions": [
                {
                    "name": v.name,
                    "digest": v.digest,
                    "created_at": v.created_at,
                    "active": v.name == active,
                }
                for v in self.registry.versions()
            ],
        }

    def reload(self) -> Tuple[int, Dict[str, Any]]:
        """``POST /-/reload``: hot-swap to the pinned-or-latest version."""
        try:
            swapped, version = self.registry.reload()
        except NoModelError as exc:
            return 503, {"error": str(exc)}
        except Exception as exc:
            # A corrupt/half-readable target: the active version keeps
            # serving (reload never tears it down), report the failure.
            return 500, {"error": f"reload failed: {type(exc).__name__}: {exc}"}
        if swapped:
            self.metrics.counters.inc(
                "repro_server_model_swaps_total", {"trigger": "reload"}
            )
        return 200, {"reloaded": swapped, "version": version.name}

    def metrics_text(self) -> str:
        """``GET /metrics``: Prometheus text exposition of all collectors."""
        gauges: List[Tuple[str, Dict[str, str], float]] = [
            (
                "repro_server_uptime_seconds",
                {},
                time.monotonic() - self.started_at,
            ),
            ("repro_server_queue_depth", {}, float(self.batcher.queue_depth)),
            ("repro_server_flushes_total", {}, float(self.batcher.flushes)),
            (
                "repro_server_registry_swaps_total",
                {},
                float(self.registry.swaps),
            ),
            (
                "repro_server_registry_reload_errors_total",
                {},
                float(self.registry.reload_errors),
            ),
            (
                "repro_server_quarantined_versions",
                {},
                float(len(self.registry.quarantined)),
            ),
            ("repro_server_degraded", {}, 1.0 if self.degraded else 0.0),
            ("repro_server_draining", {}, 1.0 if self.draining else 0.0),
            ("repro_server_trace_sample", {}, self.tracer.sample),
        ]
        if self.breaker is not None:
            gauges.extend(
                [
                    (
                        "repro_server_breaker_opens_total",
                        {},
                        float(self.breaker.opens),
                    ),
                    (
                        "repro_server_breaker_rejections_total",
                        {},
                        float(self.breaker.rejections),
                    ),
                ]
            )
        if self.registry.has_model:
            handle = self.registry.active()
            stats = handle.service.stats()
            gauges.extend(
                [
                    (
                        "repro_server_model_info",
                        {"version": handle.version.name},
                        1.0,
                    ),
                    ("repro_server_patients_scored_total", {}, float(stats.patients_scored)),
                    ("repro_server_explanation_cache_hits_total", {}, float(stats.cache_hits)),
                    ("repro_server_explanation_cache_misses_total", {}, float(stats.cache_misses)),
                    ("repro_server_explanation_cache_hit_rate", {}, stats.cache_hit_rate),
                ]
            )
        if self.worker_info is not None:
            gauges.append(
                (
                    "repro_server_worker_info",
                    {
                        "worker": str(self.worker_info["worker"]),
                        "pid": str(self.worker_info["pid"]),
                    },
                    1.0,
                )
            )
        text = self.metrics.render(extra_gauges=gauges)
        if self.metrics_extra is not None:
            text += self.metrics_extra()
        return text

    def stats_snapshot(self) -> Dict[str, Any]:
        """Plain-dict counters for the pool's cross-process stats board.

        Everything a sibling process needs to aggregate this gateway's
        traffic (see :class:`repro.server.stats.StatsBoard`): request
        and 5xx totals from the counters, batcher/registry state, and
        the served version.  JSON-safe by construction.
        """
        requests_total = 0
        errors_total = 0
        for name, labels, value in self.metrics.counters.items():
            if name == "repro_server_requests_total":
                requests_total += value
                if labels.get("status", "").startswith("5"):
                    errors_total += value
        snap: Dict[str, Any] = {
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "requests_total": requests_total,
            "errors_total": errors_total,
            "flushes": self.batcher.flushes,
            "queue_depth": self.batcher.queue_depth,
            "swaps": self.registry.swaps,
        }
        if self.registry.has_model:
            handle = self.registry.active()
            snap["version"] = handle.version.name
            snap["patients_scored"] = handle.service.stats().patients_scored
        if self.worker_info is not None:
            snap.update(self.worker_info)
        return snap

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the watcher and the batcher (flushing queued requests)."""
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=5.0)
        self.batcher.close(flush_remaining=True)
        if self._trace_sink is not None:
            self._trace_sink.close()

    def __enter__(self) -> "GatewayApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_json_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body, raising :class:`RequestError` on bad JSON."""
    if not raw:
        raise RequestError("empty request body (expected JSON)")
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise RequestError(f"invalid JSON: {exc}") from None
    except UnicodeDecodeError:
        # json.loads decodes bytes itself; non-UTF-8 noise raises this
        # instead of JSONDecodeError and must be the same client error.
        raise RequestError("invalid JSON: request body is not UTF-8") from None
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    return body
