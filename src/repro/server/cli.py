"""The ``repro-serve`` command line: run the online gateway.

Installed as a console script by ``setup.py`` and runnable without
installation as ``python -m repro.server``::

    repro-serve models/                     # serve latest published version
    repro-serve models/ --port 9000 --watch-interval 5
    repro-serve models/ --pin v0001-1f0f2a9c
    repro-serve path/to/model_dir           # a bare artifact dir works too
    repro-serve models/ --max-batch-size 64 --max-wait-ms 3
    repro-serve models/ --workers 4         # pre-fork pool, mmap'd weights

The positional argument is an *artifact root* (subdirectories published
by ``repro publish`` / :func:`repro.server.registry.publish_artifact`) or
a single ``DSSDDI.save`` artifact directory.  ``--watch-interval N``
hot-swaps automatically when a new version lands; ``POST /-/reload``
always triggers a swap on demand.

``--workers N`` switches to the pre-fork pool
(:mod:`repro.server.pool`): the parent binds the socket and supervises,
N forked workers serve it, each memory-mapping the artifact so the model
weights exist once in physical memory however many workers run.  Without
``--workers`` the classic single-process gateway runs, unchanged.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from ..core.config import ServerConfig
from .app import GatewayApp
from .http import build_server
from .registry import ModelRegistry, NoModelError, scan_versions


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for docs and tests)."""
    defaults = ServerConfig()
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Online serving gateway for DSSDDI artifacts: micro-batched "
            "/v1/suggest, /v1/explain, /healthz, /metrics, hot-swap reload."
        ),
    )
    parser.add_argument(
        "root",
        help="artifact root (versions published by 'repro publish') or a "
        "single DSSDDI.save artifact directory",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="run a pre-fork pool of N worker processes over one shared "
        "listening socket (omit for the single-process gateway)",
    )
    parser.add_argument(
        "--stats-dir", default=None,
        help="pool only: directory for pool.json and per-worker stats "
        "snapshots (default: a fresh temp directory, printed at startup)",
    )
    parser.add_argument(
        "--mmap", dest="mmap_artifacts", action="store_true", default=None,
        help="memory-map artifact arrays instead of copying them "
        "(the pool default; opt-in for the single-process gateway)",
    )
    parser.add_argument(
        "--no-mmap", dest="mmap_artifacts", action="store_false",
        help="load artifact arrays as in-memory copies even in the pool",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=defaults.drain_timeout_s,
        help="pool only: seconds a SIGTERM'd worker waits for in-flight "
        "requests before giving up",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=defaults.stats_interval_s,
        help="pool only: seconds between per-worker stats snapshots",
    )
    parser.add_argument(
        "--max-batch-size", type=int, default=defaults.max_batch_size,
        help="micro-batch flush size trigger (1 disables coalescing)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=defaults.max_wait_ms,
        help="micro-batch flush time trigger in milliseconds",
    )
    parser.add_argument(
        "--score-block", type=int, default=defaults.score_block,
        help="fixed-shape scoring block for bitwise batch-independent "
        "scores (0 = legacy variable-shape scoring)",
    )
    parser.add_argument(
        "--pin", dest="pinned_version", default=None,
        help="serve exactly this version instead of the latest",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=defaults.watch_interval_s,
        help="seconds between artifact-root polls for auto hot-swap "
        "(0 disables the watcher)",
    )
    parser.add_argument(
        "--max-request-rows", type=int, default=defaults.max_request_rows,
        help="per-request cap on patient rows",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=defaults.deadline_ms,
        help="per-request time budget (queue wait + scoring) in "
        "milliseconds; expired requests get 503 + Retry-After "
        "(0 disables)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=defaults.queue_limit,
        help="shed new requests with 503 once this many patient rows are "
        "queued in the micro-batcher (0 = unbounded)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=defaults.breaker_threshold,
        help="consecutive scoring failures that trip the circuit breaker "
        "into degraded mode (0 disables the breaker)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=defaults.breaker_cooldown_s,
        help="seconds a tripped breaker rejects requests before probing "
        "the scoring path again",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=defaults.trace_sample,
        help="fraction of requests traced by repro.obs (0 = only "
        "requests carrying an X-Repro-Trace header, 1 = everything); "
        "spans are served by GET /v1/trace",
    )
    parser.add_argument(
        "--trace-ring", type=int, default=defaults.trace_ring,
        help="finished spans kept in memory per process for GET /v1/trace",
    )
    parser.add_argument(
        "--trace-log", default=defaults.trace_log, metavar="FILE",
        help="append every finished span to this JSONL file "
        "(size-rotated; off by default)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    """Build a validated :class:`ServerConfig` from parsed CLI flags."""
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers is not None else 1,
        mmap_artifacts=args.mmap_artifacts,
        drain_timeout_s=args.drain_timeout,
        stats_interval_s=args.stats_interval,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        score_block=args.score_block,
        max_request_rows=args.max_request_rows,
        pinned_version=args.pinned_version,
        watch_interval_s=args.watch_interval,
        deadline_ms=args.deadline_ms,
        queue_limit=args.queue_limit,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        trace_sample=args.trace_sample,
        trace_ring=args.trace_ring,
        trace_log=args.trace_log,
    )
    config.validate()
    return config


def _run_pool(args: argparse.Namespace, config: ServerConfig) -> int:
    """The ``--workers N`` path: supervise a pre-fork pool until SIGTERM."""
    from .pool import WorkerSupervisor

    # Fail fast in the parent (exit 2 + hint) rather than letting every
    # forked worker crash-loop against an empty root.
    if not scan_versions(args.root):
        print(f"error: no model versions under {args.root}", file=sys.stderr)
        print(
            "hint: publish one with "
            "'repro publish --scale tiny --model-root <root>' or point "
            "repro-serve at a DSSDDI.save directory",
            file=sys.stderr,
        )
        return 2
    stats_dir = args.stats_dir or tempfile.mkdtemp(prefix="repro-pool-")
    # Workers default to mmap (the point of the pool: one physical copy
    # of the weights); --no-mmap restores per-worker copies.
    mmap_mode = None if config.mmap_artifacts is False else "r"
    supervisor = WorkerSupervisor(
        args.root,
        config,
        stats_dir,
        verbose=args.verbose,
        mmap_mode=mmap_mode,
    )
    print(
        f"pool: {config.workers} workers (supervisor pid {os.getpid()}) "
        f"on http://{supervisor.host}:{supervisor.port}"
    )
    print(
        f"pool: artifacts {'memory-mapped' if mmap_mode else 'copied'}; "
        f"stats + pool.json in {stats_dir}"
    )
    print(
        f"micro-batching: max_batch_size={config.max_batch_size}, "
        f"max_wait_ms={config.max_wait_ms}, score_block={config.score_block}; "
        f"watch_interval_s={config.watch_interval_s}, "
        f"drain_timeout_s={config.drain_timeout_s}",
        flush=True,
    )
    return supervisor.run()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.workers is not None:
        return _run_pool(args, config)
    registry = ModelRegistry(
        args.root,
        pinned_version=config.pinned_version,
        score_block=config.score_block,  # 0 is an explicit "legacy path"
        mmap_mode="r" if config.mmap_artifacts else None,
    )
    try:
        app = GatewayApp(registry, config)
    except NoModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: publish one with "
            "'repro publish --scale tiny --model-root <root>' or point "
            "repro-serve at a DSSDDI.save directory",
            file=sys.stderr,
        )
        return 2
    server = build_server(app, host=config.host, port=config.port, verbose=args.verbose)
    handle = registry.active()
    print(
        f"serving {handle.version.name} "
        f"(drugs={handle.service.num_drugs}, "
        f"feature_dim={handle.service.feature_dim}) "
        f"on http://{config.host}:{server.server_address[1]}"
    )
    print(
        f"micro-batching: max_batch_size={config.max_batch_size}, "
        f"max_wait_ms={config.max_wait_ms}, score_block={config.score_block}; "
        f"watch_interval_s={config.watch_interval_s}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
