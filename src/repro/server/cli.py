"""The ``repro-serve`` command line: run the online gateway.

Installed as a console script by ``setup.py`` and runnable without
installation as ``python -m repro.server``::

    repro-serve models/                     # serve latest published version
    repro-serve models/ --port 9000 --watch-interval 5
    repro-serve models/ --pin v0001-1f0f2a9c
    repro-serve path/to/model_dir           # a bare artifact dir works too
    repro-serve models/ --max-batch-size 64 --max-wait-ms 3

The positional argument is an *artifact root* (subdirectories published
by ``repro publish`` / :func:`repro.server.registry.publish_artifact`) or
a single ``DSSDDI.save`` artifact directory.  ``--watch-interval N``
hot-swaps automatically when a new version lands; ``POST /-/reload``
always triggers a swap on demand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.config import ServerConfig
from .app import GatewayApp
from .http import build_server
from .registry import ModelRegistry, NoModelError


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for docs and tests)."""
    defaults = ServerConfig()
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Online serving gateway for DSSDDI artifacts: micro-batched "
            "/v1/suggest, /v1/explain, /healthz, /metrics, hot-swap reload."
        ),
    )
    parser.add_argument(
        "root",
        help="artifact root (versions published by 'repro publish') or a "
        "single DSSDDI.save artifact directory",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port)
    parser.add_argument(
        "--max-batch-size", type=int, default=defaults.max_batch_size,
        help="micro-batch flush size trigger (1 disables coalescing)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=defaults.max_wait_ms,
        help="micro-batch flush time trigger in milliseconds",
    )
    parser.add_argument(
        "--score-block", type=int, default=defaults.score_block,
        help="fixed-shape scoring block for bitwise batch-independent "
        "scores (0 = legacy variable-shape scoring)",
    )
    parser.add_argument(
        "--pin", dest="pinned_version", default=None,
        help="serve exactly this version instead of the latest",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=defaults.watch_interval_s,
        help="seconds between artifact-root polls for auto hot-swap "
        "(0 disables the watcher)",
    )
    parser.add_argument(
        "--max-request-rows", type=int, default=defaults.max_request_rows,
        help="per-request cap on patient rows",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    """Build a validated :class:`ServerConfig` from parsed CLI flags."""
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        score_block=args.score_block,
        max_request_rows=args.max_request_rows,
        pinned_version=args.pinned_version,
        watch_interval_s=args.watch_interval,
    )
    config.validate()
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = ModelRegistry(
        args.root,
        pinned_version=config.pinned_version,
        score_block=config.score_block,  # 0 is an explicit "legacy path"
    )
    try:
        app = GatewayApp(registry, config)
    except NoModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: publish one with "
            "'repro publish --scale tiny --model-root <root>' or point "
            "repro-serve at a DSSDDI.save directory",
            file=sys.stderr,
        )
        return 2
    server = build_server(app, host=config.host, port=config.port, verbose=args.verbose)
    handle = registry.active()
    print(
        f"serving {handle.version.name} "
        f"(drugs={handle.service.num_drugs}, "
        f"feature_dim={handle.service.feature_dim}) "
        f"on http://{config.host}:{server.server_address[1]}"
    )
    print(
        f"micro-batching: max_batch_size={config.max_batch_size}, "
        f"max_wait_ms={config.max_wait_ms}, score_block={config.score_block}; "
        f"watch_interval_s={config.watch_interval_s}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
