"""Resilience primitives for the gateway: circuit breaker + backoff.

Two small, dependency-free pieces shared by the server and the load
generator:

* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine around the scoring path.  Consecutive failures trip it open;
  while open every request is rejected instantly (the gateway answers
  503 + ``Retry-After`` instead of queueing doomed work behind a broken
  model); after a cooldown exactly one probe request is let through and
  its outcome decides between closing the breaker and re-opening it.
* :func:`backoff_delay` — capped exponential backoff with full jitter
  (delay drawn uniformly from ``[0, min(cap, base * 2**attempt)]``),
  the retry schedule the load generator uses so that a shed burst does
  not come back as a synchronized thundering herd.

Both are deterministic under test: the breaker takes an injectable
clock, the backoff takes an explicit ``random.Random``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

#: Breaker states (exposed via :attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; probe after cooldown.

    Thread-safe; all transitions happen under one lock.  Usage::

        breaker = CircuitBreaker(threshold=5, cooldown_s=2.0)
        if not breaker.allow():
            return 503  # degraded — retry after breaker.retry_after()
        try:
            result = score(...)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()

    Args:
        threshold: consecutive failures that open the breaker (>= 1).
        cooldown_s: seconds the breaker stays open before letting one
            half-open probe through.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Times the breaker tripped open (monotonic counter, metrics).
        self.opens = 0
        #: Requests rejected while open (monotonic counter, metrics).
        self.rejections = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (non-mutating)."""
        with self._lock:
            if self._state == OPEN and self._cooled_down():
                return HALF_OPEN
            return self._state

    def _cooled_down(self) -> bool:
        return self._clock() - self._opened_at >= self.cooldown_s

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        Closed: always.  Open: no, until the cooldown elapses.  After
        the cooldown exactly one caller gets ``True`` (the half-open
        probe); everyone else keeps getting ``False`` until the probe's
        outcome is recorded.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN and self._cooled_down():
                self._state = HALF_OPEN
                self._probe_inflight = False
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """A scoring call succeeded: close the breaker, reset counters."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A scoring call failed: count it, trip open at the threshold.

        A failed half-open probe re-opens immediately (one bad probe is
        proof enough that the fault persists).
        """
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.threshold
            ):
                if self._state != OPEN:
                    self.opens += 1
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe window (0 when serving)."""
        with self._lock:
            if self._state == CLOSED:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))


def backoff_delay(
    attempt: int,
    base_s: float,
    rng,
    cap_s: float = 30.0,
    retry_after_s: Optional[float] = None,
) -> float:
    """Jittered exponential delay before retry number ``attempt`` (0-based).

    Full jitter: uniform in ``[0, min(cap_s, base_s * 2**attempt)]``.
    When the server sent a ``Retry-After`` hint, the delay never
    undercuts it — the server knows when it expects to recover.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    ceiling = min(cap_s, base_s * (2.0 ** attempt))
    delay = rng.uniform(0.0, ceiling)
    if retry_after_s is not None:
        delay = max(delay, float(retry_after_s))
    return delay
