"""Versioned model registry: publish, scan, pin, hot-swap, prune.

An *artifact root* is a directory whose immediate subdirectories are
PR-1-format model artifacts (``manifest.json`` + ``arrays.npz``), one per
published version::

    models/
      v0001-1f0f2a9c/     # publish_artifact names: v<seq>-<digest8>
      v0002-8e77b012/
      current -> ...      # (no symlinks: the registry picks by name)

:func:`publish_artifact` writes a fitted system (or copies an existing
artifact directory) into the root atomically — serialize into a temp
directory, then one ``os.replace`` — so a gateway watching the root never
observes a half-written version.  Publishing content that is
byte-identical to an existing version is a no-op returning the existing
version, which makes re-running a pipeline publish stage idempotent.

:class:`ModelRegistry` serves the *latest* version (max by name, i.e.
publication order) or a pinned one, as a :class:`ServingHandle` bundling
the loaded :class:`repro.serving.SuggestionService` with its version
metadata.  Hot-swap is an atomic reference swap: in-flight requests keep
the handle they resolved, new requests see the new one, nothing is ever
torn down under a request — zero dropped requests by construction.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import atomicio, chaos
from ..core.config import ServingConfig
from ..serving.artifact import ARRAYS_NAME, MANIFEST_NAME, save_artifact
from ..serving.service import SuggestionService

PathLike = Union[str, Path]


class NoModelError(RuntimeError):
    """Raised when the registry has no loadable version to serve."""


@dataclass(frozen=True)
class ModelVersion:
    """One published version found in the artifact root.

    Attributes:
        name: directory name, ``v<seq>-<digest8>`` for published
            versions (sorting by name sorts by publication order).
        path: artifact directory.
        digest: sha256 over the artifact payload files.
        created_at: directory mtime (seconds since epoch).
    """

    name: str
    path: Path
    digest: str
    created_at: float


@dataclass(frozen=True)
class ServingHandle:
    """An immutable (version, loaded service) pair handed to requests.

    Requests resolve a handle once and use it for their whole lifetime;
    the registry swaps its *reference* on reload, never the handle's
    contents, which is what makes hot-swap drop-free.
    """

    version: ModelVersion
    service: SuggestionService


#: Memoized digests keyed by (path, per-file mtime_ns + size).  Version
#: directories are immutable (atomic rename, never edited in place), so
#: a stat-stable artifact need not be re-read — /healthz and the file
#: watcher call scan_versions frequently, and hashing every version's
#: arrays.npz on each poll would be O(registry size) I/O per probe.
_DIGEST_CACHE: dict = {}
_DIGEST_CACHE_MAX = 256


def artifact_digest(path: PathLike) -> str:
    """sha256 over the artifact's payload files (manifest + arrays).

    Memoized on the files' (mtime_ns, size): artifact directories are
    write-once, so a matching stat means the cached digest is current.
    """
    path = Path(path)
    stats = []
    for name in (MANIFEST_NAME, ARRAYS_NAME):
        stat = (path / name).stat()
        stats.append((name, stat.st_mtime_ns, stat.st_size))
    key = (str(path), tuple(stats))
    cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for name in (MANIFEST_NAME, ARRAYS_NAME):
        h.update(name.encode("utf-8"))
        h.update((path / name).read_bytes())
    digest = h.hexdigest()
    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
        _DIGEST_CACHE.clear()  # tiny entries; wholesale reset is fine
    _DIGEST_CACHE[key] = digest
    return digest


def is_artifact_dir(path: PathLike) -> bool:
    """Whether ``path`` holds a complete PR-1-format artifact."""
    path = Path(path)
    return (path / MANIFEST_NAME).is_file() and (path / ARRAYS_NAME).is_file()


def _version_entry(path: Path) -> ModelVersion:
    return ModelVersion(
        name=path.name,
        path=path,
        digest=artifact_digest(path),
        created_at=path.stat().st_mtime,
    )


def scan_versions(root: PathLike) -> List[ModelVersion]:
    """Complete versions under ``root``, sorted by name (oldest first).

    A root that is itself a single artifact directory is reported as one
    pseudo-version named after the directory, so ``repro-serve
    path/to/model`` works without a publish step.
    """
    root = Path(root)
    if is_artifact_dir(root):
        try:
            return [_version_entry(root)]
        except OSError:
            return []
    if not root.is_dir():
        return []
    versions: List[ModelVersion] = []
    for child in root.iterdir():
        # Dot-prefixed directories are in-flight publishes (the temp
        # dir before its atomic rename) — never versions.
        if not child.is_dir() or child.name.startswith("."):
            continue
        if not is_artifact_dir(child):
            continue
        try:
            versions.append(_version_entry(child))
        except OSError:
            # The directory raced us: a non-atomic publisher still
            # filling it in, or a pruner removing it between our
            # existence check and the stat/read inside _version_entry.
            # Skip it this scan — the next poll sees the settled state.
            continue
    versions.sort(key=lambda v: v.name)
    return versions


def _resolve_artifact_source(source: Path) -> Path:
    """Map a publish source path to the artifact directory inside it.

    Accepts, in order of specificity:

    * an artifact directory itself (``manifest.json`` + ``arrays.npz``);
    * a single :class:`repro.train.TrainState` checkpoint whose atomic
      write embedded a servable snapshot (``<ckpt>/artifact``);
    * a checkpoint *root* written by the :class:`repro.train.Checkpoint`
      callback (``epoch-*/`` subdirectories) — resolves to the newest
      checkpoint's snapshot, i.e. the best-so-far model of a running
      (or killed) fit.
    """
    if is_artifact_dir(source):
        return source
    if is_artifact_dir(source / "artifact"):
        return source / "artifact"
    from ..train import latest_checkpoint

    newest = latest_checkpoint(source)
    if newest is not None and is_artifact_dir(newest / "artifact"):
        return newest / "artifact"
    return source


def publish_artifact(
    system_or_path,
    root: PathLike,
    reuse_identical: bool = True,
) -> ModelVersion:
    """Publish a fitted system (or copy an artifact dir) into ``root``.

    ``system_or_path`` may be a fitted :class:`repro.core.DSSDDI`, an
    artifact directory, or a training checkpoint (a single
    ``TrainState`` checkpoint directory, or the checkpoint root of a
    still-running/killed fit — see :func:`_resolve_artifact_source`), in
    which case the newest embedded servable snapshot is published: the
    registry serves the best-so-far model without waiting for the fit to
    finish.

    Serializes into a temp directory inside ``root`` and promotes it with
    one atomic ``os.replace`` under ``v<seq>-<digest8>``.  When
    ``reuse_identical`` is set (default) and some existing version already
    has the same payload digest, that version is returned unchanged —
    publishing is idempotent.  Pass ``reuse_identical=False`` to force a
    new version directory even for identical content (used by the
    hot-swap tests to swap between byte-identical artifacts).

    Concurrent publishers are safe: the sequence number counts every
    ``v<seq>-…`` directory name (complete or not), and a lost
    ``os.replace`` race re-scans and claims the next slot instead of
    failing — at worst two same-instant publishers of different content
    get adjacent (or digest-tiebroken same-seq) names, never a crash or
    a half-written version.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=".publish-", dir=root))
    try:
        chaos.failpoint("registry.publish.setup")
        if isinstance(system_or_path, (str, Path)):
            source = _resolve_artifact_source(Path(system_or_path))
            if not is_artifact_dir(source):
                raise FileNotFoundError(
                    f"no artifact (or servable checkpoint) at {system_or_path}"
                )
            for name in (MANIFEST_NAME, ARRAYS_NAME):
                shutil.copy2(source / name, tmp / name)
        else:
            save_artifact(system_or_path, tmp)
        chaos.failpoint("registry.publish.payload")
        # A version must be durable before it is visible: a gateway that
        # hot-swaps onto it assumes the bytes survive a power cut.
        if chaos.fsync_enabled("registry.publish.fsync"):
            atomicio.fsync_tree(tmp)
        digest = artifact_digest(tmp)
        for _attempt in range(100):
            if reuse_identical:
                for version in scan_versions(root):
                    if version.digest == digest:
                        shutil.rmtree(tmp, ignore_errors=True)
                        return version
            # Claim the next free sequence number.  Counting *names*
            # (not just complete artifacts) means a conflicting or
            # junk-filled v<seq> directory is stepped over, not fought.
            seq = 1 + max(
                (
                    int(child.name[1:5])
                    for child in root.iterdir()
                    if child.is_dir() and _is_published_name(child.name)
                ),
                default=0,
            )
            final = root / f"v{seq:04d}-{digest[:8]}"
            chaos.failpoint("registry.publish.rename")
            try:
                os.replace(tmp, final)
            except OSError:
                # Lost the race: someone promoted into `final` between
                # our scan and our rename.  If their content matches
                # ours the publish already happened; otherwise rescan
                # and claim the next slot.
                if is_artifact_dir(final) and artifact_digest(final) == digest:
                    shutil.rmtree(tmp, ignore_errors=True)
                    return _version_entry(final)
                continue
            chaos.failpoint("registry.publish.after")
            atomicio.fsync_dir(root)
            return _version_entry(final)
        raise RuntimeError(
            f"could not claim a version slot under {root} after 100 attempts"
        )
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _is_published_name(name: str) -> bool:
    return (
        len(name) >= 5
        and name.startswith("v")
        and name[1:5].isdigit()
    )


def prune_versions(root: PathLike, keep_last: int) -> List[str]:
    """Delete all but the newest ``keep_last`` published versions.

    Only ``v<seq>-...`` directories participate; a pseudo-version root
    (a bare artifact dir) is never pruned.  Returns the removed names.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    versions = [
        v for v in scan_versions(root) if _is_published_name(v.name)
    ]
    removed: List[str] = []
    for version in versions[: max(0, len(versions) - keep_last)]:
        # Rename-to-trash first: a registry mid-load on this version
        # sees it fully there or fully gone, never half-deleted.
        atomicio.remove_dir(version.path)
        removed.append(version.name)
    return removed


class ModelRegistry:
    """Serve a pinned-or-latest artifact version with atomic hot-swap.

    Args:
        root: artifact root (or a single artifact directory).
        pinned_version: serve exactly this version name; ``None`` serves
            the latest.
        score_block: when not ``None``, overrides the artifact's serving
            ``score_block`` — a value >= 2 forces fixed-shape
            deterministic scoring, an explicit 0 forces the legacy
            variable-shape path, whatever the artifact was saved with.
        mmap_mode: ``"r"`` memory-maps artifact arrays on load instead
            of copying them (``None`` = copy).  The pre-fork worker pool
            sets ``"r"`` so N workers share one physical copy of the
            weights through the page cache.

    Usage::

        registry = ModelRegistry("models/")
        registry.reload()                    # load pinned-or-latest
        handle = registry.active()           # per-request resolution
        handle.service.suggest(features)
        registry.reload()                    # hot-swap if a new version landed
    """

    def __init__(
        self,
        root: PathLike,
        pinned_version: Optional[str] = None,
        score_block: Optional[int] = None,
        mmap_mode: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.pinned_version = pinned_version
        self.score_block = score_block
        self.mmap_mode = mmap_mode
        self._swap_lock = threading.Lock()
        self._active: Optional[ServingHandle] = None
        self.swaps = 0
        self.reload_errors = 0
        #: ``"name@digest8" -> reason`` for versions that failed to load
        #: (corrupt arrays, integrity mismatch, unreadable manifest).
        #: Quarantined versions are never retried — keying on content
        #: digest means a *republished* (fixed) version under the same
        #: name gets a fresh chance, while the broken bytes stay dead.
        #: Entries whose content vanishes from disk are pruned on the
        #: next :meth:`reload`, so the dict stays bounded.
        self.quarantined: Dict[str, str] = {}
        #: Optional observer called as ``trace_events(name, fields)``
        #: on swap and quarantine.  The gateway wires this to its
        #: tracer so registry lifecycle shows up as instant spans;
        #: observer errors are swallowed — telemetry must never block
        #: a hot-swap.
        self.trace_events: Optional[Callable[[str, Dict[str, Any]], None]] = None

    def _emit_event(self, name: str, fields: Dict[str, Any]) -> None:
        observer = self.trace_events
        if observer is None:
            return
        try:
            observer(name, fields)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def versions(self) -> List[ModelVersion]:
        """Scan the artifact root (oldest first)."""
        return scan_versions(self.root)

    def target_version(self) -> ModelVersion:
        """The version the registry should be serving right now."""
        versions = self.versions()
        if not versions:
            raise NoModelError(f"no model versions under {self.root}")
        if self.pinned_version is not None:
            for version in versions:
                if version.name == self.pinned_version:
                    return version
            raise NoModelError(
                f"pinned version {self.pinned_version!r} not found under "
                f"{self.root} (have: {[v.name for v in versions]})"
            )
        return versions[-1]

    def active(self) -> ServingHandle:
        """The currently served handle (raises :class:`NoModelError`)."""
        handle = self._active
        if handle is None:
            raise NoModelError("registry has not loaded a model yet")
        return handle

    @property
    def has_model(self) -> bool:
        """Whether a version is currently loaded and servable."""
        return self._active is not None

    @staticmethod
    def _quarantine_key(version: ModelVersion) -> str:
        return f"{version.name}@{version.digest[:8]}"

    def _candidate_versions(self, versions: List[ModelVersion]) -> List[ModelVersion]:
        """Versions to try serving, best first (raises NoModelError)."""
        if not versions:
            raise NoModelError(f"no model versions under {self.root}")
        if self.pinned_version is not None:
            for version in versions:
                if version.name == self.pinned_version:
                    # Pinning means exactly this version: no fallback.
                    return [version]
            raise NoModelError(
                f"pinned version {self.pinned_version!r} not found under "
                f"{self.root} (have: {[v.name for v in versions]})"
            )
        return list(reversed(versions))  # newest first

    def reload(self) -> Tuple[bool, ModelVersion]:
        """Load the best servable version if it differs from the active one.

        Returns ``(swapped, version)`` where ``version`` is what is being
        served after the call.  The expensive load happens outside any
        request path; the swap itself is a single reference assignment,
        so concurrent requests either keep the old handle or get the new
        one — never a broken in-between.

        A version that fails to load — corrupt ``arrays.npz``, an
        :class:`~repro.serving.artifact.ArtifactIntegrityError` digest
        mismatch, an unreadable manifest — is **quarantined** (recorded
        in :attr:`quarantined`, never retried for the same content) and
        the registry falls back to the next-newest loadable version.
        When nothing newer loads, the active handle keeps serving
        (last-known-good); :class:`NoModelError` is raised only when
        there is no active handle *and* no loadable version.  Every
        failed load attempt counts in ``reload_errors``.
        """
        with self._swap_lock:
            current = self._active
            try:
                versions = self.versions()
                candidates = self._candidate_versions(versions)
            except BaseException:
                self.reload_errors += 1
                raise
            # Quarantine tracks *present* broken versions only: entries
            # whose (name, digest) no longer exist on disk — pruned
            # versions, or torn snapshots of a non-atomic publisher that
            # has since finished writing — are dropped, so the dict (and
            # the /healthz report) stays bounded by the registry size.
            live = {self._quarantine_key(v) for v in versions}
            for key in [k for k in self.quarantined if k not in live]:
                del self.quarantined[key]
            for target in candidates:
                key = self._quarantine_key(target)
                if key in self.quarantined:
                    continue
                if (
                    current is not None
                    and current.version.name == target.name
                    and current.version.digest == target.digest
                ):
                    return False, current.version
                try:
                    service = self._load_service(target)
                except Exception as exc:
                    self.reload_errors += 1
                    self.quarantined[key] = f"{type(exc).__name__}: {exc}"
                    self._emit_event(
                        "registry.quarantine",
                        {"version": key, "reason": self.quarantined[key]},
                    )
                    continue
                self._active = ServingHandle(version=target, service=service)
                self.swaps += 1
                self._emit_event(
                    "registry.swap",
                    {
                        "version": target.name,
                        "digest": target.digest[:8],
                        "previous": (
                            current.version.name if current is not None else None
                        ),
                    },
                )
                return True, target
            if current is not None:
                # Everything newer is quarantined: keep last-known-good.
                return False, current.version
            self.reload_errors += 1
            raise NoModelError(
                f"no loadable model versions under {self.root} "
                f"({len(self.quarantined)} quarantined: "
                f"{sorted(self.quarantined)})"
            )

    def _load_service(self, version: ModelVersion) -> SuggestionService:
        service = SuggestionService.load(version.path, mmap_mode=self.mmap_mode)
        if self.score_block is not None:
            config: ServingConfig = replace(
                service.config, score_block=self.score_block
            )
            service = SuggestionService(service._system, config=config)
        return service

    def maybe_reload(self) -> bool:
        """Best-effort :meth:`reload` for the file watcher (no raise).

        Failures are already counted by :meth:`reload` itself.
        """
        try:
            swapped, _ = self.reload()
            return swapped
        except Exception:
            return False

    def prune(self, keep_last: int) -> List[str]:
        """Prune old published versions, never the active one.

        Keeps the newest ``keep_last`` versions plus whatever is
        currently active (relevant when serving a pinned old version);
        returns the removed names.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        active = self._active.version.name if self._active else None
        versions = [
            v for v in self.versions() if _is_published_name(v.name)
        ]
        removed: List[str] = []
        for version in versions[: max(0, len(versions) - keep_last)]:
            if version.name == active:
                continue
            atomicio.remove_dir(version.path)
            removed.append(version.name)
        return removed

    def __repr__(self) -> str:
        active = self._active.version.name if self._active else None
        return (
            f"ModelRegistry(root={str(self.root)!r}, active={active!r}, "
            f"pinned={self.pinned_version!r}, swaps={self.swaps})"
        )


def watch(
    registry: ModelRegistry,
    interval_s: float,
    stop: threading.Event,
    on_swap=None,
) -> None:
    """Poll the artifact root and hot-swap when a new version lands.

    Runs until ``stop`` is set (the gateway gives it a daemon thread).
    ``on_swap`` is called with the new active version after each swap.
    """
    while not stop.wait(interval_s):
        if registry.maybe_reload() and on_swap is not None:
            try:
                on_swap(registry.active().version)
            except Exception:
                pass  # observer bugs must not kill the watcher
