"""The dynamic micro-batcher: coalesce concurrent requests into batches.

The PR-2 serving stack scores a whole feature matrix in a handful of
matrix products, but an online gateway receives *single-patient* requests
on many threads.  The classic fix is dynamic micro-batching: requests
park in a queue, a dedicated flusher thread drains it, and one scoring
call serves everyone in the batch.  A flush triggers on whichever comes
first:

* **size** — ``max_batch_size`` patient rows are queued, or
* **time** — the oldest queued request has waited ``max_wait_ms``.

``max_batch_size=1`` degenerates to request-at-a-time serving through the
identical code path, which is what the benchmark uses as its batching
ablation.

The flush function is supplied by the gateway::

    flush_fn(stacked_rows, items) -> (per_item_results, context)

where ``stacked_rows`` vertically stacks every queued request's rows and
``items`` is the matching ``[(row_count, meta), ...]``.  It returns one
result per item (the gateway returns each request's score/suggestion row
slices) plus a flush-wide context (the model handle that served the
batch — resolved once per flush, which is what makes hot-swap atomic
from a request's point of view).  Doing the per-request splitting inside
the flush lets the gateway also *batch the post-processing* (one top-k
call for the whole flush), not just the matrix products.

Thread-safety/life-cycle: ``submit`` may be called from any number of
threads; :meth:`MicroBatcher.close` drains the queue, flushes what is
left, and stops the flusher.  Exceptions raised by the flush function
propagate to every request in that flush — one poisoned batch never
wedges the queue.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

FlushFn = Callable[
    [np.ndarray, Sequence[Tuple[int, Any]]], Tuple[Sequence[Any], Any]
]


class BatcherClosed(RuntimeError):
    """Raised by ``submit`` when the batcher has been closed."""


class SubmitTimeout(TimeoutError):
    """Raised by ``submit`` when the flush result did not arrive in time."""


class _Pending:
    """One queued request: its rows/meta, and a slot for the result."""

    __slots__ = ("rows", "meta", "event", "result", "context", "error")

    def __init__(self, rows: np.ndarray, meta: Any) -> None:
        self.rows = rows
        self.meta = meta
        self.event = threading.Event()
        self.result: Any = None
        self.context: Any = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Queue concurrent requests and flush them as one scoring call.

    Args:
        flush_fn: batch executor (see module docstring).
        max_batch_size: flush as soon as this many rows are queued (>= 1).
        max_wait_ms: flush when the oldest request has waited this long.
        on_flush: optional observer called with the flush's request count
            and row count (the gateway feeds its batch-size histogram).

    Usage::

        batcher = MicroBatcher(flush, max_batch_size=32, max_wait_ms=2.0)
        result, ctx = batcher.submit(features, meta=k)  # blocks
        batcher.close()
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        on_flush: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._flush_fn = flush_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self._on_flush = on_flush
        self._cond = threading.Condition()
        self._pending: List[_Pending] = []
        self._pending_rows = 0
        self._closed = False
        self.flushes = 0
        self.rows_flushed = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-micro-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        rows: np.ndarray,
        meta: Any = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Any, Any]:
        """Queue ``rows`` (n, d) and block until their flush completes.

        Returns ``(result, context)`` — this request's entry of the
        flush output plus the flush-wide context.  Raises
        :class:`BatcherClosed` after :meth:`close`, :class:`SubmitTimeout`
        if the result does not arrive within ``timeout`` seconds, and
        re-raises whatever the flush function raised for this batch.
        """
        item = _Pending(rows, meta)
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            self._pending.append(item)
            self._pending_rows += rows.shape[0]
            # Wake the flusher when there is something new to schedule:
            # the first request must start the max-wait clock, and the
            # size trigger must fire immediately.  In-between submits
            # stay silent — the flusher's deadline wait covers them.
            if len(self._pending) == 1 or self._pending_rows >= self.max_batch_size:
                self._cond.notify()
        if not item.event.wait(timeout):
            raise SubmitTimeout(f"no batch result within {timeout}s")
        if item.error is not None:
            raise item.error
        return item.result, item.context

    def close(self, flush_remaining: bool = True) -> None:
        """Stop the flusher; optionally flush whatever is still queued.

        With ``flush_remaining=False`` queued requests fail with
        :class:`BatcherClosed` instead of being scored.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not flush_remaining:
                for item in self._pending:
                    item.error = BatcherClosed("batcher closed before flush")
                    item.event.set()
                self._pending.clear()
                self._pending_rows = 0
            self._cond.notify_all()
        self._thread.join(timeout=10.0)

    @property
    def queue_depth(self) -> int:
        """Number of requests currently waiting for a flush."""
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------
    def _take_batch(self) -> Optional[List[_Pending]]:
        """Block until a flush should happen; pop and return its items.

        Returns ``None`` when closed and drained.  Flush boundaries are
        drawn in whole requests: rows of one request never split across
        flushes, so a flush can exceed ``max_batch_size`` rows when a
        multi-row request straddles the limit.
        """
        with self._cond:
            while True:
                if self._pending:
                    if self._pending_rows >= self.max_batch_size or self._closed:
                        break
                    deadline = time.monotonic() + self.max_wait_s
                    while (
                        self._pending
                        and self._pending_rows < self.max_batch_size
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                    if self._pending:
                        break
                if self._closed:
                    return None
                self._cond.wait()
            batch: List[_Pending] = []
            rows = 0
            while self._pending and rows < self.max_batch_size:
                item = self._pending.pop(0)
                batch.append(item)
                rows += item.rows.shape[0]
            self._pending_rows -= rows
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            total_rows = sum(item.rows.shape[0] for item in batch)
            try:
                # Stacking stays inside the guarded region: a batch that
                # mixes row widths (e.g. requests validated against two
                # models across a hot-swap) must fail *those requests*,
                # never the flusher thread itself.
                stacked = (
                    batch[0].rows
                    if len(batch) == 1
                    else np.concatenate([item.rows for item in batch])
                )
                results, context = self._flush_fn(
                    stacked, [(item.rows.shape[0], item.meta) for item in batch]
                )
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"flush_fn returned {len(results)} results for "
                        f"{len(batch)} requests"
                    )
                for item, result in zip(batch, results):
                    item.result = result
                    item.context = context
            except BaseException as exc:  # delivered, not swallowed
                for item in batch:
                    item.error = exc
            self.flushes += 1
            self.rows_flushed += total_rows
            if self._on_flush is not None:
                try:
                    self._on_flush(len(batch), total_rows)
                except Exception:
                    pass  # an observer bug must not poison the batch
            for item in batch:
                item.event.set()
