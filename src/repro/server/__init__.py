"""Online serving gateway: the network tier over :mod:`repro.serving`.

PR 1 made fit-once/serve-many possible in-process; this package makes it
a *service*: a threaded HTTP gateway that coalesces concurrent requests
into the batched scorer, hot-swaps model versions without dropping a
request, and exposes Prometheus metrics.

* :mod:`repro.server.batcher` — :class:`MicroBatcher`, dynamic
  micro-batching with size + max-wait flush triggers.
* :mod:`repro.server.registry` — :class:`ModelRegistry`,
  :func:`publish_artifact`: versioned artifact root with atomic
  publication, pin-or-latest selection, hot-swap, pruning.
* :mod:`repro.server.metrics` — request counters, latency reservoir
  percentiles, batch-size histogram, Prometheus text rendering.
* :mod:`repro.server.app` — :class:`GatewayApp`, the
  transport-independent request handlers (deadline budgets, admission
  control, degraded mode).
* :mod:`repro.server.resilience` — :class:`CircuitBreaker` around the
  scoring path plus the jittered retry backoff the load generator uses.
* :mod:`repro.server.http` — the stdlib threaded HTTP shim (with
  inherited-socket support and graceful-drain request tracking).
* :mod:`repro.server.pool` — the pre-fork worker pool: one shared
  listening socket, N supervised worker processes, mmap'd artifacts.
* :mod:`repro.server.stats` — the pool's cross-process stats board
  (per-worker JSON snapshots aggregated into ``repro_pool_*`` metrics).
* :mod:`repro.server.loadgen` — closed- and open-loop load generator
  writing ``BENCH_server.json``.
* :mod:`repro.server.cli` — the ``repro-serve`` console script.

Quickstart::

    repro publish --scale small --model-root models/   # pipeline -> artifact
    repro-serve models/ --watch-interval 5             # serve + auto hot-swap
    repro-serve models/ --workers 4                    # pre-fork pool

    curl -s localhost:8035/healthz
    curl -s -X POST localhost:8035/v1/suggest \
         -d '{"features": [[0.1, 0.2, ...]], "k": 3}'

In-process::

    registry = ModelRegistry("models/")
    with GatewayApp(registry, ServerConfig()) as app:
        status, body = app.suggest({"features": x.tolist(), "k": 3})
"""

from ..core.config import ServerConfig
from .app import GatewayApp, RequestError
from .batcher import BatcherClosed, MicroBatcher, SubmitTimeout
from .http import RequestTracker, build_server, serve_in_thread
from .metrics import BatchSizeHistogram, CounterSet, GatewayMetrics, LatencyReservoir
from .pool import WorkerSupervisor, backoff_delay, create_listen_socket, worker_main
from .resilience import CircuitBreaker
from .stats import StatsBoard, read_pool_state, write_pool_state
from .registry import (
    ModelRegistry,
    ModelVersion,
    NoModelError,
    ServingHandle,
    prune_versions,
    publish_artifact,
    scan_versions,
)

# The load generator (repro.server.loadgen) is deliberately not imported
# here: it doubles as a ``python -m repro.server.loadgen`` entry point,
# and importing it from the package __init__ would shadow that module
# execution (runpy's "found in sys.modules" warning).

__all__ = [
    "ServerConfig",
    "GatewayApp",
    "RequestError",
    "MicroBatcher",
    "BatcherClosed",
    "SubmitTimeout",
    "build_server",
    "serve_in_thread",
    "RequestTracker",
    "WorkerSupervisor",
    "worker_main",
    "create_listen_socket",
    "backoff_delay",
    "CircuitBreaker",
    "StatsBoard",
    "read_pool_state",
    "write_pool_state",
    "GatewayMetrics",
    "CounterSet",
    "LatencyReservoir",
    "BatchSizeHistogram",
    "ModelRegistry",
    "ModelVersion",
    "ServingHandle",
    "NoModelError",
    "publish_artifact",
    "scan_versions",
    "prune_versions",
]
