"""Gateway telemetry: counters, latency percentiles, batch histogram.

Everything here is stdlib-only and thread-safe (one lock per collector),
sized for a hot path that records a few numbers per request:

* :class:`CounterSet` — monotonically increasing labelled counters.
* :class:`LatencyReservoir` — reservoir-sampled latency observations with
  exact count/sum, from which ``/metrics`` derives p50/p90/p99.
* :class:`BatchSizeHistogram` — power-of-two bucketed flush sizes, the
  direct view of how well the micro-batcher is coalescing traffic.
* :class:`GatewayMetrics` — the bundle one gateway owns, with
  :meth:`GatewayMetrics.render` producing Prometheus text exposition
  format (counters as ``_total``, the reservoir as a summary with
  quantile labels, the histogram with cumulative ``le`` buckets).

Reservoir sampling (algorithm R) keeps a bounded, uniformly drawn subset
of all observations, so percentiles stay O(reservoir) to compute and the
estimator does not drift toward the most recent burst the way a ring
buffer would.  The RNG is seeded per instance: metrics are statistics,
not model outputs, but a deterministic reservoir makes tests exact.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Upper edges of the batch-size histogram buckets (plus +Inf implied).
BATCH_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Quantiles exposed by the latency summary.
QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Upper edges (seconds) of the per-phase latency histogram: log-spaced
#: from 100 µs to 1 s, wide enough for queue waits under injected chaos
#: sleeps yet fine enough to separate parse (~10 µs) from scoring (~ms).
PHASE_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: ``# HELP`` text for every metric family this module renders itself.
#: App-supplied gauges carry their help inline via ``extra_gauges``.
HELP: Dict[str, str] = {
    "repro_server_request_latency_seconds":
        "End-to-end request latency by endpoint (reservoir summary).",
    "repro_server_batch_size":
        "Coalesced rows per micro-batch flush.",
    "repro_server_phase_latency_seconds":
        "Request lifecycle phase durations "
        "(parse/queue_wait/batch_wait/score/serialize).",
    "repro_server_requests_total":
        "Finished requests by endpoint and HTTP status.",
    "repro_server_shed_total":
        "Requests shed by admission control, deadline, or the breaker.",
    "repro_server_scoring_failures_total":
        "Batch flushes that raised inside the scoring call.",
    "repro_server_model_swaps_total":
        "Model hot-swaps by trigger (reload endpoint or watcher).",
}


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Order matters: backslashes first, or the escapes introduced for
    quotes/newlines would themselves get re-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _help_text(name: str) -> str:
    """HELP text for a family: curated when known, generic otherwise."""
    base = name[:-len("_total")] if name.endswith("_total") else name
    return HELP.get(name) or HELP.get(base) or f"Gateway metric {name}."


class CounterSet:
    """Labelled monotonic counters (name, label-tuple) -> int."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}

    def inc(self, name: str, labels: Optional[Dict[str, str]] = None, by: int = 1) -> None:
        """Add ``by`` to the counter ``name`` with the given labels."""
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            self._values[key] = self._values.get(key, 0) + by

    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> int:
        """Current value (0 if the counter has never been incremented)."""
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            return self._values.get(key, 0)

    def items(self) -> List[Tuple[str, Dict[str, str], int]]:
        """Snapshot of every counter as (name, labels, value)."""
        with self._lock:
            snapshot = dict(self._values)
        return [(name, dict(labels), v) for (name, labels), v in sorted(snapshot.items())]


class LatencyReservoir:
    """Uniform reservoir sample of latency observations (algorithm R).

    Tracks the exact observation count and sum alongside a bounded
    uniform sample, which is all a Prometheus-style summary needs:
    quantiles come from the sample, rate/mean from count and sum.
    """

    def __init__(self, size: int, seed: int = 1299821) -> None:
        if size < 1:
            raise ValueError("reservoir size must be >= 1")
        self.size = size
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._sample: List[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        with self._lock:
            self.count += 1
            self.total += value
            if len(self._sample) < self.size:
                self._sample.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.size:
                    self._sample[slot] = value

    def quantile(self, q: float) -> float:
        """Sample quantile (nearest-rank); 0.0 before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            sample = sorted(self._sample)
        if not sample:
            return 0.0
        rank = min(len(sample) - 1, int(q * len(sample)))
        return sample[rank]

    def snapshot(self) -> Tuple[int, float, List[float]]:
        """(count, sum, sorted sample) under one lock acquisition."""
        with self._lock:
            return self.count, self.total, sorted(self._sample)


class BatchSizeHistogram:
    """Histogram of micro-batch flush sizes over power-of-two buckets."""

    def __init__(self, buckets: Sequence[int] = BATCH_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.total = 0

    def observe(self, size: int) -> None:
        """Record one flush of ``size`` coalesced rows."""
        with self._lock:
            self.count += 1
            self.total += size
            for i, edge in enumerate(self.buckets):
                if size <= edge:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean flush size; 0.0 before any flush."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative buckets as (le, count), ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[str, int]] = []
        running = 0
        for edge, c in zip(self.buckets, counts):
            running += c
            out.append((str(edge), running))
        out.append(("+Inf", running + counts[-1]))
        return out


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds) with exact count/sum.

    Unlike :class:`LatencyReservoir` this is a true Prometheus
    histogram — cumulative ``le`` buckets that aggregate across
    processes — which is what the per-phase decomposition needs: phase
    durations from N pool workers must be summable by a scraper.
    """

    def __init__(self, buckets: Sequence[float] = PHASE_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        with self._lock:
            self.count += 1
            self.total += seconds
            for i, edge in enumerate(self.buckets):
                if seconds <= edge:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """Cumulative (le, count) pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[str, int]] = []
        running = 0
        for edge, c in zip(self.buckets, counts):
            running += c
            out.append((repr(edge), running))
        out.append(("+Inf", running + counts[-1]))
        return out


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class GatewayMetrics:
    """The metric bundle of one gateway instance.

    Collectors:

    * ``counters`` — request/error/swap counts, incremented by the app.
    * ``latency`` — per-endpoint reservoirs created on first use.
    * ``batch_sizes`` — flush sizes reported by the micro-batcher.
    """

    def __init__(self, reservoir_size: int = 4096) -> None:
        self.counters = CounterSet()
        self.batch_sizes = BatchSizeHistogram()
        self._reservoir_size = reservoir_size
        self._latency: Dict[str, LatencyReservoir] = {}
        self._phases: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def latency(self, endpoint: str) -> LatencyReservoir:
        """The latency reservoir for ``endpoint`` (created on first use)."""
        with self._lock:
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                reservoir = LatencyReservoir(self._reservoir_size)
                self._latency[endpoint] = reservoir
            return reservoir

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request: count by status class + latency."""
        self.counters.inc(
            "repro_server_requests_total",
            {"endpoint": endpoint, "status": str(status)},
        )
        self.latency(endpoint).observe(seconds)

    def phase(self, name: str) -> LatencyHistogram:
        """The histogram for lifecycle phase ``name`` (created on use)."""
        with self._lock:
            histogram = self._phases.get(name)
            if histogram is None:
                histogram = LatencyHistogram()
                self._phases[name] = histogram
            return histogram

    def observe_phases(self, durations: Iterable[Tuple[str, float]]) -> None:
        """Record one request's ``(phase, seconds)`` decomposition."""
        for name, seconds in durations:
            self.phase(name).observe(max(0.0, seconds))

    def render(self, extra_gauges: Optional[Iterable[Tuple[str, Dict[str, str], float]]] = None) -> str:
        """Prometheus text exposition of every collector.

        ``extra_gauges`` lets the app append point-in-time gauges
        (model version info, uptime, cache sizes) without the metrics
        layer knowing about the registry or the service.
        """
        lines: List[str] = []

        # counters.items() is sorted by (name, labels): one HELP/TYPE
        # header per family, immediately followed by its samples.
        current_family = None
        for name, labels, value in self.counters.items():
            if name != current_family:
                lines.append(f"# HELP {name} {_help_text(name)}")
                lines.append(f"# TYPE {name} counter")
                current_family = name
            lines.append(f"{name}{_fmt_labels(labels)} {value}")

        with self._lock:
            endpoints = sorted(self._latency)
            phase_names = sorted(self._phases)
        lines.append(
            "# HELP repro_server_request_latency_seconds "
            + _help_text("repro_server_request_latency_seconds")
        )
        lines.append("# TYPE repro_server_request_latency_seconds summary")
        for endpoint in endpoints:
            count, total, sample = self._latency[endpoint].snapshot()
            for q in QUANTILES:
                if sample:
                    rank = min(len(sample) - 1, int(q * len(sample)))
                    value = sample[rank]
                else:
                    value = 0.0
                labels = _fmt_labels({"endpoint": endpoint, "quantile": str(q)})
                lines.append(f"repro_server_request_latency_seconds{labels} {value:.9f}")
            base = _fmt_labels({"endpoint": endpoint})
            lines.append(f"repro_server_request_latency_seconds_count{base} {count}")
            lines.append(f"repro_server_request_latency_seconds_sum{base} {total:.9f}")

        lines.append(
            "# HELP repro_server_batch_size "
            + _help_text("repro_server_batch_size")
        )
        lines.append("# TYPE repro_server_batch_size histogram")
        for le, value in self.batch_sizes.cumulative():
            lines.append(f'repro_server_batch_size_bucket{{le="{le}"}} {value}')
        lines.append(f"repro_server_batch_size_count {self.batch_sizes.count}")
        lines.append(f"repro_server_batch_size_sum {self.batch_sizes.total}")

        if phase_names:
            lines.append(
                "# HELP repro_server_phase_latency_seconds "
                + _help_text("repro_server_phase_latency_seconds")
            )
            lines.append("# TYPE repro_server_phase_latency_seconds histogram")
            for phase_name in phase_names:
                histogram = self._phases[phase_name]
                for le, value in histogram.cumulative():
                    labels = _fmt_labels({"phase": phase_name, "le": le})
                    lines.append(
                        f"repro_server_phase_latency_seconds_bucket{labels} {value}"
                    )
                base = _fmt_labels({"phase": phase_name})
                lines.append(
                    f"repro_server_phase_latency_seconds_count{base} "
                    f"{histogram.count}"
                )
                lines.append(
                    f"repro_server_phase_latency_seconds_sum{base} "
                    f"{histogram.total:.9f}"
                )

        for name, labels, value in extra_gauges or ():
            lines.append(f"# HELP {name} {_help_text(name)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_fmt_labels(labels)} {value}")
        return "\n".join(lines) + "\n"
