"""Crash-safe filesystem writes: the one atomic-write idiom for the repo.

Every durable artifact this system produces — cache entries, training
checkpoints, published model versions, stats snapshots, run manifests —
must survive a process dying at *any* instruction.  The idiom that
guarantees it is always the same three steps:

1. write the complete payload into a **dot-prefixed temp** sibling
   (same filesystem, so the rename below is atomic);
2. **fsync** the payload (and, for directories, every file in it) so
   the bytes are durable before they become visible;
3. **``os.replace``** the temp over the final name — readers see either
   the old complete state or the new complete state, never a hybrid —
   then fsync the parent directory so the rename itself is durable.

This module is that idiom, written once, instrumented with
:mod:`repro.chaos` failpoints so the chaos suite can kill the process at
every stage and prove the invariant.  Call sites pass a ``site`` name
(``"cache.store"``, ``"ckpt.save"``, ...); the writers emit the
``<site>.<subpoint>`` failpoints listed in
:data:`repro.chaos.WRITE_SUBPOINTS`.

A kill before the rename leaves only a dot-prefixed orphan; a kill after
leaves a complete result plus (at worst) the same orphan.  Orphans are
reclaimed by :func:`sweep_orphans`, which writers run *before* creating
new temps — the directory converges instead of accumulating junk.

``durable=False`` skips the fsyncs (atomicity without the flush cost)
for files whose loss on power-cut is acceptable — per-second stats
snapshots, benchmark reports — while keeping the torn-write protection.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Tuple, Union

from . import chaos

PathLike = Union[str, Path]

#: Glob patterns of in-flight / discarded temp entries this module (and
#: its pre-existing idioms around the repo) may leave behind on a crash.
ORPHAN_PATTERNS: Tuple[str, ...] = (
    ".*.tmp-*",      # atomic_write_bytes temps
    ".tmp-*",        # atomic_write_dir + pipeline cache temps
    ".ckpt-*",       # train-state checkpoint temps
    ".old-*",        # replace_dir displaced-backup dirs
    ".publish-*",    # registry publish temps
    ".trash-*",      # rename-to-trash deletion staging
)


def fsync_dir(path: PathLike) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse directory
    fds; atomicity never depends on this, only post-crash durability of
    the rename itself.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sweep_orphans(
    directory: PathLike, patterns: Iterable[str] = ORPHAN_PATTERNS
) -> int:
    """Delete leftover temp/trash entries under ``directory``.

    Safe to call any time by the directory's single logical writer:
    every pattern is dot-prefixed, and dot-prefixed names are never part
    of the committed state (readers skip them by contract).  Returns the
    number of entries removed.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for pattern in patterns:
        for stale in directory.glob(pattern):
            try:
                if stale.is_dir():
                    shutil.rmtree(stale, ignore_errors=True)
                else:
                    stale.unlink()
                removed += 1
            except OSError:
                continue
    return removed


# ----------------------------------------------------------------------
# Single-file atomic writes
# ----------------------------------------------------------------------
def atomic_write_bytes(
    path: PathLike, data: bytes, site: str = "write", durable: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp → fsync → rename).

    ``site`` names the chaos failpoints this write emits
    (``<site>.setup`` … ``<site>.after``); ``durable=False`` skips the
    fsyncs but keeps the all-or-nothing rename.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    chaos.failpoint(site + ".setup")
    try:
        with open(tmp, "wb") as fh:
            fraction = chaos.partial_fraction(site + ".payload")
            if fraction is not None:
                # Torn-write injection: put a real prefix on disk, make
                # it durable, then die — exactly what power loss during
                # a non-atomic in-place write would leave behind.
                fh.write(data[: int(len(data) * fraction)])
                fh.flush()
                os.fsync(fh.fileno())
                chaos.tear(site + ".payload")
            fh.write(data)
            chaos.failpoint(site + ".payload")
            fh.flush()
            if durable and chaos.fsync_enabled(site + ".fsync"):
                os.fsync(fh.fileno())
        chaos.failpoint(site + ".rename")
        os.replace(tmp, path)
        chaos.failpoint(site + ".after")
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path


def atomic_write_text(
    path: PathLike, text: str, site: str = "write", durable: bool = True
) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"), site=site, durable=durable)


def atomic_write_json(
    path: PathLike,
    value: Any,
    site: str = "write",
    durable: bool = True,
    **dump_kwargs: Any,
) -> Path:
    """:func:`atomic_write_bytes` for a JSON document."""
    return atomic_write_text(
        path, json.dumps(value, **dump_kwargs), site=site, durable=durable
    )


# ----------------------------------------------------------------------
# Directory-granularity atomic writes
# ----------------------------------------------------------------------
def fsync_tree(directory: PathLike) -> None:
    """fsync every file under ``directory`` (pre-rename durability)."""
    directory = Path(directory)
    for child in sorted(directory.rglob("*")):
        if not child.is_file():
            continue
        fd = os.open(str(child), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def replace_dir(src: Path, dst: Path) -> None:
    """``os.replace`` for directories, tolerating a populated ``dst``.

    POSIX ``rename`` refuses a non-empty destination directory, so an
    existing ``dst`` is first renamed aside (atomic), then ``src`` is
    promoted (atomic), then the displaced backup is dropped.  A crash
    between the two renames leaves a recoverable state: the backup is a
    dot-prefixed orphan and ``src`` is still a complete temp — the next
    sweep-and-retry converges.
    """
    try:
        os.replace(src, dst)
    except OSError:
        backup = dst.parent / f".old-{dst.name}-{os.getpid()}"
        shutil.rmtree(backup, ignore_errors=True)
        os.replace(dst, backup)
        os.replace(src, dst)
        shutil.rmtree(backup, ignore_errors=True)


def atomic_write_dir(
    path: PathLike,
    writer: Callable[[Path], None],
    site: str = "write",
    durable: bool = True,
    tmp_prefix: Optional[str] = None,
) -> Path:
    """Atomically (re)create the directory ``path`` via ``writer(tmp)``.

    ``writer`` populates a fresh dot-prefixed temp directory (same
    parent); the temp is fsynced file-by-file and promoted over ``path``
    with :func:`replace_dir`.  Emits the standard ``<site>.*``
    failpoints: ``setup`` after the temp exists, ``payload`` after the
    writer ran, ``fsync`` at the durability point, ``rename`` just
    before promotion, ``after`` just after.  On any failure the temp is
    removed and the previous ``path`` (if any) is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(
        tempfile.mkdtemp(prefix=tmp_prefix or f".tmp-{path.name[:16]}-", dir=path.parent)
    )
    try:
        chaos.failpoint(site + ".setup")
        writer(tmp)
        chaos.failpoint(site + ".payload")
        if durable and chaos.fsync_enabled(site + ".fsync"):
            fsync_tree(tmp)
        chaos.failpoint(site + ".rename")
        replace_dir(tmp, path)
        chaos.failpoint(site + ".after")
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    if durable:
        fsync_dir(path.parent)
    return path


# ----------------------------------------------------------------------
# Crash-safe deletion
# ----------------------------------------------------------------------
def remove_dir(path: PathLike) -> bool:
    """Delete a directory without ever exposing a half-deleted state.

    ``shutil.rmtree`` on a live directory deletes files one by one — a
    concurrent reader can observe an entry whose marker file still
    exists but whose payload is already gone (a *half-visible* entry).
    Renaming the directory to a dot-prefixed trash name first makes the
    deletion atomic from every reader's point of view: the entry is
    either fully there or fully absent.  The trash is then removed (and
    would be reclaimed by :func:`sweep_orphans` after a crash anyway).
    Returns False when ``path`` did not exist (e.g. a concurrent
    deleter won the rename).
    """
    path = Path(path)
    trash = path.parent / f".trash-{path.name}-{os.getpid()}"
    try:
        os.replace(path, trash)
    except FileNotFoundError:
        return False
    except OSError:
        # Cross-device or exotic failure: fall back to direct removal.
        shutil.rmtree(path, ignore_errors=True)
        return True
    shutil.rmtree(trash, ignore_errors=True)
    return True
