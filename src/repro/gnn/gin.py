"""Graph Isomorphism Network (Xu et al., ICLR 2019) — DDIGCN's default backbone.

Implements Eq. (1) of the paper:

    z_v^(t) = f_Theta^(t)( (1 + eps^(t)) * z_v^(t-1) + mean_{u in N_v} z_u^(t-1) )

The paper divides the neighbor sum by |N_v| (mean aggregation) and applies
batch normalization and ReLU after each layer (Sec. V-A3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import BatchNorm1d, MLP, Module, Tensor, matmul_fixed


class GINConv(Module):
    """One GIN layer with a learnable epsilon and an MLP update."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        hidden_dim: Optional[int] = None,
    ) -> None:
        super().__init__()
        hidden = hidden_dim or out_dim
        self.mlp = MLP([in_dim, hidden, out_dim], rng, activation="relu")
        self.eps = self.register_parameter(
            "eps", Tensor(np.zeros(1), requires_grad=True)
        )

    def forward(self, x: Tensor, mean_adj) -> Tensor:
        """``mean_adj`` is the row-normalized adjacency (constant, dense or CSR)."""
        aggregated = matmul_fixed(mean_adj, x)
        combined = x * (self.eps + 1.0) + aggregated
        return self.mlp(combined)


class GINEncoder(Module):
    """Stack of GIN layers with batch norm + ReLU, as trained in the paper.

    The paper sets 3 graph-convolution layers for DDIGCN with batch
    normalization and ReLU after each layer.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        batch_norm: bool = True,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GIN layer")
        self.convs: List[GINConv] = []
        self.norms: List[Optional[BatchNorm1d]] = []
        dims = [in_dim] + [hidden_dim] * num_layers
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            conv = GINConv(d_in, d_out, rng)
            self.register_module(f"conv{i}", conv)
            self.convs.append(conv)
            if batch_norm:
                norm = BatchNorm1d(d_out)
                self.register_module(f"bn{i}", norm)
                self.norms.append(norm)
            else:
                self.norms.append(None)

    @property
    def out_dim(self) -> int:
        return self.convs[-1].mlp.layers[-1].out_features

    def forward(self, x: Tensor, mean_adj) -> Tensor:
        for conv, norm in zip(self.convs, self.norms):
            x = conv(x, mean_adj)
            if norm is not None:
                x = norm(x)
            x = x.relu()
        return x
