"""LightGCN propagation (He et al., SIGIR 2020).

LightGCN drops feature transforms and nonlinearities; the MDGCN of the
paper (Eq. 11-13) uses exactly this propagation over the patient-drug
bipartite graph with per-layer combination weights beta_t.  This module
exposes the propagation as a reusable component consumed by both the
MDGCN core and the LightGCN baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Module, Tensor
from ..nn.fused import lightgcn_scan


def default_layer_weights(num_layers: int) -> List[float]:
    """The paper's beta_t = 1 / (t + 2) schedule, t = 0..num_layers."""
    return [1.0 / (t + 2.0) for t in range(num_layers + 1)]


class LightGCNPropagation(Module):
    """Parameter-free bipartite propagation with layer combination.

    Args to ``forward``:
        h_patients: (m, d) patient features at layer 0.
        h_drugs: (n, d) drug features at layer 0.
        p2d / d2p: normalized adjacencies from
            :meth:`repro.graph.BipartiteGraph.normalized_adjacency` —
            dense ndarrays or CSR matrices; ``matmul_fixed`` handles
            both, so sparse cohorts propagate in O(nnz).

    Returns the layer-combined (patients, drugs) representations:
        h'_v = sum_t beta_t h_v^(t)   (Eq. 13)
    """

    def __init__(self, num_layers: int, layer_weights: Optional[Sequence[float]] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one propagation layer")
        self.num_layers = num_layers
        if layer_weights is None:
            layer_weights = default_layer_weights(num_layers)
        if len(layer_weights) != num_layers + 1:
            raise ValueError(
                f"need {num_layers + 1} layer weights (layers 0..{num_layers}), "
                f"got {len(layer_weights)}"
            )
        if any(w < 0 for w in layer_weights):
            raise ValueError("layer weights must be non-negative")
        self.layer_weights = [float(w) for w in layer_weights]

    def forward(
        self,
        h_patients: Tensor,
        h_drugs: Tensor,
        p2d,
        d2p,
    ) -> Tuple[Tensor, Tensor]:
        # Eq. (11)-(13) as one fused scan: alternating propagation with
        # the weighted layer sum accumulated in place, bitwise identical
        # to the op-by-op loop but without a tensor per intermediate.
        return lightgcn_scan(
            h_patients, h_drugs, p2d, d2p, self.layer_weights
        )
