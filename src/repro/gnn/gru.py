"""Gated Recurrent Unit (Chung et al., 2014).

SafeDrug encodes a patient's visit history with a GRU; CauseRec consumes
behaviour sequences.  This is a standard GRU cell plus a sequence encoder
returning the final hidden state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Linear, Module, Tensor, concat


class GRUCell(Module):
    """Single-step GRU: h' = (1 - z) * h + z * htilde."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.reset_gate = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.update_gate = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.candidate = Linear(input_dim + hidden_dim, hidden_dim, rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=-1)
        reset = self.reset_gate(xh).sigmoid()
        update = self.update_gate(xh).sigmoid()
        candidate = self.candidate(concat([x, h * reset], axis=-1)).tanh()
        return h * (1.0 - update) + candidate * update


class GRUEncoder(Module):
    """Encode a sequence of step features into a final hidden state.

    ``forward`` takes a list of (batch, input_dim) tensors — one per visit —
    and returns the (batch, hidden_dim) final state.  Patients have varying
    visit counts; callers pad/slice per patient group.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.cell = GRUCell(input_dim, hidden_dim, rng)

    def forward(self, steps: Sequence[Tensor], h0: Optional[Tensor] = None) -> Tensor:
        if not steps:
            raise ValueError("need at least one step")
        batch = steps[0].shape[0]
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_dim)))
        for step in steps:
            if step.shape[0] != batch:
                raise ValueError("all steps must share the batch dimension")
            h = self.cell(step, h)
        return h
