"""GCMC: Graph Convolutional Matrix Completion (van den Berg et al., 2017).

Baseline recommender.  GCMC builds one message-passing channel per rating
type; with binary medication use there is a single "taken" channel, but the
implementation supports several for generality (MIMIC visits could be
bucketed by recency, for instance).  The encoder produces patient/drug
embeddings; a bilinear decoder scores pairs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, init as initializers, matmul_fixed


class GCMCEncoder(Module):
    """One-layer GCMC encoder with per-channel weights and a dense output."""

    def __init__(
        self,
        patient_dim: int,
        drug_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_channels: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_channels < 1:
            raise ValueError("need at least one rating channel")
        self.num_channels = num_channels
        self.patient_channel: List[Linear] = []
        self.drug_channel: List[Linear] = []
        for c in range(num_channels):
            p_lin = Linear(drug_dim, hidden_dim, rng, bias=False)
            d_lin = Linear(patient_dim, hidden_dim, rng, bias=False)
            self.register_module(f"patient_ch{c}", p_lin)
            self.register_module(f"drug_ch{c}", d_lin)
            self.patient_channel.append(p_lin)
            self.drug_channel.append(d_lin)
        self.patient_dense = Linear(hidden_dim + patient_dim, out_dim, rng)
        self.drug_dense = Linear(hidden_dim + drug_dim, out_dim, rng)

    def forward(
        self,
        x_patients: Tensor,
        x_drugs: Tensor,
        channels: Sequence[Tuple],
    ) -> Tuple[Tensor, Tensor]:
        """``channels[c] = (p2d, d2p)`` normalized adjacency per rating type.

        Each adjacency may be a dense ndarray or a CSR matrix; the
        propagation goes through ``matmul_fixed`` either way.
        """
        if len(channels) != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels, got {len(channels)}"
            )
        patient_msg = None
        drug_msg = None
        for c, (p2d, d2p) in enumerate(channels):
            from_drugs = matmul_fixed(p2d, self.patient_channel[c](x_drugs))
            from_patients = matmul_fixed(d2p, self.drug_channel[c](x_patients))
            patient_msg = from_drugs if patient_msg is None else patient_msg + from_drugs
            drug_msg = from_patients if drug_msg is None else drug_msg + from_patients
        from ..nn import concat

        h_patients = self.patient_dense(
            concat([patient_msg.relu(), x_patients], axis=1)
        ).relu()
        h_drugs = self.drug_dense(concat([drug_msg.relu(), x_drugs], axis=1)).relu()
        return h_patients, h_drugs


class BilinearDecoder(Module):
    """Score(i, v) = h_i^T Q h_v with a learnable interaction matrix Q."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.interaction = self.register_parameter(
            "interaction", initializers.xavier_uniform(rng, (dim, dim))
        )

    def forward(self, h_patients: Tensor, h_drugs: Tensor) -> Tensor:
        """Dense (num_patients, num_drugs) score matrix."""
        return (h_patients @ self.interaction) @ h_drugs.T
