"""Adjacency normalization helpers shared by the GNN layers.

The DDI graph has 86 drugs and the evaluation cohorts a few thousand
patients, so dense propagation matrices are the simplest correct choice.
Every helper returns plain numpy arrays that enter the autograd graph as
constants via :func:`repro.nn.matmul_fixed`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph import BipartiteGraph, SignedGraph


def mean_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalize a 0/1 adjacency: ``M[i, j] = A[i, j] / deg(i)``.

    Rows with zero degree stay zero (isolated nodes aggregate nothing).
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degree = adjacency.sum(axis=1)
    scale = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return adjacency * scale[:, None]


def symmetric_adjacency(adjacency: np.ndarray, self_loops: bool = False) -> np.ndarray:
    """GCN-style D^-1/2 (A [+ I]) D^-1/2 normalization."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if self_loops:
        adjacency = adjacency + np.eye(adjacency.shape[0])
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.divide(
        1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
    )
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def signed_mean_adjacencies(graph: SignedGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Row-normalized positive and negative adjacencies (B_v and U_v paths)."""
    signed = graph.signed_adjacency()
    positive = (signed > 0).astype(np.float64)
    negative = (signed < 0).astype(np.float64)
    return mean_adjacency(positive), mean_adjacency(negative)


def interaction_mean_adjacency(graph: SignedGraph, include_zero: bool = True) -> np.ndarray:
    """Row-normalized adjacency over *all* interactions.

    The paper's GIN backbone aggregates over N_v = drugs that have any
    interaction with v, including the sampled "no interaction" (0) edges
    when ``include_zero`` is set.
    """
    mat = np.zeros((graph.num_nodes, graph.num_nodes))
    for u, v, sign in graph.edges_with_signs():
        if sign == 0 and not include_zero:
            continue
        mat[u, v] = 1.0
        mat[v, u] = 1.0
    return mean_adjacency(mat)


def bipartite_propagation(graph: BipartiteGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric-normalized patient->drug and drug->patient matrices."""
    return graph.normalized_adjacency()


def signed_edge_arrays(graph: SignedGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list as (sources, targets, signs) arrays with both directions.

    Attention layers (SiGAT, SNEA) iterate edges rather than using dense
    matrices; every undirected edge is emitted in both directions.
    """
    src, dst, signs = [], [], []
    for u, v, sign in graph.edges_with_signs():
        src.extend((u, v))
        dst.extend((v, u))
        signs.extend((sign, sign))
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(signs, dtype=np.int64),
    )
