"""Adjacency normalization helpers shared by the GNN layers.

Every helper returns a *fixed* propagation matrix that enters the
autograd graph as a constant via :func:`repro.nn.matmul_fixed`.  The
representation is chosen by the density-threshold policy of
:mod:`repro.nn.sparse`: graphs that are large and mostly empty (the
patient-drug bipartite graph at realistic cohort sizes is >99% sparse)
come back as ``scipy.sparse`` CSR matrices, while small or dense graphs
(the 86-drug DDI graph of the paper's experiments) keep the seed's dense
arrays with bitwise-identical arithmetic.  Each helper accepts a
``backend`` override ("auto" / "dense" / "sparse") so bitwise-compat
runs can pin the dense path; the process-wide default is managed by
``repro.nn.sparse.set_backend`` / ``use_backend``.

The per-edge construction is vectorized throughout: edge lists are
extracted once as arrays (:meth:`repro.graph.SignedGraph.edge_arrays`)
and scattered with fancy indexing instead of Python loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import BipartiteGraph, SignedGraph
from ..nn import sparse as sparse_backend


def _undirected_entries(
    u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Duplicate single-orientation edge arrays into both directions."""
    return np.concatenate([u, v]), np.concatenate([v, u])


def _binary_adjacency(
    shape: Tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    backend: Optional[str],
):
    """0/1 adjacency from entry arrays, dense or CSR per the policy.

    ``(rows, cols)`` pairs are assumed unique (simple graphs), so the
    CSR duplicate-summing build yields the same 0/1 values as the dense
    scatter.
    """
    if sparse_backend.should_sparsify(shape, len(rows), backend):
        return sparse_backend.csr_from_entries(
            shape, rows, cols, np.ones(len(rows))
        )
    mat = np.zeros(shape)
    mat[rows, cols] = 1.0
    return mat


def mean_adjacency(adjacency, backend: Optional[str] = None):
    """Row-normalize a 0/1 adjacency: ``M[i, j] = A[i, j] / deg(i)``.

    Rows with zero degree stay zero (isolated nodes aggregate nothing).
    Accepts dense or CSR input; the output representation follows the
    backend policy (dense input only converts when the policy selects
    sparse, and vice versa).
    """
    if sparse_backend.is_sparse(adjacency):
        adjacency = adjacency.tocsr()
        degree = np.asarray(adjacency.sum(axis=1)).ravel()
        scale = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
        normalized = adjacency.multiply(scale[:, None]).tocsr()
        return sparse_backend.maybe_sparse(normalized, backend)
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degree = adjacency.sum(axis=1)
    scale = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return sparse_backend.maybe_sparse(adjacency * scale[:, None], backend)


def symmetric_adjacency(
    adjacency, self_loops: bool = False, backend: Optional[str] = None
):
    """GCN-style D^-1/2 (A [+ I]) D^-1/2 normalization.

    Dense or CSR input, output per the backend policy (see module docs).
    """
    if sparse_backend.is_sparse(adjacency):
        adjacency = adjacency.tocsr()
        if self_loops:
            from scipy import sparse as sp

            adjacency = (adjacency + sp.eye(adjacency.shape[0], format="csr")).tocsr()
        degree = np.asarray(adjacency.sum(axis=1)).ravel()
        inv_sqrt = np.divide(
            1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
        )
        normalized = (
            adjacency.multiply(inv_sqrt[:, None]).multiply(inv_sqrt[None, :]).tocsr()
        )
        return sparse_backend.maybe_sparse(normalized, backend)
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if self_loops:
        adjacency = adjacency + np.eye(adjacency.shape[0])
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.divide(
        1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
    )
    return sparse_backend.maybe_sparse(
        adjacency * inv_sqrt[:, None] * inv_sqrt[None, :], backend
    )


def signed_mean_adjacencies(graph: SignedGraph, backend: Optional[str] = None):
    """Row-normalized positive and negative adjacencies (B_v and U_v paths).

    Returns ``(positive, negative)``, each dense or CSR per the policy.
    """
    u, v, signs = graph.edge_arrays()
    n = graph.num_nodes
    pos_rows, pos_cols = _undirected_entries(u[signs > 0], v[signs > 0])
    neg_rows, neg_cols = _undirected_entries(u[signs < 0], v[signs < 0])
    positive = _binary_adjacency((n, n), pos_rows, pos_cols, backend)
    negative = _binary_adjacency((n, n), neg_rows, neg_cols, backend)
    return mean_adjacency(positive, backend), mean_adjacency(negative, backend)


def interaction_mean_adjacency(
    graph: SignedGraph, include_zero: bool = True, backend: Optional[str] = None
):
    """Row-normalized adjacency over *all* interactions.

    The paper's GIN backbone aggregates over N_v = drugs that have any
    interaction with v, including the sampled "no interaction" (0) edges
    when ``include_zero`` is set.  Dense or CSR per the backend policy.
    """
    u, v, signs = graph.edge_arrays()
    if not include_zero:
        keep = signs != 0
        u, v = u[keep], v[keep]
    rows, cols = _undirected_entries(u, v)
    n = graph.num_nodes
    return mean_adjacency(_binary_adjacency((n, n), rows, cols, backend), backend)


def synergy_adjacency(graph: SignedGraph, backend: Optional[str] = None):
    """0/1 adjacency over the synergy (+1) edges, both orientations.

    The fixed factor of the treatment derivation (Sec. IV-B1 step 3),
    shared by fit-time :func:`repro.causal.build_treatment` and the
    post-fit cache behind ``MDModule.treatment_for`` / serving — one
    construction site so the representation policy cannot diverge
    between them.  Dense or CSR per the backend policy.
    """
    u, v, signs = graph.edge_arrays()
    pos = signs == 1
    rows, cols = _undirected_entries(u[pos], v[pos])
    n = graph.num_nodes
    return _binary_adjacency((n, n), rows, cols, backend)


def bipartite_propagation(graph: BipartiteGraph, backend: Optional[str] = None):
    """Symmetric-normalized patient->drug and drug->patient matrices.

    Delegates to :meth:`repro.graph.BipartiteGraph.normalized_adjacency`;
    both matrices are CSR when the link density falls below the policy
    threshold, dense otherwise.
    """
    return graph.normalized_adjacency(backend=backend)


def signed_edge_arrays(graph: SignedGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list as (sources, targets, signs) arrays with both directions.

    Attention layers (SiGAT, SNEA) iterate edges rather than using dense
    matrices; every undirected edge is emitted in both directions,
    interleaved as (u, v), (v, u) pairs — the same order the original
    per-edge loop produced, so seeded runs stay bitwise reproducible
    (segment scatter-adds sum in edge order).
    """
    u, v, signs = graph.edge_arrays()
    src = np.stack([u, v], axis=1).ravel()
    dst = np.stack([v, u], axis=1).ravel()
    return src, dst, np.repeat(signs, 2)
