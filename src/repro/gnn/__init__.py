"""Graph neural network layers on top of ``repro.nn``.

All four DDIGCN backbones evaluated in the paper (GIN, SGCN, SiGAT, SNEA),
the LightGCN propagation shared by MDGCN, and the building blocks of the
GNN baselines (GCMC encoder/decoder, GRU for SafeDrug/CauseRec).
"""

from .propagation import (
    bipartite_propagation,
    interaction_mean_adjacency,
    mean_adjacency,
    signed_edge_arrays,
    signed_mean_adjacencies,
    symmetric_adjacency,
    synergy_adjacency,
)
from .gin import GINConv, GINEncoder
from .sgcn import SGCNConv, SGCNEncoder
from .attention import EdgeAttentionHead
from .sigat import SiGATEncoder, SiGATLayer
from .snea import SNEAEncoder, SNEALayer
from .lightgcn import LightGCNPropagation, default_layer_weights
from .gcmc import BilinearDecoder, GCMCEncoder
from .gru import GRUCell, GRUEncoder

__all__ = [
    "mean_adjacency",
    "symmetric_adjacency",
    "signed_mean_adjacencies",
    "interaction_mean_adjacency",
    "bipartite_propagation",
    "signed_edge_arrays",
    "synergy_adjacency",
    "GINConv",
    "GINEncoder",
    "SGCNConv",
    "SGCNEncoder",
    "EdgeAttentionHead",
    "SiGATLayer",
    "SiGATEncoder",
    "SNEALayer",
    "SNEAEncoder",
    "LightGCNPropagation",
    "default_layer_weights",
    "GCMCEncoder",
    "BilinearDecoder",
    "GRUCell",
    "GRUEncoder",
]
