"""SNEA: Learning Signed Network Embedding via Graph Attention (Li et al., AAAI 2020).

SNEA extends the balanced/unbalanced two-path design of SGCN with
attention-weighted aggregation: each path aggregates its neighbours with
learned attention instead of uniform means, then the two paths are
concatenated exactly like Eq. (4).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, concat
from .attention import EdgeAttentionHead


class SNEALayer(Module):
    """Attention-based balanced/unbalanced update.

    Balanced path: attends over balanced features of synergistic neighbours
    and unbalanced features of antagonistic neighbours (balance theory, as
    in SGCN) — but with attention weights per edge.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.balanced_pos = EdgeAttentionHead(in_dim, out_dim, rng)
        self.balanced_neg = EdgeAttentionHead(in_dim, out_dim, rng)
        self.unbalanced_pos = EdgeAttentionHead(in_dim, out_dim, rng)
        self.unbalanced_neg = EdgeAttentionHead(in_dim, out_dim, rng)
        self.project_balanced = Linear(in_dim + 2 * out_dim, out_dim, rng)
        self.project_unbalanced = Linear(in_dim + 2 * out_dim, out_dim, rng)

    def forward(
        self,
        h_balanced: Tensor,
        h_unbalanced: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        signs: np.ndarray,
        num_nodes: int,
    ) -> Tuple[Tensor, Tensor]:
        pos = signs > 0
        neg = signs < 0
        bal_pos = self.balanced_pos(h_balanced, src[pos], dst[pos], num_nodes)
        bal_neg = self.balanced_neg(h_unbalanced, src[neg], dst[neg], num_nodes)
        new_balanced = self.project_balanced(
            concat([bal_pos, bal_neg, h_balanced], axis=1)
        ).tanh()

        unb_pos = self.unbalanced_pos(h_unbalanced, src[pos], dst[pos], num_nodes)
        unb_neg = self.unbalanced_neg(h_balanced, src[neg], dst[neg], num_nodes)
        new_unbalanced = self.project_unbalanced(
            concat([unb_pos, unb_neg, h_unbalanced], axis=1)
        ).tanh()
        return new_balanced, new_unbalanced


class SNEAEncoder(Module):
    """Stacked SNEA layers; output is [hB, hU] like SGCN."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one SNEA layer")
        if hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be even (split across B/U paths)")
        half = hidden_dim // 2
        self.input_balanced = Linear(in_dim, half, rng)
        self.input_unbalanced = Linear(in_dim, half, rng)
        self.layers: List[SNEALayer] = []
        for i in range(num_layers):
            layer = SNEALayer(half, half, rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)
        self._out_dim = hidden_dim

    @property
    def out_dim(self) -> int:
        return self._out_dim

    def forward(
        self,
        x: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        signs: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        h_balanced = self.input_balanced(x).tanh()
        h_unbalanced = self.input_unbalanced(x).tanh()
        for layer in self.layers:
            h_balanced, h_unbalanced = layer(
                h_balanced, h_unbalanced, src, dst, signs, num_nodes
            )
        return concat([h_balanced, h_unbalanced], axis=1)
