"""Shared GAT-style attention aggregation over an edge list.

Both attention-based signed backbones (SiGAT, SNEA) score each directed
edge with a small additive-attention head, normalize scores per destination
node with a segment softmax, and aggregate transformed source features.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Linear,
    Module,
    Tensor,
    concat,
    gather_rows,
    init as initializers,
    segment_softmax,
    segment_sum,
)


class EdgeAttentionHead(Module):
    """Additive attention: alpha_ij = softmax_j LeakyReLU(a^T [W h_i, W h_j]).

    ``forward`` aggregates messages from ``src`` into ``dst`` buckets using
    attention weights computed on the transformed features.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.transform = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = self.register_parameter(
            "attn_src", initializers.xavier_uniform(rng, (out_dim,))
        )
        self.attn_dst = self.register_parameter(
            "attn_dst", initializers.xavier_uniform(rng, (out_dim,))
        )

    def forward(
        self,
        features: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        """Aggregate ``features[src]`` into ``dst`` with attention weights.

        Returns an (num_nodes, out_dim) tensor; nodes receiving no message
        get a zero row.
        """
        transformed = self.transform(features)
        if len(src) == 0:
            zero = Tensor(np.zeros((num_nodes, transformed.shape[1])))
            return zero
        h_src = gather_rows(transformed, src)
        h_dst = gather_rows(transformed, dst)
        scores = (h_src * self.attn_src).sum(axis=1) + (h_dst * self.attn_dst).sum(axis=1)
        scores = scores.leaky_relu(0.2)
        alpha = segment_softmax(scores, dst, num_nodes)
        weighted = h_src * alpha.reshape(-1, 1)
        return segment_sum(weighted, dst, num_nodes)
