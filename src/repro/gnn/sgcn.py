"""Signed Graph Convolutional Network (Derr et al., ICDM 2018).

The best-performing DDIGCN backbone in the paper (Table I).  Implements
Eq. (2)-(4): each drug keeps a synergistic ("balanced", hB) and an
antagonistic ("unbalanced", hU) representation.

    hB_v = sigma( WB [ mean_{e_iv=+1} hB_i,  mean_{e_jv=-1} hU_j,  hB_v ] )
    hU_v = sigma( WU [ mean_{e_iv=+1} hU_i,  mean_{e_jv=-1} hB_j,  hU_v ] )
    z_v  = [ hB_v, hU_v ]

The positive path propagates "friendly" signal along synergy edges; the
negative path captures antagonism via the crossed terms (balance theory).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, concat, matmul_fixed


class SGCNConv(Module):
    """One signed convolution layer updating (hB, hU) jointly."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        # Each path consumes [pos-aggregate, neg-aggregate, self] = 3 * in_dim.
        self.linear_balanced = Linear(3 * in_dim, out_dim, rng)
        self.linear_unbalanced = Linear(3 * in_dim, out_dim, rng)

    def forward(
        self,
        h_balanced: Tensor,
        h_unbalanced: Tensor,
        pos_mean,
        neg_mean,
    ) -> Tuple[Tensor, Tensor]:
        """``pos_mean`` / ``neg_mean`` are fixed adjacencies, dense or CSR."""
        pos_b = matmul_fixed(pos_mean, h_balanced)
        neg_u = matmul_fixed(neg_mean, h_unbalanced)
        new_balanced = self.linear_balanced(
            concat([pos_b, neg_u, h_balanced], axis=1)
        ).tanh()

        pos_u = matmul_fixed(pos_mean, h_unbalanced)
        neg_b = matmul_fixed(neg_mean, h_balanced)
        new_unbalanced = self.linear_unbalanced(
            concat([pos_u, neg_b, h_unbalanced], axis=1)
        ).tanh()
        return new_balanced, new_unbalanced


class SGCNEncoder(Module):
    """Stacked SGCN producing z_v = [hB_v, hU_v] (Eq. 4)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one SGCN layer")
        if hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be even (split across B/U paths)")
        half = hidden_dim // 2
        self.input_balanced = Linear(in_dim, half, rng)
        self.input_unbalanced = Linear(in_dim, half, rng)
        self.convs: List[SGCNConv] = []
        for i in range(num_layers):
            conv = SGCNConv(half, half, rng)
            self.register_module(f"conv{i}", conv)
            self.convs.append(conv)
        self._out_dim = hidden_dim

    @property
    def out_dim(self) -> int:
        return self._out_dim

    def forward(self, x: Tensor, pos_mean, neg_mean) -> Tensor:
        h_balanced = self.input_balanced(x).tanh()
        h_unbalanced = self.input_unbalanced(x).tanh()
        for conv in self.convs:
            h_balanced, h_unbalanced = conv(h_balanced, h_unbalanced, pos_mean, neg_mean)
        return concat([h_balanced, h_unbalanced], axis=1)
