"""SiGAT: Signed Graph Attention Network (Huang et al., ICANN 2019).

SiGAT runs one attention head per signed relation ("motif") and fuses the
per-relation aggregates with a node-level MLP.  This reproduction keeps the
two fundamental relations of the DDI graph — synergy (+) and antagonism (-)
— which is exactly the relation set available in DrugCombDB.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import MLP, Module, Tensor, concat
from .attention import EdgeAttentionHead


class SiGATLayer(Module):
    """One SiGAT block: per-sign attention heads + fusion MLP."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.positive_head = EdgeAttentionHead(in_dim, out_dim, rng)
        self.negative_head = EdgeAttentionHead(in_dim, out_dim, rng)
        # Fuse [self, positive aggregate, negative aggregate].
        self.fuse = MLP([in_dim + 2 * out_dim, out_dim], rng)

    def forward(
        self,
        features: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        signs: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        pos_mask = signs > 0
        neg_mask = signs < 0
        pos_agg = self.positive_head(features, src[pos_mask], dst[pos_mask], num_nodes)
        neg_agg = self.negative_head(features, src[neg_mask], dst[neg_mask], num_nodes)
        fused = concat([features, pos_agg, neg_agg], axis=1)
        return self.fuse(fused).tanh()


class SiGATEncoder(Module):
    """Stacked SiGAT layers for drug relation embeddings."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one SiGAT layer")
        self.layers: List[SiGATLayer] = []
        dims = [in_dim] + [hidden_dim] * num_layers
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = SiGATLayer(d_in, d_out, rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)
        self._out_dim = hidden_dim

    @property
    def out_dim(self) -> int:
        return self._out_dim

    def forward(
        self,
        x: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        signs: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, src, dst, signs, num_nodes)
        return x
