"""The batched suggestion service: fit once, serve many.

Wraps a fitted (or freshly loaded) :class:`repro.core.DSSDDI` behind a
request-oriented API:

* ``suggest`` — vectorized batch scoring (one matrix product per decoder
  layer per batch, never a per-patient loop) with optional DDI-aware
  greedy re-ranking,
* ``explain`` — MS-module explanations behind an LRU cache keyed on the
  sorted suggestion tuple (explanations depend only on the drug set, so
  repeated suggestions across patients are free),
* ``suggest_and_explain`` — the paper's Fig. 4 system output, batched.

Usage::

    system.save("model_dir")                       # after DSSDDI.fit(...)
    service = SuggestionService.load("model_dir")
    suggestions = service.suggest(x_batch, k=3)    # (batch, 3) drug ids
    explanations = service.suggest_and_explain(x_batch, k=3)
    print(service.stats())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ServingConfig
from ..core.ms_module import Explanation, canonical_suggestion
from ..core.rerank import RerankConfig, rerank_topk
from ..core.system import DSSDDI
from ..metrics import top_k_indices
from .cache import LRUCache
from .scorer import BatchScorer


@dataclass
class ServiceStats:
    """Counters accumulated by one :class:`SuggestionService` instance.

    Attributes:
        requests: number of API calls served (suggest/explain/scores).
        patients_scored: total patient rows scored across all batches.
        explanations_served: explanations returned (cached or computed).
        cache_hits / cache_misses: explanation-cache counters.
    """

    requests: int = 0
    patients_scored: int = 0
    explanations_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of explanation lookups served from the LRU cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class SuggestionService:
    """Serve medication suggestions and explanations from a fitted system.

    Construct from an in-memory fitted :class:`repro.core.DSSDDI` or load
    a saved artifact directly::

        service = SuggestionService(system)            # in-process
        service = SuggestionService.load("model_dir")  # from DSSDDI.save

    Scoring is numerically identical to ``system.predict_scores`` but
    amortizes all request-independent work (drug representations, cluster
    drug exposure, DDI synergy adjacency) at construction, so a batch of
    512 patients costs a handful of matrix products rather than 512
    re-encodings of the training set.

    Serving knobs come from ``system.config.serving``
    (:class:`repro.core.ServingConfig`) unless an explicit ``config``
    overrides them: LRU explanation-cache size, default suggestion size
    ``k``, and optional DDI-safety re-ranking via
    :func:`repro.core.rerank_topk`.
    """

    def __init__(
        self,
        system: DSSDDI,
        config: Optional[ServingConfig] = None,
    ) -> None:
        if system.md_module is None or system.ms_module is None:
            raise RuntimeError("SuggestionService needs a fitted DSSDDI")
        self.config = config or system.config.serving
        self.config.validate()
        self._system = system
        self._ms = system.ms_module
        self._scorer = BatchScorer.from_md_module(system.md_module)
        self._cache = LRUCache(self.config.explanation_cache_size)
        self._rerank_config = RerankConfig(
            synergy_bonus=self.config.synergy_bonus,
            antagonism_penalty=self.config.antagonism_penalty,
            hard_exclude=self.config.hard_exclude,
        )
        # Counter increments happen under this lock so the service can
        # sit behind the multi-threaded gateway (repro.server) without
        # losing updates; the numeric hot path itself is read-only.
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._patients_scored = 0
        self._explanations_served = 0

    @classmethod
    def load(
        cls,
        path,
        config: Optional[ServingConfig] = None,
        mmap_mode: Optional[str] = None,
        verify: bool = True,
    ) -> "SuggestionService":
        """Load a :meth:`repro.core.DSSDDI.save` artifact and serve it.

        ``mmap_mode="r"`` maps the artifact's arrays read-only instead
        of copying them (scores stay bitwise identical); ``verify``
        checks the arrays against the manifest's integrity digests; see
        :meth:`repro.core.DSSDDI.load`.
        """
        return cls(
            DSSDDI.load(path, mmap_mode=mmap_mode, verify=verify), config=config
        )

    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        """Size of the drug catalog the model scores over."""
        return self._scorer.num_drugs

    @property
    def feature_dim(self) -> int:
        """Width of the patient feature vectors the model consumes."""
        return self._scorer.feature_dim

    def predict_scores(self, patient_features: np.ndarray) -> np.ndarray:
        """Suggestion scores (batch, n_drugs); matches ``DSSDDI.predict_scores``.

        With ``config.score_block`` set (>= 2) the batch is scored in
        fixed-shape chunks (:meth:`BatchScorer.scores_blocked`), making
        each patient's scores bitwise-independent of the batch they
        arrived in — the contract the online gateway's micro-batcher is
        built on.
        """
        x = np.atleast_2d(np.asarray(patient_features, dtype=np.float64))
        with self._stats_lock:
            self._requests += 1
            self._patients_scored += x.shape[0]
        if self.config.score_block:
            return self._scorer.scores_blocked(x, self.config.score_block)
        return self._scorer.scores(x)

    def suggest(
        self, patient_features: np.ndarray, k: Optional[int] = None
    ) -> np.ndarray:
        """Top-k drug ids per patient, (batch, k), best first.

        Plain score top-k by default; the DDI-aware greedy re-ranker when
        ``config.rerank`` is set.
        """
        return self.topk_from_scores(self.predict_scores(patient_features), k)

    def topk_from_scores(
        self, scores: np.ndarray, k: Optional[int] = None
    ) -> np.ndarray:
        """The suggestion step of :meth:`suggest` on precomputed scores.

        Exposed so the gateway's micro-batcher can score a coalesced
        batch once and still produce per-request suggestions through
        exactly the code path sequential ``suggest`` uses.
        """
        k = self.config.default_k if k is None else k
        if self.config.rerank:
            return rerank_topk(
                scores, self._ms.ddi, k, config=self._rerank_config
            )
        return top_k_indices(scores, k)

    def explain(self, suggested: Sequence[int]) -> Explanation:
        """MS-module explanation for one suggested drug set, LRU-cached."""
        with self._stats_lock:
            self._requests += 1
        return self._explain_cached(canonical_suggestion(suggested))

    def suggest_and_explain(
        self, patient_features: np.ndarray, k: Optional[int] = None
    ) -> List[Explanation]:
        """Batched system output (Fig. 4): one explanation per patient.

        Patients whose suggestion sets coincide share a single cached
        explanation object.
        """
        suggestions = self.suggest(patient_features, k)
        return [
            self._explain_cached(canonical_suggestion(row))
            for row in suggestions
        ]

    def _explain_cached(self, key: Tuple[int, ...]) -> Explanation:
        with self._stats_lock:
            self._explanations_served += 1
        explanation = self._cache.get(key)
        if explanation is None:
            explanation = self._ms.explain(key)
            self._cache.put(key, explanation)
        return explanation

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot of the request and cache counters."""
        with self._stats_lock:
            return ServiceStats(
                requests=self._requests,
                patients_scored=self._patients_scored,
                explanations_served=self._explanations_served,
                cache_hits=self._cache.hits,
                cache_misses=self._cache.misses,
            )

    def clear_cache(self) -> None:
        """Drop cached explanations and reset the cache counters."""
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"SuggestionService(drugs={self.num_drugs}, "
            f"cache={len(self._cache)}/{self._cache.maxsize}, "
            f"rerank={self.config.rerank})"
        )
