"""Vectorized serving-time scoring for the fitted MD module.

:meth:`repro.core.MDModule.predict_scores` re-encodes the *entire training
set* through the LightGCN propagation on every call, because the final
drug representations h'_v (Eq. 10-13 + DDI addition) depend on it.  Those
representations are fixed once training ends, so the serving path
precomputes them — along with the per-cluster drug exposure and the DDI
synergy adjacency that drive the treatment derivation — and scores a whole
request batch with one matrix product per decoder layer instead of a
per-patient loop.

The arithmetic replays the training-time ops (same formulas, same
operation order on the same arrays), so batch scores are bitwise identical
to ``MDModule.predict_scores``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.md_module import MDModule
from ..ml import KMeansResult
from ..nn import sparse as sparse_backend


def _leaky_relu(x: np.ndarray, slope: float = 0.01) -> np.ndarray:
    return np.where(x > 0.0, x, slope * x)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """The numerically stable piecewise sigmoid of repro.nn.Tensor."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class BatchScorer:
    """Precomputed, loop-free replica of ``MDModule.predict_scores``.

    Build with :meth:`from_md_module`; then :meth:`scores` maps a
    (batch, d1) feature matrix to the (batch, n_drugs) sigmoid score
    matrix.  All request-independent work — drug representations, cluster
    drug exposure, synergy adjacency — happens once at construction.
    """

    def __init__(
        self,
        patient_weight: np.ndarray,
        patient_bias: np.ndarray,
        drug_reps: np.ndarray,
        decoder_weights: List[np.ndarray],
        decoder_biases: List[np.ndarray],
        kmeans: KMeansResult,
        cluster_drugs: np.ndarray,
        synergy: np.ndarray,
    ) -> None:
        self.patient_weight = np.asarray(patient_weight, dtype=np.float64)
        self.patient_bias = np.asarray(patient_bias, dtype=np.float64)
        self.drug_reps = np.asarray(drug_reps, dtype=np.float64)
        if len(decoder_weights) != len(decoder_biases) or not decoder_weights:
            raise ValueError("decoder weights and biases must pair up")
        self.decoder_weights = [np.asarray(w, dtype=np.float64) for w in decoder_weights]
        self.decoder_biases = [np.asarray(b, dtype=np.float64) for b in decoder_biases]
        self.kmeans = kmeans
        self.cluster_drugs = np.asarray(cluster_drugs, dtype=np.int64)
        # The synergy adjacency arrives straight from the MD module's
        # post-fit cache: CSR on large sparse DDI graphs, dense otherwise.
        self.synergy = (
            synergy
            if sparse_backend.is_sparse(synergy)
            else np.asarray(synergy, dtype=np.float64)
        )
        self.num_drugs = self.drug_reps.shape[0]
        expected_in = self.drug_reps.shape[1] + 1  # [h_i ⊙ h'_v, T_iv]
        if self.decoder_weights[0].shape[0] != expected_in:
            raise ValueError(
                f"decoder input dim {self.decoder_weights[0].shape[0]} does not "
                f"match drug representation width {expected_in - 1} + treatment"
            )

    @property
    def feature_dim(self) -> int:
        """Width of the patient feature vectors the scorer consumes."""
        return self.patient_weight.shape[0]

    @classmethod
    def from_md_module(cls, md_module: MDModule) -> "BatchScorer":
        """Freeze a fitted MD module's scoring state into a scorer."""
        state = md_module.scoring_state()
        return cls(
            patient_weight=state["patient_weight"],
            patient_bias=state["patient_bias"],
            drug_reps=state["drug_reps"],
            decoder_weights=state["decoder_weights"],
            decoder_biases=state["decoder_biases"],
            kmeans=state["kmeans"],
            cluster_drugs=state["cluster_drugs"],
            synergy=state["synergy"],
        )

    # ------------------------------------------------------------------
    def treatment_for(self, patient_features: np.ndarray) -> np.ndarray:
        """Treatment rows for unobserved patients (Sec. IV-B1, steps 2-3).

        Identical to ``MDModule.treatment_for`` but against precomputed
        cluster exposure and synergy matrices.
        """
        x = np.atleast_2d(np.asarray(patient_features, dtype=np.float64))
        clusters = self.kmeans.predict(x)
        treatment = self.cluster_drugs[clusters]
        propagated = sparse_backend.matmul(treatment, self.synergy) > 0
        return np.maximum(treatment, propagated.astype(np.int64))

    def patient_representations(self, patient_features: np.ndarray) -> np.ndarray:
        """Pre-propagation patient representations h_i (Eq. 9)."""
        x = np.atleast_2d(np.asarray(patient_features, dtype=np.float64))
        return _leaky_relu(x @ self.patient_weight + self.patient_bias)

    def scores(self, patient_features: np.ndarray) -> np.ndarray:
        """Sigmoid suggestion scores, (batch, n_drugs), in one pass.

        The (batch * n_drugs, hidden + 1) decoder input is assembled by
        broadcasting instead of per-patient gathering; each decoder layer
        is then a single matrix product for the whole batch.
        """
        x = np.atleast_2d(np.asarray(patient_features, dtype=np.float64))
        batch = x.shape[0]
        n = self.num_drugs
        treatment = self.treatment_for(x)

        h_patients = self.patient_representations(x)          # (B, h)
        interaction = (
            h_patients[:, None, :] * self.drug_reps[None, :, :]
        ).reshape(batch * n, -1)                              # h_i ⊙ h'_v
        t_col = np.asarray(treatment, dtype=np.float64).reshape(batch * n, 1)
        z = np.concatenate([interaction, t_col], axis=1)      # Eq. 14 input
        last = len(self.decoder_weights) - 1
        for i, (w, b) in enumerate(zip(self.decoder_weights, self.decoder_biases)):
            z = z @ w + b
            if i < last:
                z = np.maximum(z, 0.0)
        return _stable_sigmoid(z.reshape(-1)).reshape(batch, n)

    def scores_blocked(self, patient_features: np.ndarray, block: int) -> np.ndarray:
        """Fixed-shape scoring: bitwise-independent of batch composition.

        :meth:`scores` feeds BLAS matrices whose row count varies with
        the request batch, and BLAS kernels pick shape-dependent code
        paths (gemv vs. gemm, SIMD tail handling), so the *same patient*
        can score differently in the last bit depending on who shares
        their batch.  That is fine for offline evaluation but breaks the
        online gateway's contract that micro-batched results equal
        sequential ones bitwise.

        This method therefore scores in fixed chunks of exactly
        ``block`` patients — the final chunk padded by repeating its
        last row, padding rows discarded — so every BLAS call in the
        pipeline sees the same shapes no matter how requests were
        coalesced.  Per-row results of a fixed-shape call do not depend
        on the other rows' values or on a row's position (each output
        row is an independent dot-product accumulation), which makes the
        output a pure function of each patient's features.

        A batch of exactly ``block`` rows is bitwise-identical to
        :meth:`scores` on the same rows (it *is* the same call).
        """
        if block < 2:
            # block == 1 would route single rows through BLAS gemv,
            # whose tail handling differs from the gemm path used for
            # multi-row chunks — exactly the nondeterminism this method
            # exists to remove.
            raise ValueError("block must be >= 2")
        x = np.atleast_2d(np.asarray(patient_features, dtype=np.float64))
        batch = x.shape[0]
        out = np.empty((batch, self.num_drugs), dtype=np.float64)
        for start in range(0, batch, block):
            chunk = x[start : start + block]
            real = chunk.shape[0]
            if real < block:
                chunk = np.concatenate(
                    [chunk, np.repeat(chunk[-1:], block - real, axis=0)]
                )
            out[start : start + real] = self.scores(chunk)[:real]
        return out
