"""Model persistence: the ``.npz`` + JSON artifact format.

An artifact is a directory with exactly two files:

* ``manifest.json`` — format version, library version, the full
  :class:`repro.core.DSSDDIConfig` (all four sections), the drug catalog
  (id, name, disease per drug), and bookkeeping such as the stored array
  names.  Everything human-readable lives here.
* ``arrays.npz`` — every numeric array of the fitted state: MDGCN weights
  (patient/drug FC, decoder MLP, DDI adapter), the DDIGCN relation
  embeddings added to the drug representations, the fitted K-means
  clustering, the treatment matrix, the training matrices the LightGCN
  propagation is defined over, and the signed DDI graph edge list.

Restoring involves no randomness or retraining, so a loaded system's
``predict_scores`` is bitwise identical to the saved one's.  The DDIGCN
*training* state (encoder weights) is deliberately not stored: serving
only needs the final embeddings, which travel inside the MD state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .. import __version__ as _repro_version
from ..core.config import DSSDDIConfig
from ..core.md_module import MDModule
from ..core.system import DSSDDI
from ..data.catalog import Drug
from ..data.ddi import DDIDataset
from ..graph import SignedGraph

#: Schema version of the artifact directory.  Version 2 added the
#: propagation_backend / score_chunk_rows config fields; version 3 added
#: the serving ``score_block`` field (fixed-shape deterministic scoring
#: for the online gateway).  Bumping it means older readers fail with
#: the clean "unsupported artifact format version" error instead of a
#: confusing unknown-config-field error.  Older artifacts (which simply
#: lack the newer fields) still load: the config defaults fill them in —
#: ``tests/serving/test_compat.py`` pins the bitwise round-trip for the
#: PR-1 layout.
FORMAT_VERSION = 3
READABLE_VERSIONS = (1, 2, 3)
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_MD_PREFIX = "md."
_EDGES_KEY = "ddi.edges"

PathLike = Union[str, Path]


def save_artifact(system: DSSDDI, path: PathLike) -> Path:
    """Write a fitted system to ``path`` (created as a directory).

    Returns the artifact directory.  Overwrites an existing artifact at
    the same location.
    """
    if system.md_module is None or system.ddi_data is None:
        raise RuntimeError("cannot save an unfitted DSSDDI")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {
        _MD_PREFIX + name: np.asarray(value)
        for name, value in system.md_module.export_state().items()
    }
    graph = system.ddi_data.graph
    edges = sorted(graph.edges_with_signs())
    arrays[_EDGES_KEY] = np.asarray(edges, dtype=np.int64).reshape(-1, 3)

    manifest = {
        "format_version": FORMAT_VERSION,
        "repro_version": _repro_version,
        "config": system.config.to_dict(),
        "num_drugs": graph.num_nodes,
        "catalog": [
            {"did": d.did, "name": d.name, "disease": d.disease}
            for d in system.ddi_data.catalog
        ],
        "arrays": sorted(arrays),
    }
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    np.savez(path / ARRAYS_NAME, **arrays)
    return path


def load_system(path: PathLike) -> DSSDDI:
    """Rebuild a fitted :class:`repro.core.DSSDDI` from an artifact."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    arrays_path = path / ARRAYS_NAME
    if not manifest_path.is_file() or not arrays_path.is_file():
        raise FileNotFoundError(
            f"no DSSDDI artifact at {path} (expected {MANIFEST_NAME} "
            f"and {ARRAYS_NAME})"
        )
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version not in READABLE_VERSIONS:
        raise ValueError(
            f"unsupported artifact format version {version!r} "
            f"(this build reads versions {READABLE_VERSIONS})"
        )

    config = DSSDDIConfig.from_dict(manifest["config"])
    config.validate()

    with np.load(arrays_path) as loaded:
        arrays = {name: loaded[name] for name in loaded.files}

    num_drugs = int(manifest["num_drugs"])
    edges = arrays[_EDGES_KEY].reshape(-1, 3)
    graph = SignedGraph.from_signed_edges(
        num_drugs, ((int(u), int(v), int(s)) for u, v, s in edges)
    )
    catalog = [
        Drug(did=int(e["did"]), name=str(e["name"]), disease=str(e["disease"]))
        for e in manifest["catalog"]
    ]
    ddi_data = DDIDataset(
        graph=graph,
        synergy=graph.edges_of_sign(1),
        antagonism=graph.edges_of_sign(-1),
        catalog=catalog,
    )

    md_state = {
        name[len(_MD_PREFIX) :]: value
        for name, value in arrays.items()
        if name.startswith(_MD_PREFIX)
    }
    md_module = MDModule.from_state(config.md, md_state, graph)
    return DSSDDI._from_artifact(config, md_module, ddi_data)
