"""Model persistence: the ``.npz`` + JSON artifact format.

An artifact is a directory with exactly two files:

* ``manifest.json`` — format version, library version, the full
  :class:`repro.core.DSSDDIConfig` (all four sections), the drug catalog
  (id, name, disease per drug), and bookkeeping such as the stored array
  names.  Everything human-readable lives here.
* ``arrays.npz`` — every numeric array of the fitted state: MDGCN weights
  (patient/drug FC, decoder MLP, DDI adapter), the DDIGCN relation
  embeddings added to the drug representations, the fitted K-means
  clustering, the treatment matrix, the training matrices the LightGCN
  propagation is defined over, and the signed DDI graph edge list.

Restoring involves no randomness or retraining, so a loaded system's
``predict_scores`` is bitwise identical to the saved one's.  The DDIGCN
*training* state (encoder weights) is deliberately not stored: serving
only needs the final embeddings, which travel inside the MD state.

Memory-mapped loading (``load_system(path, mmap_mode="r")``): ``np.savez``
stores each member of ``arrays.npz`` *uncompressed* — the zip is a
catalog of contiguous ``.npy`` payloads — so every array can be mapped
read-only straight out of the file instead of copied into anonymous
memory.  :func:`load_arrays` parses each member's zip local header and
npy header to find the data offset and hands back ``np.memmap`` views.
N worker processes mapping the same artifact share one physical copy of
the weights through the page cache, which is what makes the pre-fork
gateway (``repro-serve --workers N``) scale without N× the RSS.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .. import atomicio
from .. import __version__ as _repro_version
from ..core.config import DSSDDIConfig
from ..core.md_module import MDModule
from ..core.system import DSSDDI
from ..data.catalog import Drug
from ..data.ddi import DDIDataset
from ..graph import SignedGraph

#: Schema version of the artifact directory.  Version 2 added the
#: propagation_backend / score_chunk_rows config fields; version 3 added
#: the serving ``score_block`` field (fixed-shape deterministic scoring
#: for the online gateway); version 4 added per-array SHA-256 integrity
#: digests (``array_digests`` in the manifest) verified on load.
#: Bumping it means older readers fail with the clean "unsupported
#: artifact format version" error instead of a confusing
#: unknown-config-field error.  Older artifacts (which simply lack the
#: newer fields) still load: the config defaults fill them in and
#: digest verification is skipped — ``tests/serving/test_compat.py``
#: pins the bitwise round-trip for the PR-1 layout.
FORMAT_VERSION = 4
READABLE_VERSIONS = (1, 2, 3, 4)
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_MD_PREFIX = "md."
_EDGES_KEY = "ddi.edges"

PathLike = Union[str, Path]


class ArtifactIntegrityError(RuntimeError):
    """An artifact's bytes do not match its manifest digests.

    Raised on load when a stored array's SHA-256 digest disagrees with
    the ``array_digests`` entry recorded at save time, or when an array
    the manifest promises is missing from ``arrays.npz``.  Means the
    artifact was torn, bit-rotted, or tampered with after publication —
    callers (the model registry) quarantine it rather than serve it.
    """


def array_digest(array: np.ndarray) -> str:
    """SHA-256 over one array's identity: dtype, shape, then raw bytes.

    Hashing dtype and shape alongside the data means a reinterpreted
    array (same bytes, different view) fails verification too, not just
    flipped bits.
    """
    h = hashlib.sha256()
    h.update(array.dtype.str.encode("ascii"))
    h.update(repr(tuple(int(d) for d in array.shape)).encode("ascii"))
    h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


def save_artifact(system: DSSDDI, path: PathLike) -> Path:
    """Write a fitted system to ``path`` (created as a directory).

    Returns the artifact directory.  Overwrites an existing artifact at
    the same location.  The write is atomic and durable: both files are
    staged in a temp directory, fsynced, and renamed into place in one
    ``os.replace`` (failpoints ``artifact.save.*``), so a crash leaves
    either the old complete artifact or the new one — never a hybrid —
    and the manifest records a SHA-256 digest per array for the loader
    to verify.
    """
    if system.md_module is None or system.ddi_data is None:
        raise RuntimeError("cannot save an unfitted DSSDDI")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {
        _MD_PREFIX + name: np.asarray(value)
        for name, value in system.md_module.export_state().items()
    }
    graph = system.ddi_data.graph
    edges = sorted(graph.edges_with_signs())
    arrays[_EDGES_KEY] = np.asarray(edges, dtype=np.int64).reshape(-1, 3)

    manifest = {
        "format_version": FORMAT_VERSION,
        "repro_version": _repro_version,
        "config": system.config.to_dict(),
        "num_drugs": graph.num_nodes,
        "catalog": [
            {"did": d.did, "name": d.name, "disease": d.disease}
            for d in system.ddi_data.catalog
        ],
        "arrays": sorted(arrays),
        "array_digests": {name: array_digest(arrays[name]) for name in sorted(arrays)},
    }

    def _write(tmp: Path) -> None:
        with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as fh:  # lint: staged-write
            json.dump(manifest, fh, indent=2)
        np.savez(tmp / ARRAYS_NAME, **arrays)  # lint: staged-write

    atomicio.atomic_write_dir(path, _write, site="artifact.save")
    return path


def _npy_member_memmap(
    path: Path, info: zipfile.ZipInfo, zf: zipfile.ZipFile
) -> Optional[np.ndarray]:
    """Map one stored ``.npy`` zip member in place; ``None`` = not mappable.

    Not mappable: compressed members (savez_compressed), object dtypes,
    and 0-d scalars (np.memmap wants a real extent) — the caller falls
    back to a regular in-memory read for those.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    from numpy.lib import format as npy_format

    header_readers = {
        (1, 0): npy_format.read_array_header_1_0,
        (2, 0): npy_format.read_array_header_2_0,
    }
    with zf.open(info) as member:
        version = npy_format.read_magic(member)
        reader = header_readers.get(version)
        if reader is None:
            return None
        shape, fortran, dtype = reader(member)
        npy_header_size = member.tell()
    if dtype.hasobject or shape == ():
        return None
    # The central directory's header_offset points at the member's zip
    # *local* header (30 fixed bytes + name + extra); the extra field can
    # differ from the central directory's, so read the local lengths.
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", local[26:30])
    data_offset = info.header_offset + 30 + name_len + extra_len + npy_header_size
    return np.memmap(
        path,
        mode="r",
        dtype=dtype,
        shape=shape,
        offset=data_offset,
        order="F" if fortran else "C",
    )


def load_arrays(
    arrays_path: PathLike, mmap_mode: Optional[str] = None
) -> Dict[str, np.ndarray]:
    """The ``arrays.npz`` payload as ``name -> ndarray``.

    With ``mmap_mode="r"`` every mappable member comes back as a
    read-only ``np.memmap`` view into the file (zero copy; the OS page
    cache shares the physical pages across every process mapping the
    same artifact).  Members that cannot be mapped — compressed, object
    dtype, 0-d scalars — are read into memory as usual, so a
    ``savez_compressed`` artifact still loads, just without the sharing.
    Only ``"r"`` is supported: artifacts are immutable by contract.
    """
    arrays_path = Path(arrays_path)
    if mmap_mode is None:
        with np.load(arrays_path) as loaded:
            return {name: loaded[name] for name in loaded.files}
    if mmap_mode != "r":
        raise ValueError(
            f"artifacts are read-only: mmap_mode must be None or 'r', "
            f"got {mmap_mode!r}"
        )
    arrays: Dict[str, np.ndarray] = {}
    fallbacks = []
    with zipfile.ZipFile(arrays_path) as zf:
        for info in zf.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            mapped = _npy_member_memmap(arrays_path, info, zf)
            if mapped is None:
                fallbacks.append((name, info.filename))
            else:
                arrays[name] = mapped
    if fallbacks:
        with np.load(arrays_path) as loaded:
            for name, _member in fallbacks:
                arrays[name] = loaded[name]
    return arrays


def verify_arrays(
    arrays: Dict[str, np.ndarray], manifest: Dict, source: PathLike = "<arrays>"
) -> bool:
    """Check loaded arrays against the manifest's ``array_digests``.

    Returns ``True`` when digests were present and all matched, ``False``
    for pre-v4 manifests that carry none (nothing to verify — legacy
    artifacts stay loadable).  Raises :class:`ArtifactIntegrityError` on
    the first missing array or digest mismatch.
    """
    digests = manifest.get("array_digests")
    if not digests:
        return False
    for name in sorted(digests):
        if name not in arrays:
            raise ArtifactIntegrityError(
                f"artifact {source}: array {name!r} listed in the "
                f"manifest is missing from {ARRAYS_NAME}"
            )
        actual = array_digest(np.asarray(arrays[name]))
        if actual != digests[name]:
            raise ArtifactIntegrityError(
                f"artifact {source}: array {name!r} digest mismatch "
                f"(manifest {digests[name][:12]}…, stored {actual[:12]}…) "
                f"— the artifact is corrupt"
            )
    return True


def verify_artifact(path: PathLike) -> bool:
    """Full integrity check of an artifact directory.

    Reads the manifest and every array and compares digests.  Returns
    ``True`` if digests were verified, ``False`` for legacy digest-less
    artifacts.  Raises :class:`ArtifactIntegrityError` on corruption,
    ``FileNotFoundError``/``ValueError`` on structurally broken or
    unreadable artifacts — the registry maps any of these to quarantine.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    arrays_path = path / ARRAYS_NAME
    if not manifest_path.is_file() or not arrays_path.is_file():
        raise FileNotFoundError(
            f"no DSSDDI artifact at {path} (expected {MANIFEST_NAME} "
            f"and {ARRAYS_NAME})"
        )
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version not in READABLE_VERSIONS:
        raise ValueError(
            f"unsupported artifact format version {version!r} "
            f"(this build reads versions {READABLE_VERSIONS})"
        )
    arrays = load_arrays(arrays_path)
    return verify_arrays(arrays, manifest, source=path)


def load_system(
    path: PathLike, mmap_mode: Optional[str] = None, verify: bool = True
) -> DSSDDI:
    """Rebuild a fitted :class:`repro.core.DSSDDI` from an artifact.

    ``mmap_mode="r"`` memory-maps the weight arrays instead of copying
    them (see :func:`load_arrays`) — the loaded system scores bitwise
    identically either way.

    ``verify=True`` (the default) checks every array against the
    manifest's ``array_digests`` and raises
    :class:`ArtifactIntegrityError` on a mismatch; pre-v4 artifacts
    without digests load unverified.  Verification reads each array's
    bytes once, which for memory-mapped loads also pre-faults the pages.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    arrays_path = path / ARRAYS_NAME
    if not manifest_path.is_file() or not arrays_path.is_file():
        raise FileNotFoundError(
            f"no DSSDDI artifact at {path} (expected {MANIFEST_NAME} "
            f"and {ARRAYS_NAME})"
        )
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version not in READABLE_VERSIONS:
        raise ValueError(
            f"unsupported artifact format version {version!r} "
            f"(this build reads versions {READABLE_VERSIONS})"
        )

    config = DSSDDIConfig.from_dict(manifest["config"])
    config.validate()

    arrays = load_arrays(arrays_path, mmap_mode=mmap_mode)
    if verify:
        verify_arrays(arrays, manifest, source=path)

    num_drugs = int(manifest["num_drugs"])
    edges = arrays[_EDGES_KEY].reshape(-1, 3)
    graph = SignedGraph.from_signed_edges(
        num_drugs, ((int(u), int(v), int(s)) for u, v, s in edges)
    )
    catalog = [
        Drug(did=int(e["did"]), name=str(e["name"]), disease=str(e["disease"]))
        for e in manifest["catalog"]
    ]
    ddi_data = DDIDataset(
        graph=graph,
        synergy=graph.edges_of_sign(1),
        antagonism=graph.edges_of_sign(-1),
        catalog=catalog,
    )

    md_state = {
        name[len(_MD_PREFIX) :]: value
        for name, value in arrays.items()
        if name.startswith(_MD_PREFIX)
    }
    md_module = MDModule.from_state(config.md, md_state, graph)
    return DSSDDI._from_artifact(config, md_module, ddi_data)
