"""A small thread-safe LRU cache with hit/miss accounting.

The suggestion service uses it for MS-module explanations: an explanation
depends only on the suggested drug *set* (see
:func:`repro.core.ms_module.canonical_suggestion`), and real traffic is
heavily skewed toward a few popular suggestion sets, so repeated
suggestions across patients are served without re-running Algorithm 1.

Every operation holds one internal lock, which makes the cache safe under
the online gateway's worker threads (:mod:`repro.server`): concurrent
``get``/``put`` on the same key at worst compute one explanation twice,
never corrupt the eviction order or the counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Least-recently-used cache with hit/miss counters (thread-safe).

    ``maxsize=0`` disables the cache entirely (every lookup misses and
    nothing is stored), which keeps the calling code branch-free.

    Usage::

        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")      # 1, counts a hit
        cache.get("b")      # None, counts a miss
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (marking it most recently used) or None."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
