"""Serving subsystem: model persistence + the batched suggestion service.

The core package (``repro.core``) trains DSSDDI in-process; this package
makes fit-once/serve-many possible:

* :mod:`repro.serving.artifact` — ``DSSDDI.save`` / ``DSSDDI.load``
  backing store (``manifest.json`` + ``arrays.npz``), bitwise-exact.
* :mod:`repro.serving.scorer` — :class:`BatchScorer`, the vectorized
  replica of ``MDModule.predict_scores`` with all request-independent
  work precomputed.
* :mod:`repro.serving.cache` — :class:`LRUCache` with hit/miss counters.
* :mod:`repro.serving.service` — :class:`SuggestionService`, the
  request-facing API (``suggest`` / ``explain`` / ``suggest_and_explain``)
  with batched scoring, explanation caching and optional DDI re-ranking.

Quickstart::

    from repro.serving import SuggestionService

    system.fit(x_train, y_train, ddi)       # repro.core.DSSDDI
    system.save("model_dir")

    service = SuggestionService.load("model_dir")
    topk = service.suggest(x_batch, k=3)
    explanations = service.suggest_and_explain(x_batch, k=3)
"""

from .artifact import (
    FORMAT_VERSION,
    ArtifactIntegrityError,
    load_system,
    save_artifact,
    verify_artifact,
)
from .cache import LRUCache
from .scorer import BatchScorer
from .service import ServiceStats, SuggestionService

__all__ = [
    "FORMAT_VERSION",
    "ArtifactIntegrityError",
    "save_artifact",
    "load_system",
    "verify_artifact",
    "LRUCache",
    "BatchScorer",
    "ServiceStats",
    "SuggestionService",
]
