"""DSSDDI reproduction: Decision Support System for Chronic Diseases Based
on Drug-Drug Interactions (Bian et al., ICDE 2023).

Top-level convenience imports::

    from repro import DSSDDI, DSSDDIConfig, generate_chronic_cohort

Package layout (see DESIGN.md for the full inventory):

* ``repro.nn``      -- numpy autograd + layers + optimizers (torch substitute)
* ``repro.graph``   -- graph types, truss machinery, community search
* ``repro.gnn``     -- GIN / SGCN / SiGAT / SNEA / LightGCN / GCMC / GRU
* ``repro.ml``      -- K-means, logistic regression, SVM
* ``repro.data``    -- synthetic cohorts, DDI graph, DRKG TransE, splits
* ``repro.causal``  -- treatment matrix + counterfactual links
* ``repro.core``    -- the DSSDDI system (DDI / MD / MS modules)
* ``repro.baselines`` -- UserSim, ECC, SVM, GCMC, LightGCN, SafeDrug,
  Bipar-GCN, CauseRec
* ``repro.metrics`` -- Precision/Recall/NDCG@k, SS@k, similarity analysis
* ``repro.serving`` -- model persistence + the batched SuggestionService
* ``repro.experiments`` -- regeneration harness for every table and figure
* ``repro.pipeline`` -- cached, parallel experiment pipeline (``repro`` CLI)
* ``repro.train``   -- unified training engine (Trainer, checkpoints, resume)
* ``repro.server``  -- online gateway (micro-batching, hot-swap registry)
"""

from .core import DSSDDI, DSSDDIConfig
from .data import generate_chronic_cohort, generate_ddi, generate_mimic, split_patients

__version__ = "1.8.0"

from .serving import SuggestionService  # noqa: E402  (needs __version__)

__all__ = [
    "DSSDDI",
    "DSSDDIConfig",
    "SuggestionService",
    "generate_chronic_cohort",
    "generate_ddi",
    "generate_mimic",
    "split_patients",
    "__version__",
]
