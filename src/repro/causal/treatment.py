"""Treatment-matrix construction for the MD module's causal model.

Section IV-B1 defines the treatment T in three steps:

1. **Observed links**: T_iv = 1 if patient S_i takes drug D_v.
2. **Cluster propagation**: cluster the patients (K-means, k = number of
   chronic diseases); if T_iv = 1 and c(S_j) = c(S_i), then T_jv = 1 —
   patients similar to a treated patient count as treated.
3. **DDI propagation**: if T_iv = 1 and e_vu = +1 (synergy) in the DDI
   graph, then T_iu = 1 — synergistic partners of a treated drug count as
   treated for the same patient.

The resulting binary matrix answers "would this patient plausibly be
exposed to this drug, given similar patients and drug synergies?", which is
the treatment whose causal effect on medication use MDGCN learns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph import SignedGraph
from ..ml import kmeans


@dataclass
class TreatmentAssignment:
    """Treatment matrix plus the clustering that produced it.

    Attributes:
        matrix: (m, n_drugs) binary treatment T.
        clusters: (m,) patient cluster indices c(S_i).
        stage1 / stage2: intermediate matrices (observed, +cluster) kept for
            inspection and tests.
    """

    matrix: np.ndarray
    clusters: np.ndarray
    stage1: np.ndarray
    stage2: np.ndarray


def build_treatment(
    features: np.ndarray,
    medication_use: np.ndarray,
    ddi_graph: SignedGraph,
    num_clusters: int,
    seed: int = 0,
    clusters: Optional[np.ndarray] = None,
) -> TreatmentAssignment:
    """Run the three-step treatment construction.

    Args:
        features: (m, d) observed patient features (clustering input).
        medication_use: (m, n_drugs) binary matrix Y of observed links.
        ddi_graph: the signed DDI graph (synergy edges drive step 3).
        num_clusters: k for K-means; the paper uses the number of chronic
            diseases in the observed data.
        seed: RNG seed for the clustering.
        clusters: pre-computed cluster labels (skips K-means when given).
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(medication_use)
    if features.shape[0] != y.shape[0]:
        raise ValueError("features and medication_use disagree on patients")
    if y.shape[1] != ddi_graph.num_nodes:
        raise ValueError("medication_use and DDI graph disagree on drugs")
    m = features.shape[0]

    # Step 1: observed links.
    stage1 = (y > 0).astype(np.int64)

    # Step 2: cluster propagation.
    if clusters is None:
        k = min(num_clusters, m)
        clusters = kmeans(features, k, seed=seed).labels
    else:
        clusters = np.asarray(clusters, dtype=np.int64)
        if clusters.shape[0] != m:
            raise ValueError("clusters length must match the number of patients")
    stage2 = stage1.copy()
    for cluster_id in np.unique(clusters):
        members = clusters == cluster_id
        # Any drug taken by anyone in the cluster becomes treatment-1 for all.
        cluster_drugs = stage1[members].max(axis=0)
        stage2[members] = np.maximum(stage2[members], cluster_drugs[None, :])

    # Step 3: DDI propagation along synergy edges.
    n_drugs = y.shape[1]
    synergy = np.zeros((n_drugs, n_drugs))
    for u, v, sign in ddi_graph.edges_with_signs():
        if sign == 1:
            synergy[u, v] = 1.0
            synergy[v, u] = 1.0
    propagated = (stage2 @ synergy) > 0
    matrix = np.maximum(stage2, propagated.astype(np.int64))

    return TreatmentAssignment(
        matrix=matrix, clusters=clusters, stage1=stage1, stage2=stage2
    )
