"""Treatment-matrix construction for the MD module's causal model.

Section IV-B1 defines the treatment T in three steps:

1. **Observed links**: T_iv = 1 if patient S_i takes drug D_v.
2. **Cluster propagation**: cluster the patients (K-means, k = number of
   chronic diseases); if T_iv = 1 and c(S_j) = c(S_i), then T_jv = 1 —
   patients similar to a treated patient count as treated.
3. **DDI propagation**: if T_iv = 1 and e_vu = +1 (synergy) in the DDI
   graph, then T_iu = 1 — synergistic partners of a treated drug count as
   treated for the same patient.

The resulting binary matrix answers "would this patient plausibly be
exposed to this drug, given similar patients and drug synergies?", which is
the treatment whose causal effect on medication use MDGCN learns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gnn import synergy_adjacency
from ..graph import SignedGraph
from ..ml import kmeans
from ..nn import sparse as sparse_backend


@dataclass
class TreatmentAssignment:
    """Treatment matrix plus the clustering that produced it.

    Attributes:
        matrix: (m, n_drugs) binary treatment T.
        clusters: (m,) patient cluster indices c(S_i).
        stage1 / stage2: intermediate matrices (observed, +cluster) kept for
            inspection and tests.
    """

    matrix: np.ndarray
    clusters: np.ndarray
    stage1: np.ndarray
    stage2: np.ndarray


def build_treatment(
    features: np.ndarray,
    medication_use: np.ndarray,
    ddi_graph: SignedGraph,
    num_clusters: int,
    seed: int = 0,
    clusters: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
) -> TreatmentAssignment:
    """Run the three-step treatment construction.

    Args:
        features: (m, d) observed patient features (clustering input).
        medication_use: (m, n_drugs) binary matrix Y of observed links.
        ddi_graph: the signed DDI graph (synergy edges drive step 3).
        num_clusters: k for K-means; the paper uses the number of chronic
            diseases in the observed data.
        seed: RNG seed for the clustering.
        clusters: pre-computed cluster labels (skips K-means when given).
        backend: representation policy for the step-3 synergy adjacency
            ("auto" / "dense" / "sparse"); defaults to the process-wide
            policy.  Callers pinning a backend (e.g.
            ``MDGCNConfig.propagation_backend``) pass it through so fit
            and post-fit derivations use one consistent path.
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(medication_use)
    if features.shape[0] != y.shape[0]:
        raise ValueError("features and medication_use disagree on patients")
    if y.shape[1] != ddi_graph.num_nodes:
        raise ValueError("medication_use and DDI graph disagree on drugs")
    m = features.shape[0]

    # Step 1: observed links.
    stage1 = (y > 0).astype(np.int64)

    # Step 2: cluster propagation.
    if clusters is None:
        k = min(num_clusters, m)
        clusters = kmeans(features, k, seed=seed).labels
    else:
        clusters = np.asarray(clusters, dtype=np.int64)
        if clusters.shape[0] != m:
            raise ValueError("clusters length must match the number of patients")
    # Any drug taken by anyone in the cluster becomes treatment-1 for all:
    # scatter-max per-cluster exposure, then broadcast back to the members.
    # Labels are remapped through np.unique so arbitrary (negative,
    # non-contiguous) caller-provided cluster ids work like the k-means ones.
    unique_clusters, inverse = np.unique(clusters, return_inverse=True)
    cluster_drugs = np.zeros((len(unique_clusters), y.shape[1]), dtype=np.int64)
    np.maximum.at(cluster_drugs, inverse, stage1)
    stage2 = np.maximum(stage1, cluster_drugs[inverse])

    # Step 3: DDI propagation along synergy edges (vectorized scatter;
    # CSR when the DDI graph is large and sparse enough for the policy).
    synergy = synergy_adjacency(ddi_graph, backend)
    propagated = sparse_backend.matmul(stage2, synergy) > 0
    matrix = np.maximum(stage2, propagated.astype(np.int64))

    return TreatmentAssignment(
        matrix=matrix, clusters=clusters, stage1=stage1, stage2=stage2
    )
