"""Causal machinery of the Medical Decision module.

Treatment-matrix construction (three-step definition of Sec. IV-B1) and
nearest-opposite-treatment counterfactual links (Eq. 7-8).
"""

from .treatment import TreatmentAssignment, build_treatment
from .counterfactual import (
    CounterfactualLinks,
    build_counterfactual_links,
    pairwise_distances,
    suggest_gammas,
)

__all__ = [
    "TreatmentAssignment",
    "build_treatment",
    "CounterfactualLinks",
    "build_counterfactual_links",
    "pairwise_distances",
    "suggest_gammas",
]
