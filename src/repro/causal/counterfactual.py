"""Counterfactual link construction (Eq. 7-8 of the paper).

For every patient-drug pair (S_i, D_v) we look for the *nearest neighbour
with the opposite treatment*:

    (S_j, D_u) = argmin { dis(x_i, x_j) + dis(z_v, z_u) :
                          T_ju = 1 - T_iv,
                          dis(x_i, x_j) < gamma_p,
                          dis(z_v, z_u) < gamma_d }

and take its outcome y_ju as the counterfactual outcome y^CF_iv with the
flipped treatment T^CF_iv = 1 - T_iv.  Pairs without a qualifying neighbour
keep their factual treatment and outcome (Eq. 8).

Implementation notes
--------------------
A naive scan is O((m n)^2).  We instead factor the minimization:

    min_{j,u} D_p[i,j] + D_d[v,u]
  = min_j ( D_p[i,j] + f_v^t(j) ),   f_v^t(j) = min_{u : T_ju = t} D_d[v,u]

computing ``f_v^t`` once per (drug, treatment-value) and then a masked
argmin over patients — O(n m^2) with dense numpy ops, comfortably fast at
cohort scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

_INF = np.inf


@dataclass
class CounterfactualLinks:
    """Counterfactual training data for MDGCN.

    Attributes:
        treatment_cf: (m, n) counterfactual treatment matrix T^CF.
        outcome_cf: (m, n) counterfactual adjacency Y^CF.
        matched: (m, n) bool — True where Eq. 7 found a neighbour.
        neighbor_patient / neighbor_drug: indices (j, u) of the matched
            neighbour, -1 where unmatched.
    """

    treatment_cf: np.ndarray
    outcome_cf: np.ndarray
    matched: np.ndarray
    neighbor_patient: np.ndarray
    neighbor_drug: np.ndarray

    @property
    def match_rate(self) -> float:
        """Fraction of pairs with a counterfactual neighbour."""
        return float(self.matched.mean())


def pairwise_distances(a: np.ndarray, b: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense Euclidean distance matrix between row sets."""
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    sq = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    return np.sqrt(np.maximum(sq, 0.0))


def build_counterfactual_links(
    patient_features: np.ndarray,
    drug_features: np.ndarray,
    treatment: np.ndarray,
    outcomes: np.ndarray,
    gamma_p: float,
    gamma_d: float,
) -> CounterfactualLinks:
    """Construct T^CF and Y^CF per Eq. 7-8.

    Args:
        patient_features: (m, d1) original patient features x_i.
        drug_features: (n, d2) original drug features z_v.
        treatment: (m, n) binary treatment matrix T.
        outcomes: (m, n) binary medication use Y.
        gamma_p: max patient distance to count as similar.
        gamma_d: max drug distance to count as similar.
    """
    treatment = np.asarray(treatment, dtype=np.int64)
    outcomes = np.asarray(outcomes, dtype=np.int64)
    if treatment.shape != outcomes.shape:
        raise ValueError("treatment and outcomes must share shape")
    m, n = treatment.shape
    if patient_features.shape[0] != m:
        raise ValueError("patient_features rows must match treatment rows")
    if drug_features.shape[0] != n:
        raise ValueError("drug_features rows must match treatment columns")
    if gamma_p <= 0 or gamma_d <= 0:
        raise ValueError("gamma_p and gamma_d must be positive")

    dist_p = pairwise_distances(patient_features)
    dist_d = pairwise_distances(drug_features)

    # Distances at/above the thresholds are disqualified.
    dist_p_masked = np.where(dist_p < gamma_p, dist_p, _INF)
    dist_d_masked = np.where(dist_d < gamma_d, dist_d, _INF)

    treatment_cf = treatment.copy()
    outcome_cf = outcomes.copy()
    matched = np.zeros((m, n), dtype=bool)
    neighbor_patient = np.full((m, n), -1, dtype=np.int64)
    neighbor_drug = np.full((m, n), -1, dtype=np.int64)

    for v in range(n):
        drug_dist = dist_d_masked[v]  # (n,)
        # f[t][j] = min over drugs u with T[j, u] = t of dist_d[v, u]
        best_u = np.empty((2, m), dtype=np.int64)
        best_dist = np.empty((2, m))
        for t in (0, 1):
            candidate = np.where(treatment == t, drug_dist[None, :], _INF)  # (m, n)
            best_u[t] = candidate.argmin(axis=1)
            best_dist[t] = candidate[np.arange(m), best_u[t]]

        for t_iv in (0, 1):
            rows = np.nonzero(treatment[:, v] == t_iv)[0]
            if len(rows) == 0:
                continue
            opposite = 1 - t_iv
            # total[i, j] = dist_p[i, j] + f_opposite[j]
            total = dist_p_masked[rows] + best_dist[opposite][None, :]
            j_star = total.argmin(axis=1)
            value = total[np.arange(len(rows)), j_star]
            ok = np.isfinite(value)
            good_rows = rows[ok]
            j_good = j_star[ok]
            u_good = best_u[opposite][j_good]
            matched[good_rows, v] = True
            neighbor_patient[good_rows, v] = j_good
            neighbor_drug[good_rows, v] = u_good
            treatment_cf[good_rows, v] = opposite
            outcome_cf[good_rows, v] = outcomes[j_good, u_good]

    return CounterfactualLinks(
        treatment_cf=treatment_cf,
        outcome_cf=outcome_cf,
        matched=matched,
        neighbor_patient=neighbor_patient,
        neighbor_drug=neighbor_drug,
    )


def suggest_gammas(
    patient_features: np.ndarray,
    drug_features: np.ndarray,
    quantile: float = 0.25,
) -> Tuple[float, float]:
    """Data-driven default thresholds: the given quantile of pairwise distances.

    The paper treats gamma_p and gamma_d as hyperparameters; a low quantile
    keeps only genuinely similar patients/drugs as counterfactual donors.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    dist_p = pairwise_distances(patient_features)
    dist_d = pairwise_distances(drug_features)
    off_p = dist_p[np.triu_indices_from(dist_p, k=1)]
    off_d = dist_d[np.triu_indices_from(dist_d, k=1)]
    return float(np.quantile(off_p, quantile)), float(np.quantile(off_d, quantile))
