"""Table I: medication suggestion on the chronic data set.

Twelve methods (eight baselines + four DSSDDI backbones) evaluated with
Precision@k, Recall@k and NDCG@k for k = 1..6 on the held-out patients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics import ndcg_at_k, precision_at_k, recall_at_k
from ..pipeline import experiment, stage
from .common import (
    ChronicExperimentData,
    Scale,
    TABLE1_METHODS,
    format_table,
    load_chronic,
    run_methods,
)

KS = (1, 2, 3, 4, 5, 6)


@dataclass
class Table1Result:
    """metric[method][k] = {precision, recall, ndcg}."""

    metrics: Dict[str, Dict[int, Dict[str, float]]]
    scores: Dict[str, np.ndarray]

    def best_method_at(self, metric: str, k: int) -> str:
        return max(self.metrics, key=lambda m: self.metrics[m][k][metric])

    def render(self) -> str:
        ks = sorted(next(iter(self.metrics.values())), reverse=True)
        headers = ["Method"] + [
            f"{metric}@{k}" for k in ks for metric in ("P", "R", "NDCG")
        ]
        rows = []
        for method in self.metrics:
            row: List = [method]
            for k in ks:
                entry = self.metrics[method][k]
                row.extend([entry["precision"], entry["recall"], entry["ndcg"]])
            rows.append(row)
        return format_table(headers, rows)


def compute_table1(
    data: ChronicExperimentData,
    scores: Dict[str, np.ndarray],
    ks: Sequence[int] = KS,
) -> Table1Result:
    """Metric phase: P/R/NDCG@k per method from held-out score matrices."""
    metrics: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name, score in scores.items():
        metrics[name] = {
            k: {
                "precision": precision_at_k(score, data.y_test, k),
                "recall": recall_at_k(score, data.y_test, k),
                "ndcg": ndcg_at_k(score, data.y_test, k),
            }
            for k in ks
        }
    return Table1Result(metrics=metrics, scores=scores)


def run_table1(
    scale: Optional[Scale] = None,
    methods: Optional[Sequence[str]] = None,
    data: Optional[ChronicExperimentData] = None,
    ks: Sequence[int] = KS,
) -> Table1Result:
    """Regenerate Table I (optionally a subset of methods / smaller scale)."""
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    scores = run_methods(data, scale, methods)
    return compute_table1(data, scores, ks=ks)


@experiment(
    "table1", stage="table1.result",
    title="Table I - medication suggestion (chronic data)",
)
@stage("table1.result", inputs=("chronic.data", "chronic.scores"))
def stage_table1(ctx, data: ChronicExperimentData, scores) -> Table1Result:
    """Pipeline metric stage over the shared score matrices."""
    return compute_table1(data, scores, ks=KS)


def main(scale_name: str = "small") -> Table1Result:
    """Legacy entry point (``python -m repro.experiments table1``)."""
    result = run_table1(Scale.by_name(scale_name))
    print("Table I - medication suggestion (chronic data)")
    print(result.render())
    return result
