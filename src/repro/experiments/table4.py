"""Table IV: validation on the (synthetic) MIMIC-III diagnostic data.

Multi-visit EHR protocol: previous visits' diagnoses/procedures are the
patient features, the last visit's medications the label.  The downloaded
MIMIC DDI data contains only antagonistic pairs between anonymous drugs,
so signed backbones are unavailable and only DSSDDI(GIN) is reported —
exactly as in the paper.  Metrics: P/R/NDCG at k in {4, 6, 8}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..baselines import (
    BiparGCN,
    CauseRec,
    ECC,
    GCMCRecommender,
    LightGCNRecommender,
    SafeDrug,
    SVMRecommender,
    UserSim,
)
from ..core import DDIModule, MDModule
from ..core.config import DDIGCNConfig, MDGCNConfig
from ..data import MimicDataset, generate_mimic, split_patients, visit_step_features
from ..metrics import ndcg_at_k, precision_at_k, recall_at_k
from .common import Scale, format_table

KS = (4, 6, 8)

TABLE4_METHODS = (
    "UserSim",
    "ECC",
    "SVM",
    "GCMC",
    "LightGCN",
    "SafeDrug",
    "Bipar-GCN",
    "CauseRec",
    "DSSDDI(GIN)",
)


@dataclass
class Table4Result:
    metrics: Dict[str, Dict[int, Dict[str, float]]]
    scores: Dict[str, np.ndarray]

    def best_method_at(self, metric: str, k: int) -> str:
        return max(self.metrics, key=lambda m: self.metrics[m][k][metric])

    def render(self) -> str:
        ks = sorted(next(iter(self.metrics.values())))
        headers = ["Method"] + [
            f"{metric}@{k}" for k in ks for metric in ("P", "R", "NDCG")
        ]
        rows = []
        for method, by_k in self.metrics.items():
            row = [method]
            for k in ks:
                entry = by_k[k]
                row.extend([entry["precision"], entry["recall"], entry["ndcg"]])
            rows.append(row)
        return format_table(headers, rows)


def _dssddi_gin_scores(
    data: MimicDataset,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    scale: Scale,
) -> np.ndarray:
    """DSSDDI with the GIN backbone on the antagonism-only MIMIC DDI."""
    ddi_module = DDIModule(
        DDIGCNConfig(
            backbone="gin", hidden_dim=scale.hidden_dim, epochs=scale.ddi_epochs
        )
    )
    ddi_module.fit(data.ddi)
    md = MDModule(MDGCNConfig(hidden_dim=scale.hidden_dim, epochs=scale.md_epochs))
    md.fit(
        data.features[train_idx],
        data.labels[train_idx],
        np.eye(data.num_drugs),
        data.ddi,
        ddi_module.drug_embeddings(),
        num_clusters=10,
    )
    return md.predict_scores(data.features[test_idx])


def run_table4(
    scale: Optional[Scale] = None,
    methods: Optional[Sequence[str]] = None,
    num_patients: Optional[int] = None,
    ks: Sequence[int] = KS,
) -> Table4Result:
    """Regenerate Table IV at the requested scale."""
    scale = scale or Scale.small()
    n = num_patients or min(scale.num_patients * 2, 6350)
    data = generate_mimic(num_patients=n, seed=scale.seed + 7)
    split = split_patients(n, seed=scale.seed + 8)
    x_train, y_train = data.features[split.train], data.labels[split.train]
    x_test, y_test = data.features[split.test], data.labels[split.test]
    steps_all = visit_step_features(data, max_visits=3)
    steps_train = [s[split.train] for s in steps_all]
    steps_test = [s[split.test] for s in steps_all]

    h = max(16, scale.hidden_dim // 2)

    def run_simple(model) -> np.ndarray:
        model.fit(x_train, y_train)
        return model.predict_scores(x_test)

    def run_safedrug() -> np.ndarray:
        model = SafeDrug(hidden_dim=h, epochs=scale.gnn_epochs, ddi_graph=data.ddi)
        model.fit(x_train, y_train, visit_steps=steps_train)
        return model.predict_scores(x_test, visit_steps=steps_test)

    factories = {
        "UserSim": lambda: run_simple(UserSim()),
        "ECC": lambda: run_simple(ECC(num_chains=2, max_iter=scale.classic_epochs)),
        "SVM": lambda: run_simple(SVMRecommender(epochs=max(10, scale.classic_epochs // 2))),
        "GCMC": lambda: run_simple(
            GCMCRecommender(hidden_dim=h, out_dim=h, epochs=scale.gnn_epochs)
        ),
        "LightGCN": lambda: run_simple(
            LightGCNRecommender(hidden_dim=h, epochs=scale.gnn_epochs)
        ),
        "SafeDrug": run_safedrug,
        "Bipar-GCN": lambda: run_simple(BiparGCN(hidden_dim=h, epochs=scale.gnn_epochs)),
        "CauseRec": lambda: run_simple(CauseRec(hidden_dim=h, epochs=scale.gnn_epochs)),
        "DSSDDI(GIN)": lambda: _dssddi_gin_scores(data, split.train, split.test, scale),
    }
    chosen = list(methods) if methods is not None else list(TABLE4_METHODS)
    unknown = set(chosen) - set(factories)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")

    metrics: Dict[str, Dict[int, Dict[str, float]]] = {}
    scores: Dict[str, np.ndarray] = {}
    for name in chosen:
        score = factories[name]()
        scores[name] = score
        metrics[name] = {
            k: {
                "precision": precision_at_k(score, y_test, k),
                "recall": recall_at_k(score, y_test, k),
                "ndcg": ndcg_at_k(score, y_test, k),
            }
            for k in ks
        }
    return Table4Result(metrics=metrics, scores=scores)


def main(scale_name: str = "small") -> Table4Result:
    result = run_table4(Scale.by_name(scale_name))
    print("Table IV - medication suggestion (synthetic MIMIC-III)")
    print(result.render())
    return result
