"""Table IV: validation on the (synthetic) MIMIC-III diagnostic data.

Multi-visit EHR protocol: previous visits' diagnoses/procedures are the
patient features, the last visit's medications the label.  The downloaded
MIMIC DDI data contains only antagonistic pairs between anonymous drugs,
so signed backbones are unavailable and only DSSDDI(GIN) is reported —
exactly as in the paper.  Metrics: P/R/NDCG at k in {4, 6, 8}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    BiparGCN,
    CauseRec,
    ECC,
    GCMCRecommender,
    LightGCNRecommender,
    SafeDrug,
    SVMRecommender,
    UserSim,
)
from ..core import DDIModule, MDModule
from ..core.config import DDIGCNConfig, MDGCNConfig
from ..data import (
    MimicDataset,
    Split,
    generate_mimic,
    split_patients,
    visit_step_features,
)
from ..metrics import ndcg_at_k, precision_at_k, recall_at_k
from ..pipeline import experiment, stage
from .common import Scale, format_table

KS = (4, 6, 8)

TABLE4_METHODS = (
    "UserSim",
    "ECC",
    "SVM",
    "GCMC",
    "LightGCN",
    "SafeDrug",
    "Bipar-GCN",
    "CauseRec",
    "DSSDDI(GIN)",
)


@dataclass
class Table4Result:
    """metric[method][k] = {precision, recall, ndcg} on synthetic MIMIC."""

    metrics: Dict[str, Dict[int, Dict[str, float]]]
    scores: Dict[str, np.ndarray]

    def best_method_at(self, metric: str, k: int) -> str:
        return max(self.metrics, key=lambda m: self.metrics[m][k][metric])

    def render(self) -> str:
        ks = sorted(next(iter(self.metrics.values())))
        headers = ["Method"] + [
            f"{metric}@{k}" for k in ks for metric in ("P", "R", "NDCG")
        ]
        rows = []
        for method, by_k in self.metrics.items():
            row = [method]
            for k in ks:
                entry = by_k[k]
                row.extend([entry["precision"], entry["recall"], entry["ndcg"]])
            rows.append(row)
        return format_table(headers, rows)


def _dssddi_gin_scores(
    data: MimicDataset,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    scale: Scale,
) -> np.ndarray:
    """DSSDDI with the GIN backbone on the antagonism-only MIMIC DDI."""
    ddi_module = DDIModule(
        DDIGCNConfig(
            backbone="gin", hidden_dim=scale.hidden_dim, epochs=scale.ddi_epochs
        )
    )
    ddi_module.fit(data.ddi)
    md = MDModule(MDGCNConfig(hidden_dim=scale.hidden_dim, epochs=scale.md_epochs))
    md.fit(
        data.features[train_idx],
        data.labels[train_idx],
        np.eye(data.num_drugs),
        data.ddi,
        ddi_module.drug_embeddings(),
        num_clusters=10,
    )
    return md.predict_scores(data.features[test_idx])


@dataclass
class MimicExperimentData:
    """Synthetic MIMIC cohort + split + visit-step feature views."""

    data: MimicDataset
    split: Split
    steps_all: List[np.ndarray]

    @property
    def x_train(self) -> np.ndarray:
        """Training-visit features of the train patients."""
        return self.data.features[self.split.train]

    @property
    def y_train(self) -> np.ndarray:
        """Last-visit medication labels of the train patients."""
        return self.data.labels[self.split.train]

    @property
    def x_test(self) -> np.ndarray:
        """Training-visit features of the held-out patients."""
        return self.data.features[self.split.test]

    @property
    def y_test(self) -> np.ndarray:
        """Last-visit medication labels of the held-out patients."""
        return self.data.labels[self.split.test]


def load_mimic(scale: Scale, num_patients: Optional[int] = None) -> MimicExperimentData:
    """Generate the synthetic MIMIC cohort at the requested scale."""
    n = num_patients or min(scale.num_patients * 2, 6350)
    data = generate_mimic(num_patients=n, seed=scale.seed + 7)
    split = split_patients(n, seed=scale.seed + 8)
    steps_all = visit_step_features(data, max_visits=3)
    return MimicExperimentData(data=data, split=split, steps_all=steps_all)


def compute_table4_scores(
    bundle: MimicExperimentData,
    scale: Scale,
    methods: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Fit/score phase: held-out score matrix per Table IV method."""
    data, split = bundle.data, bundle.split
    x_train, y_train = bundle.x_train, bundle.y_train
    x_test = bundle.x_test
    steps_train = [s[split.train] for s in bundle.steps_all]
    steps_test = [s[split.test] for s in bundle.steps_all]

    h = max(16, scale.hidden_dim // 2)

    def run_simple(model) -> np.ndarray:
        model.fit(x_train, y_train)
        return model.predict_scores(x_test)

    def run_safedrug() -> np.ndarray:
        model = SafeDrug(hidden_dim=h, epochs=scale.gnn_epochs, ddi_graph=data.ddi)
        model.fit(x_train, y_train, visit_steps=steps_train)
        return model.predict_scores(x_test, visit_steps=steps_test)

    factories = {
        "UserSim": lambda: run_simple(UserSim()),
        "ECC": lambda: run_simple(ECC(num_chains=2, max_iter=scale.classic_epochs)),
        "SVM": lambda: run_simple(SVMRecommender(epochs=max(10, scale.classic_epochs // 2))),
        "GCMC": lambda: run_simple(
            GCMCRecommender(hidden_dim=h, out_dim=h, epochs=scale.gnn_epochs)
        ),
        "LightGCN": lambda: run_simple(
            LightGCNRecommender(hidden_dim=h, epochs=scale.gnn_epochs)
        ),
        "SafeDrug": run_safedrug,
        "Bipar-GCN": lambda: run_simple(BiparGCN(hidden_dim=h, epochs=scale.gnn_epochs)),
        "CauseRec": lambda: run_simple(CauseRec(hidden_dim=h, epochs=scale.gnn_epochs)),
        "DSSDDI(GIN)": lambda: _dssddi_gin_scores(data, split.train, split.test, scale),
    }
    chosen = list(methods) if methods is not None else list(TABLE4_METHODS)
    unknown = set(chosen) - set(factories)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    return {name: factories[name]() for name in chosen}


def compute_table4(
    bundle: MimicExperimentData,
    scores: Dict[str, np.ndarray],
    ks: Sequence[int] = KS,
) -> Table4Result:
    """Metric phase: P/R/NDCG@k per method on the MIMIC held-out split."""
    y_test = bundle.y_test
    metrics: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name, score in scores.items():
        metrics[name] = {
            k: {
                "precision": precision_at_k(score, y_test, k),
                "recall": recall_at_k(score, y_test, k),
                "ndcg": ndcg_at_k(score, y_test, k),
            }
            for k in ks
        }
    return Table4Result(metrics=metrics, scores=scores)


def run_table4(
    scale: Optional[Scale] = None,
    methods: Optional[Sequence[str]] = None,
    num_patients: Optional[int] = None,
    ks: Sequence[int] = KS,
) -> Table4Result:
    """Regenerate Table IV at the requested scale."""
    scale = scale or Scale.small()
    bundle = load_mimic(scale, num_patients=num_patients)
    scores = compute_table4_scores(bundle, scale, methods)
    return compute_table4(bundle, scores, ks=ks)


@stage("table4.data", params=("scale",), cacheable=False)
def stage_table4_data(ctx) -> MimicExperimentData:
    """Seeded MIMIC cohort + split (recomputing beats deserializing)."""
    return load_mimic(ctx.scale)


@stage("table4.scores", inputs=("table4.data",), serializer="npz")
def stage_table4_scores(ctx, bundle: MimicExperimentData) -> Dict[str, np.ndarray]:
    """Pipeline fit/score stage (the nine Table IV methods)."""
    return compute_table4_scores(bundle, ctx.scale)


@experiment(
    "table4", stage="table4.result",
    title="Table IV - medication suggestion (synthetic MIMIC-III)",
)
@stage("table4.result", inputs=("table4.data", "table4.scores"))
def stage_table4(ctx, bundle: MimicExperimentData, scores) -> Table4Result:
    """Pipeline metric stage over the cached MIMIC scores."""
    return compute_table4(bundle, scores, ks=KS)


def main(scale_name: str = "small") -> Table4Result:
    """Legacy entry point (``python -m repro.experiments table4``)."""
    result = run_table4(Scale.by_name(scale_name))
    print("Table IV - medication suggestion (synthetic MIMIC-III)")
    print(result.render())
    return result
