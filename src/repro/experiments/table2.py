"""Table II: ablation over the drug embedding added to h'_v.

Four variants with the SGCN backbone (the best of Table I):
* ``w/o DDI`` — nothing added,
* ``One-hot`` — one-hot drug ids,
* ``KG`` — TransE embeddings from the (synthetic) DRKG,
* ``DDIGCN`` — the DDI module's learned relation embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core import DSSDDI
from ..metrics import ndcg_at_k, precision_at_k, recall_at_k
from ..pipeline import experiment, stage
from .common import (
    ChronicExperimentData,
    Scale,
    dssddi_config,
    format_table,
    load_chronic,
)

KS = (1, 2, 3, 4, 5, 6)

VARIANTS = {
    "w/o DDI": "none",
    "One-hot": "onehot",
    "KG": "kg",
    "DDIGCN": "ddigcn",
}


@dataclass
class Table2Result:
    """metric[variant][k] = {precision, recall, ndcg} plus raw scores."""

    metrics: Dict[str, Dict[int, Dict[str, float]]]
    scores: Dict[str, np.ndarray]

    def render(self) -> str:
        ks = sorted(next(iter(self.metrics.values())), reverse=True)
        headers = ["Variant"] + [
            f"{metric}@{k}" for k in ks for metric in ("P", "R", "NDCG")
        ]
        rows = []
        for variant, by_k in self.metrics.items():
            row = [variant]
            for k in ks:
                entry = by_k[k]
                row.extend([entry["precision"], entry["recall"], entry["ndcg"]])
            rows.append(row)
        return format_table(headers, rows)


def compute_table2_scores(
    data: ChronicExperimentData, scale: Scale, backbone: str = "sgcn"
) -> Dict[str, np.ndarray]:
    """Fit/score phase: one DSSDDI fit per drug-embedding variant."""
    scores: Dict[str, np.ndarray] = {}
    for label, mode in VARIANTS.items():
        config = dssddi_config(scale, backbone)
        config.md.drug_embedding_mode = mode
        system = DSSDDI(config)
        system.fit(data.x_train, data.y_train, data.cohort.ddi, kg_epochs=8)
        scores[label] = system.predict_scores(data.x_test)
    return scores


def compute_table2(
    data: ChronicExperimentData,
    scores: Dict[str, np.ndarray],
    ks: Sequence[int] = KS,
) -> Table2Result:
    """Metric phase: P/R/NDCG@k per ablation variant."""
    metrics: Dict[str, Dict[int, Dict[str, float]]] = {}
    for label, score in scores.items():
        metrics[label] = {
            k: {
                "precision": precision_at_k(score, data.y_test, k),
                "recall": recall_at_k(score, data.y_test, k),
                "ndcg": ndcg_at_k(score, data.y_test, k),
            }
            for k in ks
        }
    return Table2Result(metrics=metrics, scores=scores)


def run_table2(
    scale: Optional[Scale] = None,
    data: Optional[ChronicExperimentData] = None,
    ks: Sequence[int] = KS,
    backbone: str = "sgcn",
) -> Table2Result:
    """Regenerate the Table II ablation."""
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    return compute_table2(data, compute_table2_scores(data, scale, backbone), ks=ks)


@stage("table2.scores", inputs=("chronic.data",), serializer="npz")
def stage_table2_scores(ctx, data: ChronicExperimentData) -> Dict[str, np.ndarray]:
    """Pipeline fit/score stage (the four ablation fits)."""
    return compute_table2_scores(data, ctx.scale)


@experiment(
    "table2", stage="table2.result",
    title="Table II - drug-embedding ablation (SGCN backbone)",
)
@stage("table2.result", inputs=("chronic.data", "table2.scores"))
def stage_table2(ctx, data: ChronicExperimentData, scores) -> Table2Result:
    """Pipeline metric stage over the cached variant scores."""
    return compute_table2(data, scores, ks=KS)


def main(scale_name: str = "small") -> Table2Result:
    """Legacy entry point (``python -m repro.experiments table2``)."""
    result = run_table2(Scale.by_name(scale_name))
    print("Table II - drug-embedding ablation (SGCN backbone)")
    print(result.render())
    return result
