"""Command-line entry: ``python -m repro.experiments <experiment> [--scale s]``."""

from __future__ import annotations

import argparse
import sys

from .cases import main_fig8, main_fig9
from .figures import main_fig2, main_fig3, main_fig7
from .table1 import main as main_table1
from .table2 import main as main_table2
from .table3 import main as main_table3
from .table4 import main as main_table4

# Every entry point takes the scale preset name — fig2's cohort size and
# seed follow it, fig3 accepts (and documents ignoring) it, so ``all``
# threads --scale uniformly instead of dropping it for the figures.
EXPERIMENTS = {
    "fig2": main_fig2,
    "fig3": main_fig3,
    "table1": main_table1,
    "table2": main_table2,
    "table3": main_table3,
    "table4": main_table4,
    "fig7": main_fig7,
    "fig8": main_fig8,
    "fig9": main_fig9,
}


def main(argv=None) -> int:
    """Argparse entry; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate a table or figure of the DSSDDI paper. "
            "For cached, parallel runs use the 'repro' pipeline CLI "
            "(python -m repro.pipeline) instead."
        ),
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "full"],
        help="cohort size / training length preset (default: small)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ["fig2", "fig3", "table1", "table2", "table3", "fig7", "fig8", "table4", "fig9"]:
            print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
            EXPERIMENTS[name](args.scale)
        return 0
    EXPERIMENTS[args.experiment](args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
