"""Experiment harness: regenerate every table and figure of the paper.

| Experiment | Paper artifact | Entry point |
|------------|----------------|-------------|
| fig2       | Fig. 2 disease pie           | :func:`run_fig2` |
| fig3       | Fig. 3 drugs per disease     | :func:`run_fig3` |
| table1     | Table I chronic suggestions  | :func:`run_table1` |
| table2     | Table II embedding ablation  | :func:`run_table2` |
| table3     | Table III SS@k               | :func:`run_table3` |
| fig7       | Fig. 7 similarity heat maps  | :func:`run_fig7` |
| fig8       | Fig. 8 explanation subgraphs | :func:`run_fig8` |
| table4     | Table IV MIMIC validation    | :func:`run_table4` |
| fig9       | Fig. 9 rank-movement cases   | :func:`run_fig9` |

Run from the command line::

    python -m repro.experiments table1 --scale small

or — cached and parallel — through the pipeline CLI (the fit/score/metric
phases of every experiment are registered as :mod:`repro.pipeline` stages
at import time; shared work like the DSSDDI(SGCN) fit is computed once
and reused across table1/table3/fig7/fig8/fig9)::

    repro run table1 --scale small
    repro run all --jobs 4
"""

from .common import (
    ChronicExperimentData,
    Scale,
    TABLE1_METHODS,
    dssddi_config,
    format_table,
    load_chronic,
    run_methods,
)
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .table4 import TABLE4_METHODS, Table4Result, run_table4
from .figures import Fig2Result, Fig3Result, Fig7Result, run_fig2, run_fig3, run_fig7
from .cases import CaseStudy, Fig8Result, Fig9Result, run_fig8, run_fig9

__all__ = [
    "Scale",
    "ChronicExperimentData",
    "TABLE1_METHODS",
    "TABLE4_METHODS",
    "load_chronic",
    "run_methods",
    "dssddi_config",
    "format_table",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Fig2Result",
    "Fig3Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "CaseStudy",
]
