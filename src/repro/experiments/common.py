"""Shared harness for the evaluation experiments.

Builds the synthetic chronic cohort, runs every method (baselines and all
DSSDDI backbones) under the paper's protocol (5:3:2 patient split, scores
for the held-out patients), and returns named score matrices ready for the
table-specific metric sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    BiparGCN,
    CauseRec,
    ECC,
    GCMCRecommender,
    LightGCNRecommender,
    SafeDrug,
    SVMRecommender,
    UserSim,
)
from ..core import DSSDDI, DSSDDIConfig, DDIGCNConfig, MDGCNConfig
from ..data import (
    ChronicCohort,
    Split,
    generate_chronic_cohort,
    split_patients,
    standardize_features,
)

#: Method display order of Table I / III.
TABLE1_METHODS = (
    "UserSim",
    "ECC",
    "SVM",
    "GCMC",
    "LightGCN",
    "SafeDrug",
    "Bipar-GCN",
    "CauseRec",
    "DSSDDI(SiGAT)",
    "DSSDDI(SNEA)",
    "DSSDDI(GIN)",
    "DSSDDI(SGCN)",
)


@dataclass
class Scale:
    """Experiment scale knobs (cohort size and training lengths).

    ``full`` matches the paper's setup (4157 patients, 1000/400 epochs);
    ``small``/``medium`` preserve the qualitative ordering at a fraction of
    the runtime and are what the benchmarks exercise.
    """

    name: str
    num_patients: int
    gnn_epochs: int
    ddi_epochs: int
    md_epochs: int
    hidden_dim: int
    classic_epochs: int = 30
    seed: int = 11

    @classmethod
    def tiny(cls) -> "Scale":
        """Smoke-test preset: seconds per experiment, orderings unreliable."""
        return cls("tiny", 120, 25, 30, 40, 16, classic_epochs=10)

    @classmethod
    def small(cls) -> "Scale":
        """Default preset: minutes per experiment, paper orderings hold."""
        return cls("small", 300, 120, 200, 250, 32)

    @classmethod
    def medium(cls) -> "Scale":
        """Intermediate preset between ``small`` and the paper's setup."""
        return cls("medium", 800, 180, 300, 400, 48)

    @classmethod
    def full(cls) -> "Scale":
        """The paper's setup (Sec. V-A3): 4157 patients, 1000/400 epochs."""
        return cls("full", 4157, 300, 400, 1000, 64)

    @classmethod
    def by_name(cls, name: str) -> "Scale":
        """Preset lookup used by the CLIs (``tiny``/``small``/``medium``/``full``)."""
        presets = {
            "tiny": cls.tiny,
            "small": cls.small,
            "medium": cls.medium,
            "full": cls.full,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(f"unknown scale {name!r}") from None


@dataclass
class ChronicExperimentData:
    """Cohort + split + standardized feature views.

    Traditional methods (UserSim, ECC, SVM) consume the *raw* questionnaire
    numerics, as in the paper — they "rely on the patients' numerical
    features" directly (Sec. V-B), which is a large part of why they trail
    the representation-learning methods.  Graph methods get standardized
    features through their input transforms.
    """

    cohort: ChronicCohort
    split: Split
    x: np.ndarray  # standardized features, all patients

    @property
    def x_train(self) -> np.ndarray:
        return self.x[self.split.train]

    @property
    def y_train(self) -> np.ndarray:
        return self.cohort.medications[self.split.train]

    @property
    def x_test(self) -> np.ndarray:
        return self.x[self.split.test]

    @property
    def y_test(self) -> np.ndarray:
        return self.cohort.medications[self.split.test]

    @property
    def raw_train(self) -> np.ndarray:
        return self.cohort.features[self.split.train]

    @property
    def raw_test(self) -> np.ndarray:
        return self.cohort.features[self.split.test]


def load_chronic(scale: Scale) -> ChronicExperimentData:
    """Generate the cohort and the paper's 5:3:2 split."""
    cohort = generate_chronic_cohort(num_patients=scale.num_patients, seed=scale.seed)
    split = split_patients(cohort.num_patients, seed=scale.seed + 1)
    x = standardize_features(cohort.features)
    return ChronicExperimentData(cohort=cohort, split=split, x=x)


def dssddi_config(scale: Scale, backbone: str) -> DSSDDIConfig:
    """DSSDDI config at the given scale with the chosen DDIGCN backbone."""
    return DSSDDIConfig(
        ddi=DDIGCNConfig(
            backbone=backbone, hidden_dim=scale.hidden_dim, epochs=scale.ddi_epochs
        ),
        md=MDGCNConfig(hidden_dim=scale.hidden_dim, epochs=scale.md_epochs),
    )


#: Methods that consume the *raw* questionnaire numerics (see
#: :class:`ChronicExperimentData`); everything else takes standardized
#: features.
TRADITIONAL_METHODS = ("UserSim", "ECC", "SVM")


def make_method_factories(
    data: ChronicExperimentData,
    scale: Scale,
    prefit: Optional[Dict[str, object]] = None,
) -> Dict[str, Callable[[], np.ndarray]]:
    """Factories producing the held-out score matrix per method.

    ``prefit`` maps method names to already-fitted models (anything with
    ``predict_scores``); those factories skip fitting and only score the
    held-out patients.  The pipeline uses this to share one DSSDDI(SGCN)
    / LightGCN fit across every experiment that needs it — the scores are
    identical to a fresh fit because every model is seeded through its
    config.
    """
    cohort = data.cohort

    def run_baseline(model) -> np.ndarray:
        model.fit(data.x_train, data.y_train)
        return model.predict_scores(data.x_test)

    def run_traditional(model) -> np.ndarray:
        # Traditional methods operate on raw questionnaire numerics (paper
        # Sec. V-B); see ChronicExperimentData for the rationale.
        model.fit(data.raw_train, data.y_train)
        return model.predict_scores(data.raw_test)

    def run_dssddi(backbone: str) -> np.ndarray:
        system = DSSDDI(dssddi_config(scale, backbone))
        system.fit(data.x_train, data.y_train, cohort.ddi)
        return system.predict_scores(data.x_test)

    h = max(16, scale.hidden_dim // 2)
    factories = {
        "UserSim": lambda: run_traditional(UserSim()),
        "ECC": lambda: run_traditional(ECC(num_chains=2, max_iter=scale.classic_epochs)),
        "SVM": lambda: run_traditional(SVMRecommender(epochs=max(10, scale.classic_epochs // 2))),
        "GCMC": lambda: run_baseline(
            GCMCRecommender(hidden_dim=h, out_dim=h, epochs=scale.gnn_epochs)
        ),
        "LightGCN": lambda: run_baseline(
            LightGCNRecommender(hidden_dim=h, epochs=scale.gnn_epochs)
        ),
        "SafeDrug": lambda: run_baseline(
            SafeDrug(hidden_dim=h, epochs=scale.gnn_epochs, ddi_graph=cohort.ddi.graph)
        ),
        "Bipar-GCN": lambda: run_baseline(BiparGCN(hidden_dim=h, epochs=scale.gnn_epochs)),
        "CauseRec": lambda: run_baseline(CauseRec(hidden_dim=h, epochs=scale.gnn_epochs)),
        "DSSDDI(SiGAT)": lambda: run_dssddi("sigat"),
        "DSSDDI(SNEA)": lambda: run_dssddi("snea"),
        "DSSDDI(GIN)": lambda: run_dssddi("gin"),
        "DSSDDI(SGCN)": lambda: run_dssddi("sgcn"),
    }
    for name, model in (prefit or {}).items():
        if name not in factories:
            raise ValueError(f"unknown prefit method {name!r}")
        test = data.raw_test if name in TRADITIONAL_METHODS else data.x_test
        factories[name] = lambda m=model, t=test: m.predict_scores(t)
    return factories


def run_methods(
    data: ChronicExperimentData,
    scale: Scale,
    methods: Optional[Sequence[str]] = None,
    prefit: Optional[Dict[str, object]] = None,
) -> Dict[str, np.ndarray]:
    """Run the requested methods (default: the full Table I roster).

    ``prefit`` forwards to :func:`make_method_factories` — fitted models
    keyed by method name whose fit phase should be skipped.
    """
    factories = make_method_factories(data, scale, prefit=prefit)
    chosen = list(methods) if methods is not None else list(TABLE1_METHODS)
    unknown = set(chosen) - set(factories)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    return {name: factories[name]() for name in chosen}


# ----------------------------------------------------------------------
# Shared pipeline stages (repro.pipeline)
#
# The expensive work every chronic-data experiment repeats: generating
# the cohort, fitting DSSDDI(SGCN) (the best backbone — reused by
# table1, table3, fig7, fig8 and fig9), fitting LightGCN (table1,
# table3, fig7, fig8) and producing the full per-method score matrices
# (table1 and table3 evaluate the same suggestions under two metric
# families).  Each experiment module registers its own metric stage on
# top of these.
# ----------------------------------------------------------------------
from ..pipeline import stage  # noqa: E402  (grouped with the stage defs)


@stage("chronic.data", params=("scale",), cacheable=False)
def stage_chronic_data(ctx) -> ChronicExperimentData:
    """Seeded cohort + 5:3:2 split (recomputing beats deserializing)."""
    return load_chronic(ctx.scale)


@stage("chronic.fit.dssddi_sgcn", inputs=("chronic.data",), serializer="dssddi")
def stage_fit_dssddi_sgcn(ctx, data: ChronicExperimentData) -> DSSDDI:
    """Fit DSSDDI(SGCN) once; cached via the serving artifact format.

    With ``--checkpoint-every N`` the fit checkpoints both modules under
    ``<cache>/checkpoints/<stage key>`` and an interrupted run resumes
    from the newest checkpoint; convergence metadata (epochs, early
    stop, resume epoch, checkpoint digest) lands in the run manifest.
    """
    from ..train import checkpoint_digest, latest_checkpoint

    system = DSSDDI(dssddi_config(ctx.scale, "sgcn"))
    ckpt = ctx.checkpoint_dir()
    report = system.fit(
        data.x_train,
        data.y_train,
        data.cohort.ddi,
        checkpoint_dir=ckpt,
        checkpoint_every=ctx.config.checkpoint_every,
    )
    summary = report.training_summary()
    if ckpt is not None:
        newest = latest_checkpoint(Path(ckpt) / "md")
        if newest is not None:
            summary["md"]["checkpoint_digest"] = checkpoint_digest(newest)
    ctx.record_training(summary)
    return system


@stage("chronic.fit.lightgcn", inputs=("chronic.data",), serializer="pickle")
def stage_fit_lightgcn(ctx, data: ChronicExperimentData) -> LightGCNRecommender:
    """Fit the LightGCN baseline with the harness hyperparameters."""
    model = LightGCNRecommender(
        hidden_dim=max(16, ctx.scale.hidden_dim // 2), epochs=ctx.scale.gnn_epochs
    )
    model.fit(data.x_train, data.y_train)
    ctx.record_training({"lightgcn": model.training_log.to_dict()})
    return model


@stage(
    "chronic.scores",
    inputs=("chronic.data", "chronic.fit.dssddi_sgcn", "chronic.fit.lightgcn"),
    serializer="npz",
)
def stage_chronic_scores(ctx, data, dssddi_sgcn, lightgcn) -> Dict[str, np.ndarray]:
    """Held-out score matrices of the full Table I roster (12 methods)."""
    return run_methods(
        data,
        ctx.scale,
        prefit={"DSSDDI(SGCN)": dssddi_sgcn, "LightGCN": lightgcn},
    )


@stage(
    "chronic.publish",
    inputs=("chronic.fit.dssddi_sgcn",),
    serializer="json",
    cacheable=False,
)
def stage_publish(ctx, system: DSSDDI) -> Dict[str, object]:
    """Publish the fitted DSSDDI(SGCN) into the serving artifact root.

    The bridge from the offline pipeline to the online gateway
    (:mod:`repro.server`): the cached fit is written as a new immutable
    version under ``ctx.config.model_root`` (atomic rename; re-publishing
    identical weights is a no-op), where ``repro-serve`` — or its file
    watcher — picks it up as a hot-swap candidate.  Uncacheable because
    its value *is* the side effect on the artifact root.
    """
    from ..server.registry import publish_artifact

    root = ctx.config.resolved_model_root()
    version = publish_artifact(system, root)
    return {
        "version": version.name,
        "path": str(version.path),
        "digest": version.digest,
        "model_root": str(root),
        "scale": ctx.scale.name,
    }


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], precision: int = 4
) -> str:
    """Plain-text table formatter used by every experiment's report."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells)
    return "\n".join(lines)
