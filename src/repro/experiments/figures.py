"""Figure regenerations: Fig. 2, Fig. 3 and Fig. 7.

These produce the *data* behind the paper's figures (shares, counts,
similarity matrices); rendering is plain text, keeping the repository
dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import LightGCNRecommender
from ..core import DSSDDI
from ..data import build_catalog, drugs_by_disease, generate_chronic_cohort
from ..metrics import cosine_similarity_matrix, offdiagonal_mean
from ..pipeline import experiment, stage
from .common import ChronicExperimentData, Scale, dssddi_config, format_table, load_chronic


# ----------------------------------------------------------------------
# Fig. 2 — the proportion of patients with various diseases
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Disease composition of the cohort (``disease -> share``)."""

    shares: Dict[str, float]  # disease -> share of disease occurrences

    def render(self) -> str:
        rows = sorted(self.shares.items(), key=lambda kv: -kv[1])
        return format_table(
            ["Disease", "Share"], [[d, s] for d, s in rows], precision=3
        )


def run_fig2(num_patients: int = 4157, seed: int = 11) -> Fig2Result:
    """Disease composition of the generated cohort (the paper's pie chart)."""
    cohort = generate_chronic_cohort(num_patients=num_patients, seed=seed)
    counts = cohort.diseases.sum(axis=0).astype(float)
    total = counts.sum()
    shares = {
        name: float(count / total)
        for name, count in zip(cohort.disease_names, counts)
    }
    return Fig2Result(shares=shares)


# ----------------------------------------------------------------------
# Fig. 3 — the distribution of medications for common chronic diseases
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Catalog size per disease (``disease -> number of drugs``)."""

    counts: Dict[str, int]  # disease -> number of catalog drugs

    def render(self) -> str:
        rows = sorted(self.counts.items(), key=lambda kv: -kv[1])
        return format_table(["Disease", "Medications"], [[d, c] for d, c in rows])


def run_fig3() -> Fig3Result:
    """Drugs-per-disease distribution of the 86-drug catalog."""
    by_disease = drugs_by_disease(build_catalog())
    return Fig3Result(counts={d: len(v) for d, v in by_disease.items()})


# ----------------------------------------------------------------------
# Fig. 7 — representation-similarity heat maps (DSSDDI vs LightGCN)
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Similarity matrices and their off-diagonal means.

    ``patient_similarity[model]`` is the (100, 100) cosine matrix over the
    sampled test patients; ``drug_similarity[model]`` the (n_drugs,
    n_drugs) matrix.  ``patient_smoothing`` summarizes each heat map by its
    off-diagonal mean — the paper's over-smoothing signal.
    """

    patient_similarity: Dict[str, np.ndarray]
    drug_similarity: Dict[str, np.ndarray]
    patient_smoothing: Dict[str, float]
    drug_smoothing: Dict[str, float]
    drug_structure: Dict[str, float]

    def render(self) -> str:
        rows = [
            [
                model,
                self.patient_smoothing[model],
                self.drug_smoothing[model],
                self.drug_structure[model],
            ]
            for model in self.patient_smoothing
        ]
        return format_table(
            ["Model", "patient off-diag cos", "drug off-diag cos", "drug class contrast"],
            rows,
        )


def run_fig7(
    scale: Optional[Scale] = None,
    data: Optional[ChronicExperimentData] = None,
    sample_patients: int = 100,
    system: Optional[DSSDDI] = None,
    lightgcn: Optional[LightGCNRecommender] = None,
) -> Fig7Result:
    """Train DSSDDI(SGCN) and LightGCN; compare representation similarity.

    DSSDDI's patient representations are taken *before* propagation (what
    its decoder consumes); LightGCN's are the post-propagation embeddings.
    ``system`` / ``lightgcn`` accept already-fitted models (the pipeline's
    shared fit stages) and skip the corresponding training runs.
    """
    scale = scale or Scale.small()
    data = data or load_chronic(scale)

    if system is None:
        system = DSSDDI(dssddi_config(scale, "sgcn"))
        system.fit(data.x_train, data.y_train, data.cohort.ddi)

    if lightgcn is None:
        lightgcn = LightGCNRecommender(
            hidden_dim=max(16, scale.hidden_dim // 2), epochs=scale.gnn_epochs
        )
        lightgcn.fit(data.x_train, data.y_train)

    take = min(sample_patients, len(data.split.test))
    x_sample = data.x_test[:take]

    # DSSDDI: pre-propagation patient representations of the test sample.
    dssddi_patients = system.patient_representations(x_sample)
    # LightGCN: the one-hop graph-convolved patient representation.  The
    # paper's LightGCN is transductive with ID embeddings — its patient
    # vectors are entirely graph-derived — so the faithful Fig. 7
    # comparison isolates what one round of convolution does to patients
    # (deeper layers oscillate around the same highly-smoothed structure).
    from ..gnn import LightGCNPropagation
    from ..nn import Tensor

    one_hop = LightGCNPropagation(1, [0.0, 1.0])
    h_p, _h_d = one_hop(
        lightgcn._patient_fc(Tensor(data.x_train)),
        lightgcn._drug_fc(Tensor(np.eye(data.cohort.num_drugs))),
        lightgcn._p2d,
        lightgcn._d2p,
    )
    lightgcn_patients = h_p.numpy()[:take]

    dssddi_drugs = system.drug_representations()
    lightgcn_drugs = lightgcn.drug_representations()

    patient_similarity = {
        "DSSDDI": cosine_similarity_matrix(dssddi_patients),
        "LightGCN": cosine_similarity_matrix(lightgcn_patients),
    }
    drug_similarity = {
        "DSSDDI": cosine_similarity_matrix(dssddi_drugs),
        "LightGCN": cosine_similarity_matrix(lightgcn_drugs),
    }
    # Fig. 7b signal: DSSDDI drug representations carry disease-class
    # structure — same-class drugs more similar than cross-class drugs.
    classes: Dict[str, list] = {}
    for drug in data.cohort.catalog:
        classes.setdefault(drug.disease, []).append(drug.did)

    def class_contrast(similarity: np.ndarray) -> float:
        within, across = [], []
        n = similarity.shape[0]
        for ids in classes.values():
            id_set = set(ids)
            for i in ids:
                for j in range(n):
                    if j == i:
                        continue
                    (within if j in id_set else across).append(similarity[i, j])
        return float(np.mean(within) - np.mean(across))

    return Fig7Result(
        patient_similarity=patient_similarity,
        drug_similarity=drug_similarity,
        patient_smoothing={
            name: offdiagonal_mean(sim) for name, sim in patient_similarity.items()
        },
        drug_smoothing={
            name: offdiagonal_mean(sim) for name, sim in drug_similarity.items()
        },
        drug_structure={
            name: class_contrast(sim) for name, sim in drug_similarity.items()
        },
    )


# ----------------------------------------------------------------------
# Pipeline stages
# ----------------------------------------------------------------------
@experiment("fig2", stage="fig2.result", title="Fig. 2 - disease composition")
@stage("fig2.result", params=("scale",), serializer="pickle")
def stage_fig2(ctx) -> Fig2Result:
    """Pipeline stage: cohort composition at the run's scale."""
    return run_fig2(num_patients=ctx.scale.num_patients, seed=ctx.scale.seed)


@experiment("fig3", stage="fig3.result", title="Fig. 3 - medications per disease")
@stage("fig3.result", params=(), serializer="pickle")
def stage_fig3(ctx) -> Fig3Result:
    """Pipeline stage: catalog counts (scale-independent — ``params=()``,
    so every scale shares one cache entry)."""
    return run_fig3()


@experiment(
    "fig7", stage="fig7.result",
    title="Fig. 7 - representation similarity (off-diagonal mean cosine)",
)
@stage(
    "fig7.result",
    inputs=("chronic.data", "chronic.fit.dssddi_sgcn", "chronic.fit.lightgcn"),
)
def stage_fig7(ctx, data, system, lightgcn) -> Fig7Result:
    """Pipeline stage reusing the shared DSSDDI(SGCN) and LightGCN fits."""
    return run_fig7(scale=ctx.scale, data=data, system=system, lightgcn=lightgcn)


def main_fig2(scale_name: str = "small") -> Fig2Result:
    """Legacy entry point; the cohort size/seed follow ``--scale``."""
    scale = Scale.by_name(scale_name)
    result = run_fig2(num_patients=scale.num_patients, seed=scale.seed)
    print("Fig. 2 - disease composition")
    print(result.render())
    return result


def main_fig3(scale_name: str = "small") -> Fig3Result:
    """Legacy entry point; accepts ``--scale`` for CLI uniformity (the
    86-drug catalog is scale-independent)."""
    del scale_name
    result = run_fig3()
    print("Fig. 3 - medications per disease")
    print(result.render())
    return result


def main_fig7(scale_name: str = "small") -> Fig7Result:
    """Legacy entry point (``python -m repro.experiments fig7``)."""
    result = run_fig7(Scale.by_name(scale_name))
    print("Fig. 7 - representation similarity (off-diagonal mean cosine)")
    print(result.render())
    return result
