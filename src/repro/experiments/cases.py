"""Case-study experiments: Fig. 8 and Fig. 9.

Fig. 8 contrasts the explanation subgraphs of DSSDDI's suggestion for a
cardiovascular patient against the baselines' suggestions.  Fig. 9 shows
four rank-movement cases of the DDI signal: synergy promoting a partner
drug, antagonism demoting a conflicting drug, indirect similarity through
shared antagonists, and a deliberate deviation from the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import ECC, GCMCRecommender, LightGCNRecommender, SVMRecommender
from ..core import DSSDDI, Explanation, MSModule
from ..data import drug_names
from ..metrics import top_k_indices
from ..pipeline import experiment, stage
from .common import ChronicExperimentData, Scale, dssddi_config, format_table, load_chronic


# ----------------------------------------------------------------------
# Fig. 8 — explanation subgraphs for a cardiovascular patient
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Per-method suggestion and its MS-module explanation."""

    patient_index: int
    explanations: Dict[str, Explanation]

    def render(self) -> str:
        parts = [f"Cardiovascular patient (test row {self.patient_index})"]
        for method, explanation in self.explanations.items():
            parts.append(f"--- {method} ---")
            parts.append(explanation.render())
        return "\n".join(parts)


def run_fig8(
    scale: Optional[Scale] = None,
    data: Optional[ChronicExperimentData] = None,
    k: int = 3,
    system: Optional[DSSDDI] = None,
    lightgcn: Optional[LightGCNRecommender] = None,
) -> Fig8Result:
    """Suggest k drugs for a cardiovascular patient with every method and
    explain each suggestion through the MS module.

    ``system`` / ``lightgcn`` accept already-fitted models (the pipeline's
    shared fit stages) and skip the corresponding training runs.
    """
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    cohort = data.cohort

    cardio = cohort.disease_names.index("cardiovascular")
    test_diseases = cohort.diseases[data.split.test]
    candidates = np.nonzero(test_diseases[:, cardio] == 1)[0]
    if len(candidates) == 0:
        raise RuntimeError("no cardiovascular patient in the test split")
    patient = int(candidates[0])
    x_patient = data.x_test[patient : patient + 1]

    if system is None:
        system = DSSDDI(dssddi_config(scale, "sgcn"))
        system.fit(data.x_train, data.y_train, cohort.ddi)
    ms = MSModule(cohort.ddi.graph)
    names = drug_names(cohort.catalog)

    explanations: Dict[str, Explanation] = {
        "DSSDDI": system.explain(system.suggest(x_patient, k)[0])
    }
    h = max(16, scale.hidden_dim // 2)
    baselines = {
        "LightGCN": lightgcn
        or LightGCNRecommender(hidden_dim=h, epochs=scale.gnn_epochs),
        "GCMC": GCMCRecommender(hidden_dim=h, out_dim=h, epochs=scale.gnn_epochs),
        "SVM": SVMRecommender(epochs=max(10, scale.classic_epochs // 2)),
        "ECC": ECC(num_chains=2, max_iter=scale.classic_epochs),
    }
    for name, model in baselines.items():
        if name != "LightGCN" or lightgcn is None:
            model.fit(data.x_train, data.y_train)
        suggestion = top_k_indices(model.predict_scores(x_patient), k)[0].tolist()
        explanations[name] = ms.explain(suggestion, drug_names=names)
    return Fig8Result(patient_index=patient, explanations=explanations)


# ----------------------------------------------------------------------
# Fig. 9 — four rank-movement case studies (w/ DDI vs w/o DDI)
# ----------------------------------------------------------------------
@dataclass
class CaseStudy:
    """One rank-movement case.

    ``ranks_without`` / ``ranks_with``: position (0-based) of each tracked
    drug in the w/o-DDI and w/-DDI rankings for the case patient.
    """

    title: str
    patient_index: int
    tracked_drugs: List[int]
    drug_labels: Dict[int, str]
    ranks_without: Dict[int, int]
    ranks_with: Dict[int, int]
    note: str

    def render(self) -> str:
        rows = []
        for drug in self.tracked_drugs:
            rows.append(
                [
                    self.drug_labels.get(drug, f"drug {drug}"),
                    self.ranks_without[drug] + 1,
                    self.ranks_with[drug] + 1,
                ]
            )
        table = format_table(["Drug", "rank w/o DDI", "rank w/ DDI"], rows)
        return f"{self.title}\n{table}\n{self.note}"


@dataclass
class Fig9Result:
    """The four rank-movement case studies (w/ DDI vs w/o DDI)."""

    cases: List[CaseStudy]

    def render(self) -> str:
        """All case tables, blank-line separated."""
        return "\n\n".join(case.render() for case in self.cases)


def _rank_of(scores_row: np.ndarray, drug: int) -> int:
    order = np.argsort(-scores_row, kind="stable")
    return int(np.nonzero(order == drug)[0][0])


def run_fig9(
    scale: Optional[Scale] = None,
    data: Optional[ChronicExperimentData] = None,
    with_system: Optional[DSSDDI] = None,
) -> Fig9Result:
    """Regenerate the four DDI case studies.

    Trains DSSDDI twice — with the DDI embedding ("w/ DDI") and with the
    ``none`` ablation ("w/o DDI") — and tracks how the paper's pinned
    case-study drugs move between the two rankings.  ``with_system``
    accepts the already-fitted "w/ DDI" system (the pipeline's shared
    SGCN fit); the "w/o DDI" ablation is always fitted here.
    """
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    cohort = data.cohort
    names = drug_names(cohort.catalog)

    without_cfg = dssddi_config(scale, "sgcn")
    without_cfg.md.drug_embedding_mode = "none"

    with_sys = with_system
    if with_sys is None:
        with_sys = DSSDDI(dssddi_config(scale, "sgcn"))
        with_sys.fit(data.x_train, data.y_train, cohort.ddi)
    without_sys = DSSDDI(without_cfg)
    without_sys.fit(data.x_train, data.y_train, cohort.ddi)

    scores_with = with_sys.predict_scores(data.x_test)
    scores_without = without_sys.predict_scores(data.x_test)
    y_test = data.y_test

    def find_patient(*required_drugs: int) -> Optional[int]:
        for i in range(y_test.shape[0]):
            if all(y_test[i, d] == 1 for d in required_drugs):
                return i
        return None

    def build_case(title: str, patient: Optional[int], drugs: Sequence[int], note: str) -> Optional[CaseStudy]:
        if patient is None:
            return None
        return CaseStudy(
            title=title,
            patient_index=patient,
            tracked_drugs=list(drugs),
            drug_labels=names,
            ranks_without={d: _rank_of(scores_without[patient], d) for d in drugs},
            ranks_with={d: _rank_of(scores_with[patient], d) for d in drugs},
            note=note,
        )

    cases: List[CaseStudy] = []
    # Case 1: synergy Indapamide (10) + Perindopril (5).
    case = build_case(
        "Case 1 - drug-drug synergistic interaction",
        find_patient(10),
        [10, 5],
        "Synergy with Indapamide should pull Perindopril up the ranking.",
    )
    if case:
        cases.append(case)
    # Case 2: antagonism Theophylline (83) vs Enalapril (3).
    case = build_case(
        "Case 2 - drug-drug antagonistic interaction",
        find_patient(3),
        [3, 83],
        "Antagonism with Enalapril should push Theophylline down.",
    )
    if case:
        cases.append(case)
    # Case 3: indirect similarity Amlodipine (8) ~ Felodipine (32).
    case = build_case(
        "Case 3 - indirect drug-drug interaction",
        find_patient(32),
        [32, 8],
        "Shared antagonists give Amlodipine and Felodipine similar "
        "embeddings, lifting both.",
    )
    if case:
        cases.append(case)
    # Case 4: deviation - Isosorbide Mononitrate (58) vs Metformin (48).
    case = build_case(
        "Case 4 - deviation from ground truth",
        find_patient(58, 48),
        [58, 48],
        "The patient takes both despite their antagonism; DSSDDI "
        "deliberately demotes Metformin.",
    )
    if case:
        cases.append(case)
    return Fig9Result(cases=cases)


# ----------------------------------------------------------------------
# Pipeline stages
# ----------------------------------------------------------------------
@experiment("fig8", stage="fig8.result", title="Fig. 8 - explanation subgraphs")
@stage(
    "fig8.result",
    inputs=("chronic.data", "chronic.fit.dssddi_sgcn", "chronic.fit.lightgcn"),
)
def stage_fig8(ctx, data, system, lightgcn) -> Fig8Result:
    """Pipeline stage reusing the shared DSSDDI(SGCN) and LightGCN fits."""
    return run_fig8(scale=ctx.scale, data=data, system=system, lightgcn=lightgcn)


@experiment("fig9", stage="fig9.result", title="Fig. 9 - DDI rank-movement case studies")
@stage("fig9.result", inputs=("chronic.data", "chronic.fit.dssddi_sgcn"))
def stage_fig9(ctx, data, system) -> Fig9Result:
    """Pipeline stage reusing the shared "w/ DDI" SGCN fit."""
    return run_fig9(scale=ctx.scale, data=data, with_system=system)


def main_fig8(scale_name: str = "small") -> Fig8Result:
    """Legacy entry point (``python -m repro.experiments fig8``)."""
    result = run_fig8(Scale.by_name(scale_name))
    print("Fig. 8 - explanation subgraphs")
    print(result.render())
    return result


def main_fig9(scale_name: str = "small") -> Fig9Result:
    """Legacy entry point (``python -m repro.experiments fig9``)."""
    result = run_fig9(Scale.by_name(scale_name))
    print("Fig. 9 - DDI rank-movement case studies")
    print(result.render())
    return result
