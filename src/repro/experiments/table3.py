"""Table III: Suggestion Satisfaction (SS@k) for every method, k = 2..6.

SS rewards synergy inside the top-k suggestion and antagonism kept outside
of it (Eq. 19), computed on the closest dense subgraph of the DDI graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..metrics import mean_satisfaction_at_k
from .common import (
    ChronicExperimentData,
    Scale,
    format_table,
    load_chronic,
    run_methods,
)

KS = (2, 3, 4, 5, 6)


@dataclass
class Table3Result:
    satisfaction: Dict[str, Dict[int, float]]

    def best_method_at(self, k: int) -> str:
        return max(self.satisfaction, key=lambda m: self.satisfaction[m][k])

    def render(self) -> str:
        ks = sorted(next(iter(self.satisfaction.values())))
        headers = ["Method"] + [f"SS@{k}" for k in ks]
        rows = [
            [method] + [by_k[k] for k in ks]
            for method, by_k in self.satisfaction.items()
        ]
        return format_table(headers, rows)


def run_table3(
    scale: Optional[Scale] = None,
    methods: Optional[Sequence[str]] = None,
    data: Optional[ChronicExperimentData] = None,
    ks: Sequence[int] = KS,
    max_patients: int = 40,
    scores: Optional[Dict[str, np.ndarray]] = None,
) -> Table3Result:
    """Regenerate Table III.

    ``scores`` allows reuse of the matrices from a Table I run (the paper
    evaluates the same suggestions under both metric families);
    ``max_patients`` caps the per-method community searches for speed.
    """
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    if scores is None:
        scores = run_methods(data, scale, methods)
    graph = data.cohort.ddi.graph
    satisfaction = {
        name: {
            k: mean_satisfaction_at_k(graph, score, k, max_patients=max_patients)
            for k in ks
        }
        for name, score in scores.items()
    }
    return Table3Result(satisfaction=satisfaction)


def main(scale_name: str = "small") -> Table3Result:
    result = run_table3(Scale.by_name(scale_name))
    print("Table III - Suggestion Satisfaction")
    print(result.render())
    return result
