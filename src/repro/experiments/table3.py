"""Table III: Suggestion Satisfaction (SS@k) for every method, k = 2..6.

SS rewards synergy inside the top-k suggestion and antagonism kept outside
of it (Eq. 19), computed on the closest dense subgraph of the DDI graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..metrics import mean_satisfaction_at_k
from ..pipeline import experiment, stage
from .common import (
    ChronicExperimentData,
    Scale,
    format_table,
    load_chronic,
    run_methods,
)

KS = (2, 3, 4, 5, 6)


@dataclass
class Table3Result:
    """satisfaction[method][k] = mean SS@k over the evaluated patients."""

    satisfaction: Dict[str, Dict[int, float]]

    def best_method_at(self, k: int) -> str:
        return max(self.satisfaction, key=lambda m: self.satisfaction[m][k])

    def render(self) -> str:
        ks = sorted(next(iter(self.satisfaction.values())))
        headers = ["Method"] + [f"SS@{k}" for k in ks]
        rows = [
            [method] + [by_k[k] for k in ks]
            for method, by_k in self.satisfaction.items()
        ]
        return format_table(headers, rows)


def run_table3(
    scale: Optional[Scale] = None,
    methods: Optional[Sequence[str]] = None,
    data: Optional[ChronicExperimentData] = None,
    ks: Sequence[int] = KS,
    max_patients: int = 40,
    scores: Optional[Dict[str, np.ndarray]] = None,
) -> Table3Result:
    """Regenerate Table III.

    ``scores`` allows reuse of the matrices from a Table I run (the paper
    evaluates the same suggestions under both metric families);
    ``max_patients`` caps the per-method community searches for speed.
    """
    scale = scale or Scale.small()
    data = data or load_chronic(scale)
    if scores is None:
        scores = run_methods(data, scale, methods)
    return compute_table3(data, scores, ks=ks, max_patients=max_patients)


def compute_table3(
    data: ChronicExperimentData,
    scores: Dict[str, np.ndarray],
    ks: Sequence[int] = KS,
    max_patients: int = 40,
) -> Table3Result:
    """Metric phase: SS@k per method over shared score matrices."""
    graph = data.cohort.ddi.graph
    satisfaction = {
        name: {
            k: mean_satisfaction_at_k(graph, score, k, max_patients=max_patients)
            for k in ks
        }
        for name, score in scores.items()
    }
    return Table3Result(satisfaction=satisfaction)


@experiment(
    "table3", stage="table3.result",
    title="Table III - Suggestion Satisfaction",
)
@stage("table3.result", inputs=("chronic.data", "chronic.scores"))
def stage_table3(ctx, data: ChronicExperimentData, scores) -> Table3Result:
    """Pipeline metric stage — reuses the Table I score matrices (the
    paper evaluates the same suggestions under both metric families)."""
    return compute_table3(data, scores, ks=KS)


def main(scale_name: str = "small") -> Table3Result:
    """Legacy entry point (``python -m repro.experiments table3``)."""
    result = run_table3(Scale.by_name(scale_name))
    print("Table III - Suggestion Satisfaction")
    print(result.render())
    return result
