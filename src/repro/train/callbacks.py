"""Trainer callbacks: checkpointing, early stopping, scheduling, logging.

Callbacks observe one :class:`repro.train.Trainer` fit through four
hooks (fit start, epoch start, epoch end, fit end) and communicate back
through the :class:`repro.train.TrainState` — e.g.
``state.request_stop(reason)`` ends training after the current epoch.

Every callback is resume-aware: stateful ones (:class:`EarlyStopping`,
:class:`ConvergenceStop`) rebuild their internal counters from the
restored metric history at fit start, so a checkpointed run that is
killed and resumed stops at exactly the same epoch — and with exactly
the same losses — as an uninterrupted run.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path
from typing import Callable, List, Optional, Union

from .state import TrainState, checkpoint_path, list_checkpoints

PathLike = Union[str, Path]


class Callback:
    """Base class: all hooks default to no-ops."""

    def on_fit_start(self, state: TrainState) -> None:
        """Called once before the first (or resumed-from) epoch."""

    def on_epoch_start(self, state: TrainState) -> None:
        """Called before each epoch's batches run."""

    def on_epoch_end(self, state: TrainState) -> None:
        """Called after each epoch's metrics land in ``state.history``."""

    def on_fit_end(self, state: TrainState) -> None:
        """Called once after the loop exits (completed or stopped)."""


class EarlyStopping(Callback):
    """Stop when the monitored metric stops improving.

    Args:
        patience: epochs without improvement tolerated before stopping.
        min_delta: smallest decrease that counts as an improvement.
        monitor: key into ``state.history`` (default ``"loss"``).

    Attributes:
        stopped_epoch: epoch the stop triggered at (None if it never did).
        best: best monitored value seen.
    """

    def __init__(
        self, patience: int = 10, min_delta: float = 0.0, monitor: str = "loss"
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_delta < 0:
            raise ValueError("min_delta must be >= 0")
        self.patience = patience
        self.min_delta = min_delta
        self.monitor = monitor
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_epoch: Optional[int] = None

    def on_fit_start(self, state: TrainState) -> None:
        # Replay the restored history so a resumed run carries the exact
        # best/wait counters of the uninterrupted one.
        self.best, self.wait, self.stopped_epoch = None, 0, None
        for epoch, value in enumerate(state.history.get(self.monitor, []), 1):
            self._observe(state, epoch, value)

    def on_epoch_end(self, state: TrainState) -> None:
        values = state.history.get(self.monitor)
        if values:
            self._observe(state, state.epoch, values[-1])

    def _observe(self, state: TrainState, epoch: int, value: float) -> None:
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience and self.stopped_epoch is None:
            self.stopped_epoch = epoch
            state.request_stop(
                f"early stop: no {self.monitor} improvement in "
                f"{self.patience} epoch(s)"
            )


class ConvergenceStop(Callback):
    """Stop when the metric's epoch-over-epoch change falls under ``tol``.

    The classic-ML convergence criterion (|loss_t − loss_{t−1}| < tol)
    that :class:`repro.ml.LogisticRegression` used in its hand-rolled
    loop — kept as its own callback because it compares *consecutive*
    values where :class:`EarlyStopping` compares against the best.
    """

    def __init__(self, tol: float, monitor: str = "loss") -> None:
        if tol < 0:
            raise ValueError("tol must be >= 0")
        self.tol = tol
        self.monitor = monitor
        self.stopped_epoch: Optional[int] = None

    def on_fit_start(self, state: TrainState) -> None:
        self.stopped_epoch = None
        values = state.history.get(self.monitor, [])
        for epoch in range(2, len(values) + 1):
            self._observe(state, epoch, values[epoch - 2], values[epoch - 1])

    def on_epoch_end(self, state: TrainState) -> None:
        values = state.history.get(self.monitor, [])
        if len(values) >= 2:
            self._observe(state, state.epoch, values[-2], values[-1])

    def _observe(
        self, state: TrainState, epoch: int, previous: float, current: float
    ) -> None:
        if abs(previous - current) < self.tol and self.stopped_epoch is None:
            self.stopped_epoch = epoch
            state.request_stop(
                f"converged: |Δ{self.monitor}| < {self.tol:g}"
            )


class Checkpoint(Callback):
    """Write the TrainState to disk every ``every_n`` epochs.

    Checkpoints land in ``directory/epoch-<n>/`` atomically (see
    :meth:`TrainState.save`); older ones beyond ``keep_last`` are deleted
    *after* the new one is complete, so the newest complete checkpoint is
    always valid even across ``kill -9``.  A final checkpoint is always
    taken when the fit ends, so the directory holds the terminal state.

    Args:
        directory: checkpoint root for this run.
        every_n: checkpoint cadence in epochs.
        keep_last: complete checkpoints retained (>= 1).
        extra_writer: called with the in-flight checkpoint directory
            before its atomic promotion — e.g. :class:`repro.core.DSSDDI`
            embeds a servable model artifact snapshot here, which is what
            lets ``repro.server.publish_artifact`` publish the
            best-so-far model straight from a checkpoint.

    Attributes:
        saved: checkpoints written by this instance during the last fit.
        last_path: directory of the newest checkpoint written.
    """

    def __init__(
        self,
        directory: PathLike,
        every_n: int = 1,
        keep_last: int = 1,
        extra_writer: Optional[Callable[[Path], None]] = None,
    ) -> None:
        if every_n < 1:
            raise ValueError("every_n must be >= 1")
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.every_n = every_n
        self.keep_last = keep_last
        self.extra_writer = extra_writer
        self.saved = 0
        self.last_path: Optional[Path] = None

    def on_fit_start(self, state: TrainState) -> None:
        self.saved = 0

    def on_epoch_end(self, state: TrainState) -> None:
        if state.epoch % self.every_n == 0:
            self._write(state)

    def on_fit_end(self, state: TrainState) -> None:
        if self.last_path != checkpoint_path(self.directory, state.epoch):
            self._write(state)

    def _write(self, state: TrainState) -> None:
        target = checkpoint_path(self.directory, state.epoch)
        state._save(target, extra_writer=self.extra_writer)
        self.saved += 1
        self.last_path = target
        for old in list_checkpoints(self.directory)[: -self.keep_last]:
            shutil.rmtree(old, ignore_errors=True)


class LRScheduler(Callback):
    """Set the optimizer learning rate from the epoch number.

    ``schedule`` maps the *upcoming* epoch (1-based) to a learning rate;
    being a pure function of the epoch it needs no serialization — a
    resumed run recomputes the same rates.
    """

    def __init__(self, schedule: Callable[[int], float]) -> None:
        self.schedule = schedule

    def on_epoch_start(self, state: TrainState) -> None:
        if state.optimizer is None:
            raise ValueError("LRScheduler needs a TrainState with an optimizer")
        state.optimizer.lr = float(self.schedule(state.epoch + 1))


class LossCurveLogger(Callback):
    """Collect (and optionally print) per-epoch loss-curve lines."""

    def __init__(
        self,
        every: int = 1,
        printer: Optional[Callable[[str], None]] = None,
        monitor: str = "loss",
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.printer = printer
        self.monitor = monitor
        self.lines: List[str] = []

    def on_epoch_end(self, state: TrainState) -> None:
        if state.epoch % self.every != 0:
            return
        values = state.history.get(self.monitor)
        if not values:
            return
        line = f"epoch {state.epoch}: {self.monitor}={values[-1]:.6f}"
        self.lines.append(line)
        if self.printer is not None:
            self.printer(line)


class TraceCallback(Callback):
    """Emit :mod:`repro.obs` spans for one fit: ``fit`` plus per-epoch.

    The fit span nests under whatever span is active on the calling
    thread — training inside a pipeline run lands under its
    ``stage:<name>`` span, so ``repro report`` waterfalls show epochs
    inside stages.  With a disabled tracer every hook is a no-op, so
    :func:`repro.train.fit_or_resume` appends this unconditionally is
    safe; it only does so when the global tracer is enabled.

    Args:
        name: suffix of the fit span name (``fit:<name>``).
        tracer: explicit tracer; defaults to the process-global one
            (:func:`repro.obs.trace.get_tracer`), resolved at fit start
            so a tracer scoped in later is still picked up.
        checkpoint: the fit's :class:`Checkpoint` callback, if any —
            epochs that wrote a checkpoint get a ``checkpoint`` event.
    """

    def __init__(
        self,
        name: str = "fit",
        tracer: Optional[object] = None,
        checkpoint: Optional[Checkpoint] = None,
    ) -> None:
        self.name = name
        self._tracer = tracer
        self._checkpoint = checkpoint
        self._fit_span = None
        self._epoch_span = None
        self._saved_seen = 0

    def _resolve(self):
        if self._tracer is not None:
            return self._tracer
        from ..obs.trace import get_tracer

        return get_tracer()

    def on_fit_start(self, state: TrainState) -> None:
        tracer = self._resolve()
        if not getattr(tracer, "enabled", False):
            return
        self._saved_seen = self._checkpoint.saved if self._checkpoint else 0
        span = tracer.span(
            f"fit:{self.name}", attrs={"start_epoch": state.epoch}
        )
        if state.resumed_from is not None:
            span.set("resumed_from", state.resumed_from)
        self._fit_span = span.__enter__()

    def on_epoch_start(self, state: TrainState) -> None:
        if self._fit_span is None:
            return
        self._epoch_span = self._fit_span.tracer.span(
            "epoch", attrs={"epoch": state.epoch + 1}
        ).__enter__()

    def on_epoch_end(self, state: TrainState) -> None:
        if self._epoch_span is None:
            return
        losses = state.history.get("loss")
        if losses:
            self._epoch_span.set("loss", losses[-1])
        # Runs after the Checkpoint callback (fit_or_resume appends this
        # last), so a checkpoint written this epoch is visible here.
        if self._checkpoint is not None and self._checkpoint.saved > self._saved_seen:
            self._saved_seen = self._checkpoint.saved
            self._epoch_span.event(
                "checkpoint",
                path=str(self._checkpoint.last_path),
            )
        self._epoch_span.__exit__(None, None, None)
        self._epoch_span = None

    def on_fit_end(self, state: TrainState) -> None:
        if self._epoch_span is not None:  # stop mid-epoch: still close it
            self._epoch_span.__exit__(None, None, None)
            self._epoch_span = None
        if self._fit_span is None:
            return
        self._fit_span.set("epochs", state.epoch)
        if state.stop_reason:
            self._fit_span.set("stop_reason", state.stop_reason)
        self._fit_span.__exit__(None, None, None)
        self._fit_span = None


class Timer(Callback):
    """Record per-epoch and total wall time."""

    def __init__(self) -> None:
        self.epoch_seconds: List[float] = []
        self.total_seconds = 0.0
        self._fit_started = 0.0
        self._epoch_started = 0.0

    def on_fit_start(self, state: TrainState) -> None:
        self.epoch_seconds = []
        self._fit_started = time.perf_counter()

    def on_epoch_start(self, state: TrainState) -> None:
        self._epoch_started = time.perf_counter()

    def on_epoch_end(self, state: TrainState) -> None:
        self.epoch_seconds.append(time.perf_counter() - self._epoch_started)

    def on_fit_end(self, state: TrainState) -> None:
        self.total_seconds = time.perf_counter() - self._fit_started
