"""The unified training engine: one loop for every model in the repo.

Before this module the repo carried ~12 hand-rolled epoch loops (the two
core DSSDDI modules, every trainable baseline, and the classic-ML
models), each re-implementing optimizer stepping, negative sampling and
loss logging, with no checkpointing or early stopping anywhere.  The
:class:`Trainer` replaces all of them:

* the *model step* is a closure ``step(state, batch) -> loss`` — it
  builds the forward graph and returns either an autograd
  :class:`~repro.nn.Tensor` loss (the Trainer then runs ``backward`` and
  ``optimizer.step``) or a plain float (the step applied its own
  closed-form update, the classic-ML case);
* the *loader* (:mod:`repro.train.batcher`) turns an epoch into batches,
  full-batch being the one-batch special case that keeps historical
  seeds bitwise;
* *callbacks* (:mod:`repro.train.callbacks`) add checkpointing, early
  stopping, LR scheduling, loss-curve logging and timing without the
  model knowing;
* the :class:`~repro.train.TrainState` carries everything that mutates,
  and :meth:`Trainer.resume` restarts a killed run from its newest
  checkpoint with bitwise-identical final losses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..nn import Tensor
from ..obs.trace import get_tracer
from .batcher import FullBatch, Loader
from .callbacks import Callback, Checkpoint, TraceCallback
from .state import TrainState, has_checkpoint, latest_checkpoint

PathLike = Union[str, Path]

#: ``step(state, batch) -> Tensor | float`` — the per-batch model closure.
ModelStep = Callable[[TrainState, object], object]


@dataclass
class TrainingLog:
    """Uniform record of one fit, returned by :meth:`Trainer.fit`.

    This is also what every baseline's ``training_log`` property exposes,
    so experiments and the pipeline report convergence consistently
    instead of reaching into private ``_losses`` lists.

    Attributes:
        history: per-epoch metrics (``"loss"`` plus whatever the model
            step logged via ``state.log``).
        epochs_run: epochs executed *by this call* (0 when resuming from
            a terminal checkpoint).
        total_epochs: epochs accumulated over the run's whole life,
            including epochs restored from a checkpoint.
        wall_seconds: wall time of this call.
        stopped_early: whether a callback requested the stop.
        stop_reason: the requesting callback's message.
        stopped_epoch: epoch the stop triggered at.
        resumed_from: checkpoint epoch this call continued from.
        checkpoints: checkpoints written during this call.
    """

    history: Dict[str, List[float]] = field(default_factory=dict)
    epochs_run: int = 0
    total_epochs: int = 0
    wall_seconds: float = 0.0
    stopped_early: bool = False
    stop_reason: Optional[str] = None
    stopped_epoch: Optional[int] = None
    resumed_from: Optional[int] = None
    checkpoints: int = 0

    @property
    def losses(self) -> List[float]:
        """The canonical per-epoch loss curve."""
        return self.history.get("loss", [])

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch."""
        return self.losses[-1]

    @classmethod
    def aggregate(
        cls, logs: Sequence["TrainingLog"], wall_seconds: float
    ) -> "TrainingLog":
        """Combine sub-model logs into one record (ensemble baselines).

        ECC and the one-vs-rest SVM fit many base models; the combined
        log sums their epochs, flags early stopping if any stopped, and
        uses the per-model final losses as the loss history.  Wall time
        is the caller's overall measurement (sub-fits overlap setup).
        """
        logs = [log for log in logs if log is not None]
        return cls(
            history={"loss": [log.final_loss for log in logs if log.losses]},
            epochs_run=sum(log.epochs_run for log in logs),
            total_epochs=sum(log.total_epochs for log in logs),
            wall_seconds=wall_seconds,
            stopped_early=any(log.stopped_early for log in logs),
        )

    def to_dict(self) -> Dict[str, object]:
        """Manifest-ready summary (no per-epoch arrays)."""
        return {
            "epochs_run": self.epochs_run,
            "total_epochs": self.total_epochs,
            "final_loss": self.losses[-1] if self.losses else None,
            "wall_seconds": self.wall_seconds,
            "stopped_early": self.stopped_early,
            "stopped_epoch": self.stopped_epoch,
            "resumed_from": self.resumed_from,
            "checkpoints": self.checkpoints,
        }


class Trainer:
    """Run ``epochs`` of a model step over a loader, with callbacks.

    Usage::

        state = TrainState(model.parameters(), Adam(model.parameters()), rng)
        log = Trainer(epochs=200).fit(step, state, loader,
                                      callbacks=[EarlyStopping(patience=20)])

    The Trainer owns only control flow; arithmetic lives in the step and
    in the optimizer, so migrating a hand-rolled loop onto it is
    loss-neutral by construction (and pinned by the seed-stability
    tests).
    """

    def __init__(
        self, epochs: int, callbacks: Sequence[Callback] = ()
    ) -> None:
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        self.epochs = epochs
        self.callbacks = list(callbacks)

    # ------------------------------------------------------------------
    def fit(
        self,
        model_step: ModelStep,
        state: TrainState,
        loader: Optional[Loader] = None,
        callbacks: Sequence[Callback] = (),
    ) -> TrainingLog:
        """Train until ``epochs`` epochs have accumulated in ``state``.

        A state restored from a checkpoint starts at its stored epoch —
        the loop runs only the remainder, and the returned log's history
        covers the whole run (restored prefix included).
        """
        loader = loader or FullBatch()
        active = self.callbacks + list(callbacks)
        state.stop_requested = False
        state.stop_reason = None
        started = time.perf_counter()
        start_epoch = state.epoch
        for cb in active:
            cb.on_fit_start(state)

        while state.epoch < self.epochs and not state.stop_requested:
            for cb in active:
                cb.on_epoch_start(state)
            for batch in loader.batches(state):
                if state.optimizer is not None:
                    state.optimizer.zero_grad()
                state.step += 1
                loss = model_step(state, batch)
                if isinstance(loss, Tensor):
                    loss.backward()
                    if state.optimizer is not None:
                        state.optimizer.step()
                    state.log("loss", loss.item())
                else:
                    state.log("loss", float(loss))
            state.epoch += 1
            state.roll_epoch_metrics()
            for cb in active:
                cb.on_epoch_end(state)

        for cb in active:
            cb.on_fit_end(state)

        return TrainingLog(
            history={name: list(values) for name, values in state.history.items()},
            epochs_run=state.epoch - start_epoch,
            total_epochs=state.epoch,
            wall_seconds=time.perf_counter() - started,
            stopped_early=state.stop_requested,
            stop_reason=state.stop_reason,
            stopped_epoch=state.epoch if state.stop_requested else None,
            resumed_from=state.resumed_from,
            checkpoints=sum(
                cb.saved for cb in active if isinstance(cb, Checkpoint)
            ),
        )

    # ------------------------------------------------------------------
    def resume(
        self,
        path: PathLike,
        model_step: ModelStep,
        state: TrainState,
        loader: Optional[Loader] = None,
        callbacks: Sequence[Callback] = (),
    ) -> TrainingLog:
        """Continue a run from the newest checkpoint under ``path``.

        ``state`` must wrap a freshly rebuilt model (same config, same
        seed).  If ``path`` holds no checkpoint the fit simply starts
        from scratch — callers do not need to special-case the first
        run.  Interrupt-and-resume produces bitwise-identical final
        losses versus an uninterrupted :meth:`fit` because the
        checkpoint restores parameters, optimizer moments, rng state and
        history exactly (asserted in ``tests/train/test_resume.py``).
        """
        newest = latest_checkpoint(path)
        if newest is not None:
            state.restore(newest)
        return self.fit(model_step, state, loader, callbacks)


def fit_or_resume(
    trainer: Trainer,
    model_step: ModelStep,
    state: TrainState,
    loader: Optional[Loader] = None,
    callbacks: Sequence[Callback] = (),
    checkpoint_dir: Optional[PathLike] = None,
    checkpoint_every: int = 0,
    extra_writer: Optional[Callable[[Path], None]] = None,
) -> TrainingLog:
    """The one-call checkpoint policy shared by every module ``fit``.

    ``checkpoint_dir`` is the switch: unset, this is plain
    ``trainer.fit`` and ``checkpoint_every`` is ignored.  Set, a
    :class:`Checkpoint` callback is appended — cadence
    ``checkpoint_every`` epochs, defaulting to every epoch when the
    caller leaves it at 0 — and, when the directory already holds a
    checkpoint, training resumes from it instead of starting over,
    which is how an interrupted ``repro run chronic.fit.*`` picks up
    where it was killed.
    """
    active = list(callbacks)
    checkpoint_cb: Optional[Checkpoint] = None
    if checkpoint_dir is not None:
        checkpoint_cb = Checkpoint(
            checkpoint_dir,
            every_n=max(1, checkpoint_every),
            extra_writer=extra_writer,
        )
        active.append(checkpoint_cb)
    # Appended last so its epoch-end hook sees the checkpoint the
    # Checkpoint callback just wrote.  Enabled-tracer only: with the
    # default environment this adds nothing to the hot loop.
    tracer = get_tracer()
    if tracer.enabled:
        active.append(TraceCallback(tracer=tracer, checkpoint=checkpoint_cb))
    if checkpoint_dir is None:
        return trainer.fit(model_step, state, loader, active)
    return trainer.resume(checkpoint_dir, model_step, state, loader, active)
