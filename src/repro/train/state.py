"""The serializable state of one training run.

A :class:`TrainState` bundles everything a :class:`repro.train.Trainer`
mutates while fitting a model: the parameter tensors, the optimizer (with
its moment buffers), the rng that drives minibatch shuffling and negative
sampling, the epoch/step counters, and the per-epoch metric history.
Checkpointing serializes exactly this bundle — restoring it and
continuing the loop is bitwise-identical to never having stopped,
because every source of arithmetic and randomness round-trips exactly:

* parameter and optimizer arrays travel through ``.npz`` (lossless for
  float64 bit patterns), following the PR-1 artifact serializer's
  ``manifest``-JSON-plus-``arrays.npz`` layout;
* the rng serializes through ``bit_generator.state`` (exact integers);
* the history rides in the same npz, so loss curves continue seamlessly.

Checkpoints are written *atomically* (temp directory + ``os.replace``)
into per-epoch subdirectories, so a run killed mid-write never leaves a
corrupt checkpoint — the previous complete one is still the newest.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .. import atomicio, chaos
from ..nn import Optimizer, Tensor

PathLike = Union[str, Path]

STATE_FORMAT_VERSION = 1
STATE_NAME = "state.json"
ARRAYS_NAME = "arrays.npz"

#: Per-epoch checkpoint subdirectories: ``epoch-000042``.
_EPOCH_PREFIX = "epoch-"


class TrainState:
    """Mutable training-run state owned by one :class:`Trainer` fit.

    Args:
        params: the model's trainable tensors, in a stable order (the
            order defines the checkpoint layout, so rebuild the model the
            same way before restoring).
        optimizer: the optimizer stepping ``params``; ``None`` for
            classic-ML steps that apply their own closed-form update.
        rng: the generator minibatch loaders draw from.  Pass the *same*
            generator used for weight initialization to keep a migrated
            model's sampling stream identical to its pre-Trainer loop.

    Attributes:
        epoch: completed epochs (0 before the first).
        step: completed optimizer steps / batches across all epochs.
        history: metric name -> per-epoch values; ``"loss"`` is recorded
            by the Trainer itself, further metrics by ``log`` calls from
            the model step.
        resumed_from: epoch a checkpoint restore continued from, or
            ``None`` for an uninterrupted run.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        optimizer: Optional[Optimizer] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.params: List[Tensor] = list(params)
        self.optimizer = optimizer
        self.rng = rng
        self.epoch = 0
        self.step = 0
        self.history: Dict[str, List[float]] = {}
        self.resumed_from: Optional[int] = None
        self.stop_requested = False
        self.stop_reason: Optional[str] = None
        self._batch_metrics: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def log(self, name: str, value: float) -> None:
        """Record a batch-level metric; the Trainer epoch-averages it.

        Called from inside a model step (e.g. the MD module logs its
        factual and counterfactual BCE separately).  Values logged within
        one epoch are averaged into ``history[name]`` when it ends.
        """
        self._batch_metrics.setdefault(name, []).append(float(value))

    def roll_epoch_metrics(self) -> None:
        """Flush batch metrics into per-epoch history (Trainer use)."""
        for name, values in self._batch_metrics.items():
            self.history.setdefault(name, []).append(
                float(np.mean(values)) if len(values) > 1 else values[0]
            )
        self._batch_metrics = {}

    def request_stop(self, reason: str) -> None:
        """Ask the Trainer to stop after the current epoch (callbacks)."""
        self.stop_requested = True
        if self.stop_reason is None:
            self.stop_reason = reason

    @property
    def losses(self) -> List[float]:
        """The canonical per-epoch loss history."""
        return self.history.get("loss", [])

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Atomically write this state as a checkpoint directory.

        ``path`` becomes a directory holding ``state.json`` (counters,
        rng state, layout) and ``arrays.npz`` (parameters, optimizer
        buffers, history) — the same two-file idiom as the PR-1 model
        artifact.  An existing directory at ``path`` is replaced in one
        ``os.replace``; a killed process leaves either the old or the
        new checkpoint, never a hybrid.

        Optionally extended by :class:`repro.train.Checkpoint` with a
        servable model snapshot (an ``artifact/`` subdirectory).
        """
        return self._save(path)

    def _save(
        self, path: PathLike, extra_writer: Optional[Callable[[Path], None]] = None
    ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A kill during an earlier write (the exact scenario checkpoints
        # exist for) leaks its temp/backup directory — the except-clause
        # below never ran.  Checkpoint directories are single-writer
        # (scoped per run / per stage key), so any dot-prefixed sibling
        # is such an orphan; sweep them before adding more state.
        atomicio.sweep_orphans(path.parent)
        tmp = Path(tempfile.mkdtemp(prefix=".ckpt-", dir=path.parent))
        try:
            chaos.failpoint("ckpt.save.setup")
            arrays: Dict[str, np.ndarray] = {
                f"param.{i}": p.data for i, p in enumerate(self.params)
            }
            if self.optimizer is not None:
                for name, value in self.optimizer.state_dict().items():
                    arrays[f"opt.{name}"] = np.asarray(value)
            for name, values in self.history.items():
                arrays[f"history.{name}"] = np.asarray(values, dtype=np.float64)
            np.savez(tmp / ARRAYS_NAME, **arrays)  # lint: staged-write
            chaos.failpoint("ckpt.save.payload")
            meta = {
                "format_version": STATE_FORMAT_VERSION,
                "epoch": self.epoch,
                "step": self.step,
                "num_params": len(self.params),
                "history_keys": sorted(self.history),
                "rng_state": (
                    self.rng.bit_generator.state if self.rng is not None else None
                ),
            }
            with open(tmp / STATE_NAME, "w", encoding="utf-8") as fh:  # lint: staged-write
                json.dump(meta, fh, indent=2)
            if extra_writer is not None:
                extra_writer(tmp)
            # The checkpoint must be durable *before* it becomes the
            # newest complete epoch dir — resume picks by visibility.
            if chaos.fsync_enabled("ckpt.save.fsync"):
                atomicio.fsync_tree(tmp)
            chaos.failpoint("ckpt.save.rename")
            atomicio.replace_dir(tmp, path)
            chaos.failpoint("ckpt.save.after")
            atomicio.fsync_dir(path.parent)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return path

    def restore(self, path: PathLike) -> "TrainState":
        """Load a checkpoint written by :meth:`save` into this state.

        The state must have been constructed around a freshly rebuilt
        model (same code, same config, same seed): parameter count and
        shapes are validated, then data, optimizer buffers, rng state,
        counters and history are overwritten in place.  Returns ``self``.
        """
        path = Path(path)
        with open(path / STATE_NAME, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        version = meta.get("format_version")
        if version != STATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported train-state format version {version!r}"
            )
        if meta["num_params"] != len(self.params):
            raise ValueError(
                f"checkpoint has {meta['num_params']} parameters, "
                f"state has {len(self.params)} — model structure changed"
            )
        with np.load(path / ARRAYS_NAME) as loaded:
            arrays = {name: loaded[name] for name in loaded.files}
        for i, param in enumerate(self.params):
            stored = arrays[f"param.{i}"]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: checkpoint "
                    f"{stored.shape}, model {param.data.shape}"
                )
            param.data = np.array(stored)
        if self.optimizer is not None:
            opt_state = {
                name[len("opt."):]: value
                for name, value in arrays.items()
                if name.startswith("opt.")
            }
            if opt_state:
                self.optimizer.load_state_dict(opt_state)
        if self.rng is not None and meta.get("rng_state") is not None:
            self.rng.bit_generator.state = meta["rng_state"]
        self.epoch = int(meta["epoch"])
        self.step = int(meta["step"])
        self.history = {
            name: arrays[f"history.{name}"].tolist()
            for name in meta["history_keys"]
        }
        self.resumed_from = self.epoch
        return self


# ----------------------------------------------------------------------
# checkpoint directory layout (epoch-numbered subdirectories)
# ----------------------------------------------------------------------
def checkpoint_path(directory: PathLike, epoch: int) -> Path:
    """The subdirectory holding the checkpoint taken after ``epoch``."""
    return Path(directory) / f"{_EPOCH_PREFIX}{epoch:06d}"


def list_checkpoints(directory: PathLike) -> List[Path]:
    """Complete epoch checkpoints under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        child
        for child in directory.iterdir()
        if child.is_dir()
        and child.name.startswith(_EPOCH_PREFIX)
        and (child / STATE_NAME).is_file()
        and (child / ARRAYS_NAME).is_file()
    )


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """Newest complete checkpoint under ``directory`` (None when empty)."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def has_checkpoint(directory: PathLike) -> bool:
    """Whether ``directory`` holds at least one complete checkpoint."""
    return latest_checkpoint(directory) is not None


def checkpoint_info(directory: PathLike) -> Optional[Dict[str, Any]]:
    """Metadata of the newest checkpoint (epoch, step, history keys)."""
    newest = latest_checkpoint(directory)
    if newest is None:
        return None
    with open(newest / STATE_NAME, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    meta["path"] = str(newest)
    return meta


def checkpoint_digest(checkpoint: PathLike) -> str:
    """sha256 over one checkpoint's payload files (name + bytes).

    Recorded in pipeline run manifests so two runs can assert they
    resumed from — or converged to — the exact same training state.
    """
    import hashlib

    checkpoint = Path(checkpoint)
    h = hashlib.sha256()
    for path in sorted(p for p in checkpoint.rglob("*") if p.is_file()):
        h.update(str(path.relative_to(checkpoint)).encode("utf-8"))
        h.update(path.read_bytes())
    return h.hexdigest()
