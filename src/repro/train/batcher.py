"""Deterministic batch loaders for the Trainer.

A *loader* turns one epoch into a sequence of batches, drawing any
randomness from ``state.rng`` — the rng that lives inside the
:class:`repro.train.TrainState` and therefore checkpoints and resumes
bitwise.  Full-batch training is the special case of one batch per epoch,
which is exactly what the repo's pre-Trainer epoch loops did; the loaders
reproduce those loops' rng draw patterns verbatim, so models migrated
onto the Trainer keep their historical seeds (pinned by
``tests/train/test_seed_stability.py``).

Loaders:

* :class:`FullBatch` — one ``None`` batch per epoch (the step closes
  over its fixed inputs).  No rng.
* :class:`MiniBatcher` — seeded shuffling over ``n`` samples, yielding
  index arrays of ``batch_size`` (one ``rng.permutation(n)`` per epoch,
  the classic Pegasos/SGD pattern).
* :class:`PairNegativeSampler` — the bipartite link-prediction pattern
  shared by MDGCN, LightGCN, GCMC and Bipar-GCN: all positive pairs plus
  an equal number of uniformly sampled zero pairs, labelled 1/0.  The
  full-batch mode draws exactly one ``rng.integers(0, n_zeros,
  size=n_pos)`` per epoch, matching the historical loops; minibatch mode
  shuffles the positives and samples negatives per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .state import TrainState


class Loader:
    """Iterable-per-epoch batch source consumed by the Trainer."""

    def batches(self, state: TrainState) -> Iterator:
        """Yield this epoch's batches, drawing rng from ``state``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _rng(self, state: TrainState) -> np.random.Generator:
        if state.rng is None:
            raise ValueError(
                f"{type(self).__name__} needs a TrainState with an rng"
            )
        return state.rng


class FullBatch(Loader):
    """One batch per epoch; the model step closes over its inputs."""

    def batches(self, state: TrainState) -> Iterator:
        yield None


class MiniBatcher(Loader):
    """Seeded shuffling over ``n`` samples in ``batch_size`` slices.

    With ``shuffle=True`` (default) each epoch draws one
    ``rng.permutation(n)`` and yields contiguous slices of it; with
    ``shuffle=False`` it yields slices of ``arange(n)`` and needs no rng.
    ``batch_size=None`` yields the whole (permuted) index set at once —
    full batch as a special case.
    """

    def __init__(
        self, n: int, batch_size: Optional[int] = None, shuffle: bool = True
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n = n
        self.batch_size = batch_size
        self.shuffle = shuffle

    def batches(self, state: TrainState) -> Iterator[np.ndarray]:
        order = (
            self._rng(state).permutation(self.n)
            if self.shuffle
            else np.arange(self.n)
        )
        size = self.batch_size or self.n
        for start in range(0, self.n, size):
            yield order[start : start + size]


@dataclass
class PairBatch:
    """One link-prediction batch: row/column index pairs with labels."""

    rows: np.ndarray
    cols: np.ndarray
    labels: np.ndarray


class PairNegativeSampler(Loader):
    """1:1 negative sampling over a binary interaction matrix.

    Args:
        positives: ``(n_pos, 2)`` array of observed (row, col) pairs.
        zero_rows / zero_cols: coordinates of the zero entries negatives
            are drawn from (uniformly, with replacement).
        batch_size: positives per batch; ``None`` keeps the historical
            full-batch behaviour — every positive plus one sampled
            negative each, a single batch per epoch.
    """

    def __init__(
        self,
        positives: np.ndarray,
        zero_rows: np.ndarray,
        zero_cols: np.ndarray,
        batch_size: Optional[int] = None,
    ) -> None:
        positives = np.asarray(positives)
        if positives.ndim != 2 or positives.shape[1] != 2:
            raise ValueError("positives must be an (n_pos, 2) index array")
        if len(positives) == 0:
            raise ValueError("no positive links to train on")
        if len(zero_rows) != len(zero_cols):
            raise ValueError("zero_rows and zero_cols disagree")
        if len(zero_rows) == 0:
            raise ValueError("no zero entries to sample negatives from")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.positives = positives
        self.zero_rows = np.asarray(zero_rows)
        self.zero_cols = np.asarray(zero_cols)
        self.batch_size = batch_size

    def _batch(self, rng: np.random.Generator, pos: np.ndarray) -> PairBatch:
        neg_idx = rng.integers(0, len(self.zero_rows), size=len(pos))
        rows = np.concatenate([pos[:, 0], self.zero_rows[neg_idx]])
        cols = np.concatenate([pos[:, 1], self.zero_cols[neg_idx]])
        labels = np.concatenate([np.ones(len(pos)), np.zeros(len(pos))])
        return PairBatch(rows=rows, cols=cols, labels=labels)

    def batches(self, state: TrainState) -> Iterator[PairBatch]:
        rng = self._rng(state)
        if self.batch_size is None:
            # Historical full-batch path: one negative draw per epoch, in
            # the exact order the pre-Trainer loops consumed the rng.
            yield self._batch(rng, self.positives)
            return
        order = rng.permutation(len(self.positives))
        for start in range(0, len(order), self.batch_size):
            yield self._batch(rng, self.positives[order[start : start + self.batch_size]])
