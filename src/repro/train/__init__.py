"""``repro.train`` — the unified training engine.

One :class:`Trainer` drives every model in the repo (DDIGCN, MDGCN, the
GNN baselines, and the classic-ML models) through a shared loop with a
serializable :class:`TrainState`, deterministic batch loaders, and a
callback protocol providing checkpointing, early stopping, LR
scheduling, loss-curve logging and timing.  See ``docs/training.md`` for
the architecture and the resume runbook.
"""

from .batcher import FullBatch, Loader, MiniBatcher, PairBatch, PairNegativeSampler
from .callbacks import (
    Callback,
    Checkpoint,
    ConvergenceStop,
    EarlyStopping,
    LossCurveLogger,
    LRScheduler,
    Timer,
    TraceCallback,
)
from .state import (
    TrainState,
    checkpoint_digest,
    checkpoint_info,
    checkpoint_path,
    has_checkpoint,
    latest_checkpoint,
    list_checkpoints,
)
from .trainer import Trainer, TrainingLog, fit_or_resume

__all__ = [
    "Callback",
    "Checkpoint",
    "ConvergenceStop",
    "EarlyStopping",
    "FullBatch",
    "LRScheduler",
    "Loader",
    "LossCurveLogger",
    "MiniBatcher",
    "PairBatch",
    "PairNegativeSampler",
    "Timer",
    "TraceCallback",
    "TrainState",
    "Trainer",
    "TrainingLog",
    "checkpoint_digest",
    "checkpoint_info",
    "checkpoint_path",
    "fit_or_resume",
    "has_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
]
