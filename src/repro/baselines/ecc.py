"""Ensemble Classifier Chain (Read et al., ECML 2009) over logistic regression.

A classifier chain trains one binary classifier per label, feeding the
predictions of earlier labels as extra inputs to later ones; an ensemble
averages chains with different label orders.  The paper uses logistic
regression as the base classifier (Sec. V-A1).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..ml import LogisticRegression
from ..train import TrainingLog
from .base import Recommender, register


@register
class ECC(Recommender):
    """Ensemble of classifier chains with random label orders."""

    name = "ECC"

    def __init__(
        self,
        num_chains: int = 3,
        l2: float = 1e-3,
        max_iter: int = 120,
        seed: int = 0,
    ) -> None:
        if num_chains < 1:
            raise ValueError("num_chains must be >= 1")
        self.num_chains = num_chains
        self.l2 = l2
        self.max_iter = max_iter
        self.seed = seed
        self._chains: List[List[Optional[LogisticRegression]]] = []
        self._orders: List[np.ndarray] = []
        self._constants: List[List[float]] = []

    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "ECC":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.float64)
        self._check_fit_inputs(x, y)
        started = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        num_labels = y.shape[1]
        self._chains = []
        self._orders = []
        self._constants = []
        for _chain in range(self.num_chains):
            order = rng.permutation(num_labels)
            chain: List[Optional[LogisticRegression]] = []
            constants: List[float] = []
            augmented = x
            for label in order:
                column = y[:, label]
                if column.min() == column.max():
                    chain.append(None)
                    constants.append(float(column[0]))
                else:
                    model = LogisticRegression(
                        l2=self.l2, max_iter=self.max_iter
                    ).fit(augmented, column)
                    chain.append(model)
                    constants.append(0.0)
                augmented = np.hstack([augmented, column[:, None]])
            self._chains.append(chain)
            self._orders.append(order)
            self._constants.append(constants)
        # The convergence story of "the ensemble" is the sum of its
        # chained logistic fits.
        self._training_log = TrainingLog.aggregate(
            [m.training_log for chain in self._chains for m in chain if m],
            wall_seconds=time.perf_counter() - started,
        )
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if not self._chains:
            raise RuntimeError("call fit() first")
        x = np.asarray(features, dtype=np.float64)
        num_labels = len(self._chains[0])
        total = np.zeros((x.shape[0], num_labels))
        for chain, order, constants in zip(self._chains, self._orders, self._constants):
            scores = np.zeros((x.shape[0], num_labels))
            augmented = x
            for position, label in enumerate(order):
                model = chain[position]
                if model is None:
                    prob = np.full(x.shape[0], constants[position])
                else:
                    prob = model.predict_proba(augmented)
                scores[:, label] = prob
                # The chain feeds *hard* predictions forward at test time.
                augmented = np.hstack([augmented, (prob >= 0.5).astype(float)[:, None]])
            total += scores
        return total / self.num_chains
