"""The paper's baseline methods (Sec. V-A1).

Traditional: UserSim (Eq. 20), ECC over logistic regression, one-vs-rest
linear SVM.  Graph learning-based: GCMC, LightGCN, SafeDrug, Bipar-GCN,
CauseRec.  All share the :class:`Recommender` interface — fit on observed
patients, score drugs for unobserved patients from features alone.
"""

from .base import Recommender, available_baselines, register
from .usersim import UserSim
from .ecc import ECC
from .svm import SVMRecommender
from .gcmc import GCMCRecommender
from .lightgcn import LightGCNRecommender
from .bipargcn import BiparGCN
from .safedrug import SafeDrug
from .causerec import CauseRec

__all__ = [
    "Recommender",
    "register",
    "available_baselines",
    "UserSim",
    "ECC",
    "SVMRecommender",
    "GCMCRecommender",
    "LightGCNRecommender",
    "BiparGCN",
    "SafeDrug",
    "CauseRec",
]
