"""LightGCN baseline (He et al., SIGIR 2020), inductive variant.

Layer-0 embeddings come from feature transforms (patients have no ids at
test time — the evaluation protocol scores *unobserved* patients), then the
parameter-free LightGCN propagation runs over the observed patient-drug
graph and scores are inner products.  Both patient and drug representations
pass through the propagation — the over-smoothing behaviour the paper
analyses in Fig. 7 comes precisely from this design.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..gnn import LightGCNPropagation, bipartite_propagation, default_layer_weights
from ..graph import BipartiteGraph
from ..nn import Adam, Linear, Tensor, bce_with_logits, gather_rows
from ..train import PairBatch, PairNegativeSampler, TrainState, Trainer
from .base import Recommender, register


@register
class LightGCNRecommender(Recommender):
    """Feature-inductive LightGCN trained with BCE and negative sampling."""

    name = "LightGCN"

    def __init__(
        self,
        hidden_dim: int = 32,
        num_layers: int = 2,
        epochs: int = 150,
        learning_rate: float = 0.01,
        seed: int = 0,
        propagation_backend: str = "auto",
    ) -> None:
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.propagation_backend = propagation_backend
        self._fitted = False
        self._rep_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def fit(
        self, features: np.ndarray, medication_use: np.ndarray
    ) -> "LightGCNRecommender":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.int64)
        self._check_fit_inputs(x, y)
        rng = np.random.default_rng(self.seed)
        m, n = y.shape

        self._x_train = x
        self._num_drugs = n
        self._rep_cache = None  # invalidate: a refit changes every weight
        self._patient_fc = Linear(x.shape[1], self.hidden_dim, rng)
        self._drug_fc = Linear(n, self.hidden_dim, rng)  # one-hot drug ids
        self._drug_onehot = np.eye(n)
        self._propagation = LightGCNPropagation(
            self.num_layers, default_layer_weights(self.num_layers)
        )
        graph = BipartiteGraph.from_matrix(y)
        self._p2d, self._d2p = bipartite_propagation(
            graph, backend=self.propagation_backend
        )

        params = self._patient_fc.parameters() + self._drug_fc.parameters()
        x_t = Tensor(x)
        d_t = Tensor(self._drug_onehot)

        def step(state: TrainState, batch: PairBatch) -> Tensor:
            h_p, h_d = self._encode(x_t, d_t)
            logits = (
                gather_rows(h_p, batch.rows) * gather_rows(h_d, batch.cols)
            ).sum(axis=1)
            return bce_with_logits(logits, batch.labels)

        loader = PairNegativeSampler(
            np.argwhere(y == 1), *np.nonzero(y == 0)
        )
        state = TrainState(params, Adam(params, lr=self.learning_rate), rng)
        log = Trainer(self.epochs).fit(step, state, loader)
        self._training_log = log
        self._losses = log.losses
        self._fitted = True
        # Post-propagation representations over the *training* graph are
        # fixed once training ends; computing them here (instead of on
        # every predict_scores call) makes repeated scoring O(new
        # patients) instead of O(full training graph) — see
        # benchmarks/test_bench_train.py for the enforced speedup.
        self._fitted_representations()
        return self

    def _encode(self, x_t: Tensor, d_t: Tensor):
        h_p0 = self._patient_fc(x_t)
        h_d0 = self._drug_fc(d_t)
        return self._propagation(h_p0, h_d0, self._p2d, self._d2p)

    def _fitted_representations(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached post-propagation (patients, drugs) representations."""
        if self._rep_cache is None:
            h_p, h_d = self._encode(
                Tensor(self._x_train), Tensor(self._drug_onehot)
            )
            self._rep_cache = (h_p.numpy(), h_d.numpy())
        return self._rep_cache

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        x = np.asarray(features, dtype=np.float64)
        # Drug representations after propagation over the *training* graph
        # (cached at fit end — the training graph never changes afterwards).
        _h_p, h_d = self._fitted_representations()
        # New patients have no links: their representation is the layer-0
        # term only (beta_0 * FC(x)); the constant factor does not change
        # the ranking but is kept for score comparability.
        h_new = self._patient_fc(Tensor(x)) * self._propagation.layer_weights[0]
        scores = h_new.numpy() @ h_d.T
        return 1.0 / (1.0 + np.exp(-scores))

    # -- analysis hooks used by the Fig. 7 experiment -------------------
    def patient_representations(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Post-propagation patient representations (over-smoothed, Fig. 7a)."""
        if not self._fitted:
            raise RuntimeError("call fit() first")
        h_p, _h_d = self._fitted_representations()
        return h_p.copy()

    def drug_representations(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        _h_p, h_d = self._fitted_representations()
        return h_d.copy()
