"""SVM baseline (Bao & Jiang reference [28]): one-vs-rest linear SVMs.

Drugs are ranked for each patient by the decision values of 86 independent
binary SVMs trained on the patient features.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..ml import MultiLabelSVM
from ..train import TrainingLog
from .base import Recommender, register


@register
class SVMRecommender(Recommender):
    """One-vs-rest linear SVM ranking."""

    name = "SVM"

    def __init__(self, reg: float = 1e-3, epochs: int = 30, seed: int = 0) -> None:
        self.reg = reg
        self.epochs = epochs
        self.seed = seed
        self._model: Optional[MultiLabelSVM] = None

    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "SVMRecommender":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.int64)
        self._check_fit_inputs(x, y)
        started = time.perf_counter()
        self._model = MultiLabelSVM(reg=self.reg, epochs=self.epochs, seed=self.seed)
        self._model.fit(x, y)
        self._training_log = TrainingLog.aggregate(
            [m.training_log for m in self._model.models if m is not None],
            wall_seconds=time.perf_counter() - started,
        )
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("call fit() first")
        return self._model.decision_matrix(np.asarray(features, dtype=np.float64))
