"""GCMC baseline (van den Berg et al., 2017), inductive variant.

The encoder passes messages over the observed patient-drug graph with a
per-channel weight matrix and a dense output layer that also consumes the
node's own features — which is what lets unobserved patients (no links,
features only) be scored at test time.
"""

from __future__ import annotations

import numpy as np

from ..gnn import BilinearDecoder, GCMCEncoder, bipartite_propagation
from ..graph import BipartiteGraph
from ..nn import Adam, Tensor, bce_with_logits, concat, gather_rows
from ..train import PairBatch, PairNegativeSampler, TrainState, Trainer
from .base import Recommender, register


@register
class GCMCRecommender(Recommender):
    """Graph convolutional matrix completion with a bilinear decoder."""

    name = "GCMC"

    def __init__(
        self,
        hidden_dim: int = 32,
        out_dim: int = 32,
        epochs: int = 150,
        learning_rate: float = 0.01,
        seed: int = 0,
        propagation_backend: str = "auto",
    ) -> None:
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.propagation_backend = propagation_backend
        self._fitted = False

    def fit(
        self, features: np.ndarray, medication_use: np.ndarray
    ) -> "GCMCRecommender":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.int64)
        self._check_fit_inputs(x, y)
        rng = np.random.default_rng(self.seed)
        m, n = y.shape
        self._x_train = x
        self._num_drugs = n
        self._drug_onehot = np.eye(n)

        self._encoder = GCMCEncoder(
            patient_dim=x.shape[1],
            drug_dim=n,
            hidden_dim=self.hidden_dim,
            out_dim=self.out_dim,
            num_channels=1,
            rng=rng,
        )
        self._decoder = BilinearDecoder(self.out_dim, rng)
        graph = BipartiteGraph.from_matrix(y)
        self._channels = [
            bipartite_propagation(graph, backend=self.propagation_backend)
        ]

        params = self._encoder.parameters() + self._decoder.parameters()
        x_t = Tensor(x)
        d_t = Tensor(self._drug_onehot)

        def step(state: TrainState, batch: PairBatch) -> Tensor:
            h_p, h_d = self._encoder(x_t, d_t, self._channels)
            pair_scores = (
                (gather_rows(h_p, batch.rows) @ self._decoder.interaction)
                * gather_rows(h_d, batch.cols)
            ).sum(axis=1)
            return bce_with_logits(pair_scores, batch.labels)

        loader = PairNegativeSampler(np.argwhere(y == 1), *np.nonzero(y == 0))
        state = TrainState(params, Adam(params, lr=self.learning_rate), rng)
        log = Trainer(self.epochs).fit(step, state, loader)
        self._training_log = log
        self._losses = log.losses
        self._fitted = True
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        x = np.asarray(features, dtype=np.float64)
        # Drug embeddings from the training graph.
        _h_p, h_d = self._encoder(
            Tensor(self._x_train), Tensor(self._drug_onehot), self._channels
        )
        # Unobserved patients receive no messages: the encoder's dense layer
        # sees zero aggregate + their own features.
        zero_msg = Tensor(np.zeros((x.shape[0], self.hidden_dim)))
        h_new = self._encoder.patient_dense(
            concat([zero_msg, Tensor(x)], axis=1)
        ).relu()
        scores = self._decoder(h_new, h_d).numpy()
        return 1.0 / (1.0 + np.exp(-scores))
