"""Bipar-GCN baseline (Jin et al., ICDE 2020).

Two structurally identical but separately parameterized towers: a
patient-oriented network aggregating the embeddings of the drugs a patient
takes, and a drug-oriented network aggregating the embeddings of the
patients taking the drug.  Scores are inner products.
"""

from __future__ import annotations

import numpy as np

from ..graph import BipartiteGraph
from ..nn import Adam, Linear, Tensor, bce_with_logits, concat, gather_rows, matmul_fixed
from ..gnn import mean_adjacency
from ..train import PairBatch, PairNegativeSampler, TrainState, Trainer
from .base import Recommender, register


@register
class BiparGCN(Recommender):
    """Two-tower bipartite GCN with mean-aggregation."""

    name = "Bipar-GCN"

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 150,
        learning_rate: float = 0.01,
        seed: int = 0,
        propagation_backend: str = "auto",
    ) -> None:
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.propagation_backend = propagation_backend
        self._fitted = False

    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "BiparGCN":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.int64)
        self._check_fit_inputs(x, y)
        rng = np.random.default_rng(self.seed)
        m, n = y.shape
        self._x_train = x
        self._num_drugs = n
        self._drug_onehot = np.eye(n)

        hidden = self.hidden_dim
        # Input transforms.
        self._patient_in = Linear(x.shape[1], hidden, rng)
        self._drug_in = Linear(n, hidden, rng)
        # Patient-oriented tower: self + aggregated drug messages.
        self._patient_tower = Linear(2 * hidden, hidden, rng)
        # Drug-oriented tower: self + aggregated patient messages.
        self._drug_tower = Linear(2 * hidden, hidden, rng)

        # Row-normalized aggregation matrices (mean over neighbours),
        # dense or CSR per the propagation backend policy.
        backend = self.propagation_backend
        self._p_agg = mean_adjacency(y.astype(np.float64), backend)   # (m, n)
        self._d_agg = mean_adjacency(y.T.astype(np.float64), backend)  # (n, m)

        params = (
            self._patient_in.parameters()
            + self._drug_in.parameters()
            + self._patient_tower.parameters()
            + self._drug_tower.parameters()
        )
        x_t = Tensor(x)
        d_t = Tensor(self._drug_onehot)

        def step(state: TrainState, batch: PairBatch) -> Tensor:
            h_p, h_d = self._encode(x_t, d_t)
            logits = (
                gather_rows(h_p, batch.rows) * gather_rows(h_d, batch.cols)
            ).sum(axis=1)
            return bce_with_logits(logits, batch.labels)

        loader = PairNegativeSampler(np.argwhere(y == 1), *np.nonzero(y == 0))
        state = TrainState(params, Adam(params, lr=self.learning_rate), rng)
        log = Trainer(self.epochs).fit(step, state, loader)
        self._training_log = log
        self._losses = log.losses
        self._fitted = True
        return self

    def _encode(self, x_t: Tensor, d_t: Tensor):
        e_p = self._patient_in(x_t).leaky_relu()
        e_d = self._drug_in(d_t).leaky_relu()
        msg_from_drugs = matmul_fixed(self._p_agg, e_d)
        msg_from_patients = matmul_fixed(self._d_agg, e_p)
        h_p = self._patient_tower(concat([e_p, msg_from_drugs], axis=1)).leaky_relu()
        h_d = self._drug_tower(concat([e_d, msg_from_patients], axis=1)).leaky_relu()
        return h_p, h_d

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        x = np.asarray(features, dtype=np.float64)
        _h_p, h_d = self._encode(Tensor(self._x_train), Tensor(self._drug_onehot))
        # Unobserved patients: self path with a zero drug-message aggregate.
        e_new = self._patient_in(Tensor(x)).leaky_relu()
        zero_msg = Tensor(np.zeros((x.shape[0], self.hidden_dim)))
        h_new = self._patient_tower(concat([e_new, zero_msg], axis=1)).leaky_relu()
        scores = h_new.numpy() @ h_d.numpy().T
        return 1.0 / (1.0 + np.exp(-scores))
