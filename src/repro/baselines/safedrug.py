"""SafeDrug baseline (Yang et al., IJCAI 2021), adapted.

SafeDrug encodes a patient's visit history with a GRU and predicts a safe
medication set, penalizing predictions that activate antagonistic DDI
pairs.  Two fidelity notes for this reproduction:

* On multi-visit data (MIMIC) the GRU consumes the true visit sequence.
  On the chronic cohort each patient is a single questionnaire snapshot,
  so the sequence has length 1 — exactly the situation the paper points
  out makes SafeDrug weak for new patients ("it relies on medication
  information from patient's past visits").
* The molecule-structure MPNN of the original is replaced by a learned
  drug embedding table: molecular graphs for the anonymized drugs are not
  available even in the paper's own MIMIC extract.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..gnn import GRUEncoder
from ..graph import SignedGraph
from ..nn import Adam, MLP, Tensor, bce_loss
from ..train import TrainState, Trainer
from .base import Recommender, register


@register
class SafeDrug(Recommender):
    """GRU patient encoder + drug-set decoder with a DDI penalty."""

    name = "SafeDrug"

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 120,
        learning_rate: float = 0.01,
        ddi_penalty: float = 0.05,
        seed: int = 0,
        ddi_graph: Optional[SignedGraph] = None,
    ) -> None:
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.ddi_penalty = ddi_penalty
        self.seed = seed
        self.ddi_graph = ddi_graph
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        medication_use: np.ndarray,
        visit_steps: Optional[Sequence[np.ndarray]] = None,
    ) -> "SafeDrug":
        """``visit_steps`` (list of per-visit feature arrays) enables the
        true sequential mode on multi-visit data; otherwise the single
        feature matrix is treated as a one-visit history."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.float64)
        self._check_fit_inputs(x, y)
        rng = np.random.default_rng(self.seed)
        m, n = y.shape
        self._num_drugs = n

        steps = (
            [np.asarray(s, dtype=np.float64) for s in visit_steps]
            if visit_steps is not None
            else [x]
        )
        self._single_visit = visit_steps is None
        input_dim = steps[0].shape[1]

        self._encoder = GRUEncoder(input_dim, self.hidden_dim, rng)
        self._head = MLP([self.hidden_dim, self.hidden_dim, n], rng)

        # Antagonism mask D[u, v] = 1 for antagonistic pairs.
        self._ddi_mask = np.zeros((n, n))
        if self.ddi_graph is not None:
            for u, v, sign in self.ddi_graph.edges_with_signs():
                if sign == -1:
                    self._ddi_mask[u, v] = 1.0
                    self._ddi_mask[v, u] = 1.0

        params = self._encoder.parameters() + self._head.parameters()
        step_tensors = [Tensor(s) for s in steps]
        y_t = Tensor(y)
        mask_t = Tensor(self._ddi_mask)
        penalize = self.ddi_penalty > 0 and bool(self._ddi_mask.any())

        def step(state: TrainState, _batch) -> Tensor:
            hidden = self._encoder(step_tensors)
            probs = self._head(hidden).sigmoid()
            loss = bce_loss(probs, y_t)
            if penalize:
                # Expected number of activated antagonistic pairs:
                # sum_{u,v} D_uv p_u p_v, batch-averaged.
                pair_activation = (
                    (probs @ mask_t) * probs
                ).sum(axis=1).mean()
                loss = loss + pair_activation * self.ddi_penalty
            return loss

        state = TrainState(params, Adam(params, lr=self.learning_rate), rng)
        log = Trainer(self.epochs).fit(step, state)
        self._training_log = log
        self._losses = log.losses
        self._fitted = True
        return self

    def predict_scores(
        self,
        features: np.ndarray,
        visit_steps: Optional[Sequence[np.ndarray]] = None,
    ) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        if visit_steps is not None:
            steps = [Tensor(np.asarray(s, dtype=np.float64)) for s in visit_steps]
        else:
            steps = [Tensor(np.asarray(features, dtype=np.float64))]
        hidden = self._encoder(steps)
        return self._head(hidden).sigmoid().numpy()
