"""UserSim baseline (Eq. 20).

Scores for an unobserved patient are the medication rows of the observed
patients, weighted by feature cosine similarity:

    Y_U = cosine_similarity(X_U, X_O) @ Y_O
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..train import TrainingLog
from .base import Recommender, register


@register
class UserSim(Recommender):
    """Cosine-similarity-weighted label transfer."""

    name = "UserSim"

    def __init__(self) -> None:
        self._features: Optional[np.ndarray] = None
        self._medications: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "UserSim":
        features = np.asarray(features, dtype=np.float64)
        medication_use = np.asarray(medication_use, dtype=np.float64)
        self._check_fit_inputs(features, medication_use)
        self._features = features
        self._medications = medication_use
        # Memorization, not iteration: a zero-epoch log keeps the
        # uniform `training_log` surface intact for reporting.
        self._training_log = TrainingLog()
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if self._features is None:
            raise RuntimeError("call fit() first")
        new = np.asarray(features, dtype=np.float64)
        similarity = _cosine(new, self._features)
        return similarity @ self._medications

    @staticmethod
    def _cosine_rows(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.maximum(norms, 1e-12)


def _cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), 1e-12)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), 1e-12)
    return a_norm @ b_norm.T
