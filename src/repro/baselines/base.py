"""Common interface for all medication-suggestion baselines.

Every baseline consumes observed patients (features + medication matrix)
and scores all drugs for *unobserved* patients from their features alone —
the protocol of Definition 3 that all Table I/IV rows share.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Type

import numpy as np

from ..train import TrainingLog


class Recommender(ABC):
    """fit(X_obs, Y_obs) -> predict_scores(X_new) -> (n, num_drugs)."""

    name: str = "recommender"

    #: Set by every baseline's ``fit`` (see :attr:`training_log`).
    _training_log: Optional[TrainingLog] = None

    @abstractmethod
    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "Recommender":
        """Train on the observed patients."""

    @abstractmethod
    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Score every drug for each (unobserved) patient."""

    @property
    def training_log(self) -> TrainingLog:
        """Uniform convergence record of the last ``fit``.

        Every baseline exposes the same :class:`repro.train.TrainingLog`
        (epochs run, final loss, wall seconds, stopped-early flag), so
        experiments and the pipeline report convergence consistently
        instead of reaching into private ``_losses`` lists.  Baselines
        with no iterative fit (e.g. UserSim) report a zero-epoch log.
        """
        if self._training_log is None:
            raise RuntimeError("call fit() before training_log")
        return self._training_log

    def _check_fit_inputs(
        self, features: np.ndarray, medication_use: np.ndarray
    ) -> None:
        if features.ndim != 2 or medication_use.ndim != 2:
            raise ValueError("features and medication_use must be 2-D")
        if features.shape[0] != medication_use.shape[0]:
            raise ValueError(
                f"row mismatch: {features.shape[0]} feature rows vs "
                f"{medication_use.shape[0]} medication rows"
            )


_REGISTRY: Dict[str, Type[Recommender]] = {}


def register(cls: Type[Recommender]) -> Type[Recommender]:
    """Class decorator registering a baseline under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def available_baselines() -> Dict[str, Type[Recommender]]:
    """Name -> class mapping of every registered baseline."""
    return dict(_REGISTRY)
