"""CauseRec baseline (Zhang et al., SIGIR 2021), adapted.

CauseRec models the user as a sequence of behaviour "concepts", scores each
concept's indispensability against the target, and synthesizes
counterfactual user sequences (replacing dispensable / indispensable
concepts) for contrastive representation learning.

Adaptation to the paper's protocol: patient behaviours are the non-zero
feature groups of the questionnaire (chronic data) or previous-visit codes
(MIMIC).  Counterfactual views are built by masking low-attention
(out-of-interest) versus high-attention feature blocks; a contrastive term
pulls the observed representation toward counterfactual-positive views and
away from counterfactual-negative ones.  As in the paper's Tables I/IV the
approach transfers poorly to first-visit patients — reproducing that
weakness is part of the reproduction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import Adam, Linear, Tensor, bce_loss, concat, softmax
from ..train import TrainState, Trainer
from .base import Recommender, register


@register
class CauseRec(Recommender):
    """Counterfactual-contrastive patient encoder + dot-product scorer."""

    name = "CauseRec"

    def __init__(
        self,
        hidden_dim: int = 32,
        num_blocks: int = 8,
        epochs: int = 120,
        learning_rate: float = 0.01,
        contrastive_weight: float = 0.2,
        mask_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if num_blocks < 2:
            raise ValueError("num_blocks must be >= 2")
        if not 0.0 < mask_fraction < 1.0:
            raise ValueError("mask_fraction must be in (0, 1)")
        self.hidden_dim = hidden_dim
        self.num_blocks = num_blocks
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.contrastive_weight = contrastive_weight
        self.mask_fraction = mask_fraction
        self.seed = seed
        self._fitted = False

    # ------------------------------------------------------------------
    def _split_blocks(self, dim: int) -> List[np.ndarray]:
        """Partition feature indices into behaviour-concept blocks."""
        indices = np.arange(dim)
        return np.array_split(indices, self.num_blocks)

    def fit(self, features: np.ndarray, medication_use: np.ndarray) -> "CauseRec":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(medication_use, dtype=np.float64)
        self._check_fit_inputs(x, y)
        rng = np.random.default_rng(self.seed)
        m, n = y.shape
        self._num_drugs = n
        self._blocks = self._split_blocks(x.shape[1])

        self._block_encoders = [
            Linear(len(block), self.hidden_dim, rng) for block in self._blocks
        ]
        self._attention = Linear(self.hidden_dim, 1, rng)
        self._drug_table = Linear(n, self.hidden_dim, rng, bias=False)
        self._drug_onehot = np.eye(n)

        params: List = []
        for enc in self._block_encoders:
            params.extend(enc.parameters())
        params.extend(self._attention.parameters())
        params.extend(self._drug_table.parameters())

        x_t = Tensor(x)
        num_mask = max(1, int(round(self.mask_fraction * self.num_blocks)))

        def step(state: TrainState, _batch) -> Tensor:
            rep, attn = self._encode(x_t, return_attention=True)
            drug_emb = self._drug_table(Tensor(self._drug_onehot))
            probs = (rep @ drug_emb.T).sigmoid()
            loss = bce_loss(probs, Tensor(y))

            if self.contrastive_weight > 0:
                attn_np = attn.numpy()  # (m, num_blocks)
                order = np.argsort(attn_np, axis=1)
                dispensable = order[:, :num_mask]       # low-attention blocks
                indispensable = order[:, -num_mask:]    # high-attention blocks
                # Counterfactual-positive: mask dispensable concepts —
                # representation should stay put (pull together).
                pos_rep = self._encode_masked(x_t, dispensable)
                # Counterfactual-negative: mask indispensable concepts —
                # representation should move (push apart).
                neg_rep = self._encode_masked(x_t, indispensable)
                pos_sim = (rep * pos_rep).sum(axis=1)
                neg_sim = (rep * neg_rep).sum(axis=1)
                # Margin-style contrast on similarities.
                contrast = (neg_sim - pos_sim + 1.0).relu().mean()
                loss = loss + contrast * self.contrastive_weight
            return loss

        state = TrainState(params, Adam(params, lr=self.learning_rate), rng)
        log = Trainer(self.epochs).fit(step, state)
        self._training_log = log
        self._losses = log.losses
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _encode(self, x_t: Tensor, return_attention: bool = False):
        """Attention-pooled concept representation."""
        block_reps = [
            self._block_encoders[b](x_t[:, block]).tanh()
            for b, block in enumerate(self._blocks)
        ]
        stacked = concat([r.reshape(r.shape[0], 1, self.hidden_dim) for r in block_reps], axis=1)
        scores = concat(
            [self._attention(r) for r in block_reps], axis=1
        )  # (m, num_blocks)
        weights = softmax(scores, axis=1)
        rep = (stacked * weights.reshape(weights.shape[0], self.num_blocks, 1)).sum(axis=1)
        if return_attention:
            return rep, weights
        return rep

    def _encode_masked(self, x_t: Tensor, masked_blocks: np.ndarray) -> Tensor:
        """Re-encode with the given per-patient blocks zeroed out."""
        m = x_t.shape[0]
        mask = np.ones((m, len(self._blocks)))
        rows = np.repeat(np.arange(m), masked_blocks.shape[1])
        mask[rows, masked_blocks.ravel()] = 0.0
        block_reps = [
            self._block_encoders[b](x_t[:, block]).tanh() * Tensor(mask[:, b : b + 1])
            for b, block in enumerate(self._blocks)
        ]
        total = block_reps[0]
        for rep in block_reps[1:]:
            total = total + rep
        return total * (1.0 / len(self._blocks))

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        x_t = Tensor(np.asarray(features, dtype=np.float64))
        rep = self._encode(x_t)
        drug_emb = self._drug_table(Tensor(self._drug_onehot))
        return (rep @ drug_emb.T).sigmoid().numpy()
