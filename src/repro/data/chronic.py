"""Synthetic Hong Kong Chronic Disease Study cohort.

The real cohort (4157 interview records of subjects aged 65+, 71 features,
86 medications) is private.  This simulator regenerates its *published*
statistical structure so that the reproduction exercises the same learning
problem:

* disease prevalences follow Fig. 2 (hypertension 49%, cardiovascular 22%,
  type-2 diabetes 11%, ...), with realistic comorbidity boosts (diabetes ->
  nephropathy, hypertension -> cardiovascular),
* the 71 features replicate the questionnaire's three blocks — personal
  (age, gender, BMI, blood pressure...), clinical history (disease-family
  and drug-family history questions) and psychological assessment (GDS
  score and emotional items) — and are *informative*: each is generated
  from the patient's latent disease state plus noise,
* medication use draws 1-3 drugs per active disease from that disease's
  catalog entries, with popularity-weighted choice, then applies a
  DDI-aware adjustment: antagonistic co-prescriptions are mostly dropped
  and synergistic pairs boosted — but a small fraction of antagonistic
  pairs survives, reproducing the paper's Case-4 observation that real
  patients sometimes take antagonistic combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import (
    DISEASE_PREVALENCE,
    SECONDARY_DISEASES,
    Drug,
    all_diseases,
    build_catalog,
    drugs_by_disease,
)
from .ddi import DDIDataset, generate_ddi

NUM_FEATURES = 71

#: Conditional prevalence boosts: P(disease | condition) multipliers.
_COMORBIDITY: Dict[Tuple[str, str], float] = {
    ("type2_diabetes", "diabetic_nephropathy"): 8.0,
    ("hypertension", "cardiovascular"): 1.8,
    ("cardiovascular", "myocardial_infarction"): 4.0,
    ("gastric_ulcer", "erosive_esophagitis"): 3.0,
    ("hypertension", "edema"): 2.0,
    ("cardiovascular", "thromboembolism"): 3.0,
}

#: Base prevalences for the secondary (Fig. 3-only) diseases.
_SECONDARY_PREVALENCE: Dict[str, float] = {
    "erosive_esophagitis": 0.04,
    "seizures": 0.01,
    "eye_diseases": 0.05,
    "anxiety_disorder": 0.05,
    "edema": 0.03,
    "thromboembolism": 0.01,
}


@dataclass
class ChronicCohort:
    """A generated cohort.

    Attributes:
        features: (n, 71) float feature matrix X.
        medications: (n, 86) binary medication-use matrix Y.
        diseases: (n, num_diseases) binary latent disease state.
        feature_names: names of the 71 features, questionnaire-style.
        disease_names: column order of ``diseases``.
        catalog: the drug catalog.
        ddi: the DDI dataset used for prescription adjustment.
    """

    features: np.ndarray
    medications: np.ndarray
    diseases: np.ndarray
    feature_names: List[str]
    disease_names: List[str]
    catalog: List[Drug]
    ddi: DDIDataset

    @property
    def num_patients(self) -> int:
        return self.features.shape[0]

    @property
    def num_drugs(self) -> int:
        return self.medications.shape[1]


def _feature_names() -> List[str]:
    """The 71 questionnaire features in their three blocks."""
    personal = [
        "age",
        "gender_male",
        "bmi",
        "systolic_bp",
        "diastolic_bp",
        "heart_rate",
        "waist_circumference",
        "grip_strength",
        "gait_speed",
        "smoker",
        "alcohol_weekly",
        "lives_alone",
        "education_years",
        "falls_last_year",
    ]
    clinical: List[str] = []
    for disease in all_diseases():
        clinical.append(f"history_{disease}")
    drug_families = [
        "alpha_blocker",
        "beta_blocker",
        "ace_inhibitor",
        "arb",
        "calcium_channel_blocker",
        "diuretic",
        "statin",
        "antiplatelet",
        "nsaid",
        "ppi",
        "h2_blocker",
        "sulfonylurea",
        "biguanide",
        "nitrate",
        "anticonvulsant",
        "bronchodilator",
        "benzodiazepine",
        "ssri",
        "anticoagulant",
    ]
    clinical.extend(f"ever_taken_{fam}" for fam in drug_families)
    psych = [
        "gds_score",
        "felt_downhearted",
        "felt_nervous",
        "felt_calm",
        "felt_energetic",
        "sleep_quality",
        "appetite",
        "social_activity",
        "memory_complaints",
    ]
    labs = [
        "fasting_glucose",
        "hba1c",
        "ldl_cholesterol",
        "hdl_cholesterol",
        "triglycerides",
        "creatinine",
        "egfr",
        "hemoglobin",
        "albumin",
        "urate",
        "alt",
        "crp",
        "vitamin_d",
        "calcium",
    ]
    names = personal + clinical + psych + labs
    if len(names) != NUM_FEATURES:
        raise RuntimeError(f"feature arithmetic broken: {len(names)} names")
    return names


def _sample_diseases(
    rng: np.random.Generator, n: int, disease_names: Sequence[str]
) -> np.ndarray:
    """Sample the latent multi-label disease state with comorbidity boosts."""
    base = {
        **{d: p for d, p in DISEASE_PREVALENCE.items() if d != "other"},
        **_SECONDARY_PREVALENCE,
    }
    out = np.zeros((n, len(disease_names)), dtype=np.int64)
    index = {d: i for i, d in enumerate(disease_names)}
    # First pass: independent draws.
    for disease, prob in base.items():
        out[:, index[disease]] = rng.random(n) < prob
    # Second pass: comorbidity boosts (re-draw conditionally).
    for (cause, effect), boost in _COMORBIDITY.items():
        has_cause = out[:, index[cause]] == 1
        extra = np.minimum(base[effect] * boost, 0.95) - base[effect]
        flip = has_cause & (rng.random(n) < extra)
        out[flip, index[effect]] = 1
    # Guarantee every patient has at least one chronic condition (the cohort
    # was recruited for chronic disease study).
    lonely = out.sum(axis=1) == 0
    if lonely.any():
        probs = np.array([base[d] for d in disease_names])
        probs = probs / probs.sum()
        out[lonely, :] = 0
        chosen = rng.choice(len(disease_names), size=int(lonely.sum()), p=probs)
        out[np.nonzero(lonely)[0], chosen] = 1
    return out


def _generate_features(
    rng: np.random.Generator,
    diseases: np.ndarray,
    disease_names: Sequence[str],
    feature_names: Sequence[str],
) -> np.ndarray:
    """Generate the 71 features from the latent disease state + noise.

    Each block mirrors the questionnaire: continuous vitals shift with the
    relevant disease, history items are noisy copies of the disease state,
    and the psychological block correlates with disease burden.
    """
    n = diseases.shape[0]
    index = {d: i for i, d in enumerate(disease_names)}
    col = {name: i for i, name in enumerate(feature_names)}
    x = np.zeros((n, len(feature_names)))

    def has(d: str) -> np.ndarray:
        return diseases[:, index[d]].astype(float)

    burden = diseases.sum(axis=1).astype(float)

    # --- personal block -------------------------------------------------
    x[:, col["age"]] = rng.normal(75.0, 6.0, n) + burden
    x[:, col["gender_male"]] = (rng.random(n) < 2254 / 4157).astype(float)
    x[:, col["bmi"]] = rng.normal(23.5, 3.2, n) + 1.5 * has("type2_diabetes")
    x[:, col["systolic_bp"]] = (
        rng.normal(128.0, 12.0, n) + 18.0 * has("hypertension") + 4.0 * has("diabetic_nephropathy")
    )
    x[:, col["diastolic_bp"]] = rng.normal(76.0, 8.0, n) + 8.0 * has("hypertension")
    x[:, col["heart_rate"]] = rng.normal(72.0, 9.0, n) + 5.0 * has("cardiovascular")
    x[:, col["waist_circumference"]] = rng.normal(85.0, 9.0, n) + 4.0 * has("type2_diabetes")
    x[:, col["grip_strength"]] = rng.normal(26.0, 6.0, n) - 1.5 * burden
    x[:, col["gait_speed"]] = rng.normal(0.9, 0.2, n) - 0.05 * burden
    x[:, col["smoker"]] = (rng.random(n) < 0.18 + 0.10 * has("asthma")).astype(float)
    x[:, col["alcohol_weekly"]] = (rng.random(n) < 0.22).astype(float)
    x[:, col["lives_alone"]] = (rng.random(n) < 0.15).astype(float)
    x[:, col["education_years"]] = np.clip(rng.normal(6.0, 4.0, n), 0, 18)
    x[:, col["falls_last_year"]] = (rng.random(n) < 0.1 + 0.02 * burden).astype(float)

    # --- clinical history block ------------------------------------------
    for disease in disease_names:
        name = f"history_{disease}"
        if name in col:
            noisy = has(disease) * (rng.random(n) < 0.9) + (rng.random(n) < 0.03)
            x[:, col[name]] = np.clip(noisy, 0, 1)

    family_signal = {
        "alpha_blocker": ["hypertension", "prostatic_hyperplasia"],
        "beta_blocker": ["hypertension", "cardiovascular"],
        "ace_inhibitor": ["hypertension", "diabetic_nephropathy"],
        "arb": ["hypertension", "diabetic_nephropathy"],
        "calcium_channel_blocker": ["hypertension"],
        "diuretic": ["hypertension", "edema"],
        "statin": ["cardiovascular", "myocardial_infarction"],
        "antiplatelet": ["cardiovascular", "myocardial_infarction"],
        "nsaid": ["arthritis"],
        "ppi": ["erosive_esophagitis", "gastric_ulcer"],
        "h2_blocker": ["gastric_ulcer"],
        "sulfonylurea": ["type2_diabetes"],
        "biguanide": ["type2_diabetes"],
        "nitrate": ["cardiovascular", "myocardial_infarction"],
        "anticonvulsant": ["seizures"],
        "bronchodilator": ["asthma"],
        "benzodiazepine": ["anxiety_disorder"],
        "ssri": ["anxiety_disorder"],
        "anticoagulant": ["thromboembolism"],
    }
    for family, sources in family_signal.items():
        name = f"ever_taken_{family}"
        signal = np.zeros(n)
        for disease in sources:
            signal = np.maximum(signal, has(disease))
        taken = signal * (rng.random(n) < 0.8) + (rng.random(n) < 0.05)
        x[:, col[name]] = np.clip(taken, 0, 1)

    # --- psychological block ---------------------------------------------
    x[:, col["gds_score"]] = np.clip(
        rng.normal(3.0, 2.0, n) + 0.8 * burden + 2.0 * has("anxiety_disorder"), 0, 15
    )
    x[:, col["felt_downhearted"]] = (
        rng.random(n) < 0.15 + 0.20 * has("anxiety_disorder")
    ).astype(float)
    x[:, col["felt_nervous"]] = (
        rng.random(n) < 0.12 + 0.30 * has("anxiety_disorder")
    ).astype(float)
    x[:, col["felt_calm"]] = (
        rng.random(n) < 0.70 - 0.25 * has("anxiety_disorder")
    ).astype(float)
    x[:, col["felt_energetic"]] = (rng.random(n) < np.clip(0.6 - 0.08 * burden, 0, 1)).astype(float)
    x[:, col["sleep_quality"]] = np.clip(rng.normal(3.5, 1.0, n) - 0.3 * burden, 1, 5)
    x[:, col["appetite"]] = np.clip(rng.normal(3.8, 0.8, n) - 0.2 * burden, 1, 5)
    x[:, col["social_activity"]] = np.clip(rng.normal(3.0, 1.2, n) - 0.2 * burden, 0, 5)
    x[:, col["memory_complaints"]] = (rng.random(n) < 0.2 + 0.02 * burden).astype(float)

    # --- laboratory block --------------------------------------------------
    x[:, col["fasting_glucose"]] = rng.normal(5.3, 0.7, n) + 2.5 * has("type2_diabetes")
    x[:, col["hba1c"]] = rng.normal(5.6, 0.4, n) + 1.6 * has("type2_diabetes")
    x[:, col["ldl_cholesterol"]] = rng.normal(3.0, 0.8, n) + 0.7 * has("cardiovascular")
    x[:, col["hdl_cholesterol"]] = rng.normal(1.3, 0.3, n) - 0.15 * has("type2_diabetes")
    x[:, col["triglycerides"]] = rng.normal(1.4, 0.6, n) + 0.5 * has("type2_diabetes")
    x[:, col["creatinine"]] = rng.normal(80.0, 15.0, n) + 40.0 * has("diabetic_nephropathy")
    x[:, col["egfr"]] = np.clip(
        rng.normal(75.0, 15.0, n) - 30.0 * has("diabetic_nephropathy"), 5, 120
    )
    x[:, col["hemoglobin"]] = rng.normal(13.5, 1.4, n) - 1.0 * has("diabetic_nephropathy")
    x[:, col["albumin"]] = rng.normal(42.0, 3.0, n) - 2.0 * has("diabetic_nephropathy")
    x[:, col["urate"]] = rng.normal(0.35, 0.07, n) + 0.08 * has("arthritis")
    x[:, col["alt"]] = rng.normal(25.0, 10.0, n)
    x[:, col["crp"]] = np.abs(rng.normal(2.0, 2.0, n) + 3.0 * has("arthritis"))
    x[:, col["vitamin_d"]] = rng.normal(55.0, 18.0, n)
    x[:, col["calcium"]] = rng.normal(2.35, 0.1, n)
    return x


def _assign_medications(
    rng: np.random.Generator,
    diseases: np.ndarray,
    disease_names: Sequence[str],
    catalog: List[Drug],
    ddi: DDIDataset,
    antagonism_tolerance: float,
) -> np.ndarray:
    """Prescribe drugs per active disease, then apply DDI-aware adjustment."""
    n = diseases.shape[0]
    num_drugs = len(catalog)
    by_disease = drugs_by_disease(catalog)
    # Diseases with no dedicated catalog drugs are treated with the drugs of
    # a clinically adjacent class (e.g. post-MI patients get cardiovascular
    # medication).
    aliases = {"myocardial_infarction": "cardiovascular"}
    for disease, target in aliases.items():
        by_disease.setdefault(disease, by_disease[target])
    index = {d: i for i, d in enumerate(disease_names)}
    # Zipf-ish popularity inside each class: first drugs are prescribed more.
    popularity: Dict[str, np.ndarray] = {}
    for disease, dids in by_disease.items():
        ranks = np.arange(1, len(dids) + 1, dtype=float)
        weights = 1.0 / ranks
        popularity[disease] = weights / weights.sum()

    y = np.zeros((n, num_drugs), dtype=np.int64)
    graph = ddi.graph
    for i in range(n):
        chosen: List[int] = []
        for disease in disease_names:
            if disease not in by_disease or diseases[i, index[disease]] == 0:
                continue
            count = int(rng.integers(1, min(3, len(by_disease[disease])) + 1))
            picks = rng.choice(
                by_disease[disease], size=count, replace=False, p=popularity[disease]
            )
            chosen.extend(int(p) for p in picks)
        # DDI adjustment pass 1: drop antagonistic pairs (keep a tolerated
        # fraction, reproducing Case 4's real-world antagonistic usage).
        kept: List[int] = []
        for drug in chosen:
            conflict = any(
                graph.sign_or_none(drug, other) == -1 for other in kept
            )
            if conflict and rng.random() > antagonism_tolerance:
                continue
            if drug not in kept:
                kept.append(drug)
        # DDI adjustment pass 2: add a synergistic partner occasionally.
        for drug in list(kept):
            if rng.random() < 0.35:
                partners = [
                    p
                    for p in graph.positive_neighbors(drug)
                    if p not in kept
                    and not any(graph.sign_or_none(p, k) == -1 for k in kept)
                ]
                if partners:
                    kept.append(int(rng.choice(partners)))
        y[i, kept] = 1
    return y


def generate_chronic_cohort(
    num_patients: int = 4157,
    seed: int = 11,
    ddi: Optional[DDIDataset] = None,
    antagonism_tolerance: float = 0.08,
) -> ChronicCohort:
    """Generate the full synthetic cohort.

    Args:
        num_patients: cohort size (the paper's cohort has 4157 records).
        seed: RNG seed for full determinism.
        ddi: reuse an existing DDI dataset; a default is generated otherwise.
        antagonism_tolerance: probability that an antagonistic
            co-prescription survives (Case 4 behaviour).
    """
    if num_patients < 1:
        raise ValueError("num_patients must be positive")
    if not 0.0 <= antagonism_tolerance <= 1.0:
        raise ValueError("antagonism_tolerance must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if ddi is None:
        ddi = generate_ddi(seed=seed)
    disease_names = all_diseases()
    feature_names = _feature_names()
    diseases = _sample_diseases(rng, num_patients, disease_names)
    features = _generate_features(rng, diseases, disease_names, feature_names)
    medications = _assign_medications(
        rng, diseases, disease_names, ddi.catalog, ddi, antagonism_tolerance
    )
    return ChronicCohort(
        features=features,
        medications=medications,
        diseases=diseases,
        feature_names=feature_names,
        disease_names=disease_names,
        catalog=ddi.catalog,
        ddi=ddi,
    )


def standardize_features(features: np.ndarray) -> np.ndarray:
    """Z-score features column-wise (constant columns become zero)."""
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    return (features - mean) / std
