"""Datasets: all synthetic, seeded substitutes for the paper's data sources.

* :mod:`repro.data.catalog` — the 86-drug catalog with paper-pinned ids.
* :mod:`repro.data.ddi` — DrugCombDB-style DDI graph (97 synergy / 243
  antagonism) with every case-study interaction pinned.
* :mod:`repro.data.chronic` — the Hong Kong Chronic Disease Study cohort
  simulator (X: n x 71, Y: n x 86).
* :mod:`repro.data.drkg` — miniature DRKG + from-scratch TransE, yielding
  the 400-d pre-trained drug embeddings of the Table II "KG" ablation.
* :mod:`repro.data.mimic` — MIMIC-III-like multi-visit EHR generator.
* :mod:`repro.data.splits` — the 5:3:2 patient split.

See DESIGN.md section 2 for the substitution rationale.
"""

from .catalog import (
    DISEASE_PREVALENCE,
    NUM_DRUGS,
    SECONDARY_DISEASES,
    Drug,
    all_diseases,
    build_catalog,
    drug_names,
    drugs_by_disease,
)
from .ddi import (
    DDIDataset,
    PINNED_ANTAGONISM,
    PINNED_SYNERGY,
    add_no_interaction_edges,
    antagonism_only,
    generate_ddi,
)
from .chronic import (
    ChronicCohort,
    NUM_FEATURES,
    generate_chronic_cohort,
    standardize_features,
)
from .drkg import KnowledgeGraph, TransE, build_knowledge_graph, pretrained_drug_embeddings
from .mimic import MimicDataset, MimicVisit, generate_mimic, visit_step_features
from .splits import Split, split_patients

__all__ = [
    "NUM_DRUGS",
    "NUM_FEATURES",
    "DISEASE_PREVALENCE",
    "SECONDARY_DISEASES",
    "Drug",
    "build_catalog",
    "drugs_by_disease",
    "drug_names",
    "all_diseases",
    "DDIDataset",
    "PINNED_SYNERGY",
    "PINNED_ANTAGONISM",
    "generate_ddi",
    "add_no_interaction_edges",
    "antagonism_only",
    "ChronicCohort",
    "generate_chronic_cohort",
    "standardize_features",
    "KnowledgeGraph",
    "TransE",
    "build_knowledge_graph",
    "pretrained_drug_embeddings",
    "MimicDataset",
    "MimicVisit",
    "generate_mimic",
    "visit_step_features",
    "Split",
    "split_patients",
]
