"""Patient splits: the paper's 5:3:2 train/validation/test protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Split:
    """Index arrays for one train/validation/test partition."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.val), len(self.test)


def split_patients(
    num_patients: int,
    ratios: Tuple[float, float, float] = (0.5, 0.3, 0.2),
    seed: int = 29,
) -> Split:
    """Random patient split with the paper's 5:3:2 default.

    The split is over *patients* (observed vs unobserved, Definition 3):
    train patients' links are visible during training; validation/test
    patients are entirely held out.
    """
    if num_patients < 3:
        raise ValueError("need at least 3 patients to split")
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must sum to 1, got {ratios}")
    if any(r <= 0 for r in ratios):
        raise ValueError("all ratios must be positive")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_patients)
    n_train = max(1, int(round(ratios[0] * num_patients)))
    n_val = max(1, int(round(ratios[1] * num_patients)))
    n_train = min(n_train, num_patients - 2)
    n_val = min(n_val, num_patients - n_train - 1)
    return Split(
        train=np.sort(order[:n_train]),
        val=np.sort(order[n_train : n_train + n_val]),
        test=np.sort(order[n_train + n_val :]),
    )
