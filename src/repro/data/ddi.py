"""Synthetic DrugCombDB-style drug-drug interaction graph.

The paper extracts, for its 86 drugs, 97 synergistic and 243 antagonistic
pairs from DrugCombDB.  DrugCombDB itself is public but not redistributable
here, so this module generates a seeded surrogate with the same published
statistics and structure:

* exactly ``num_synergy`` (97) synergistic and ``num_antagonism`` (243)
  antagonistic pairs,
* every case-study interaction the paper names is pinned explicitly
  (Fig. 8 and Fig. 9), so the qualitative case replays hold,
* synergy is biased within a disease class (drugs co-prescribed for one
  condition tend to act on complementary pathways), antagonism is biased
  across classes — the mechanism DrugCombDB's curation reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..graph import SignedGraph, edge_key
from .catalog import Drug, build_catalog

#: Synergistic interactions named by the paper's case studies.
PINNED_SYNERGY: Tuple[Tuple[int, int], ...] = (
    (46, 47),  # Simvastatin + Atorvastatin      (Fig. 8a)
    (10, 5),   # Indapamide + Perindopril        (Fig. 9 case 1)
)

#: Antagonistic interactions named by the paper's case studies.
PINNED_ANTAGONISM: Tuple[Tuple[int, int], ...] = (
    (61, 59),  # Gabapentin vs Isosorbide Dinitrate   (Fig. 8a)
    (61, 1),   # Gabapentin vs Doxazosin              (Fig. 8e)
    (83, 3),   # Theophylline vs Enalapril            (Fig. 9 case 2)
    (58, 48),  # Isosorbide Mononitrate vs Metformin  (Fig. 9 case 4)
    # Case 3: Amlodipine (8) and Felodipine (32) are each antagonistic to
    # Phenytoin (60), Doxazosin (1), Terazosin (4) and Prazosin (0).
    (8, 60), (8, 1), (8, 4), (8, 0),
    (32, 60), (32, 1), (32, 4), (32, 0),
)


@dataclass
class DDIDataset:
    """A generated DDI graph plus its provenance.

    Attributes:
        graph: signed graph over the 86 drugs (+1 synergy / -1 antagonism).
        synergy: list of synergistic pairs.
        antagonism: list of antagonistic pairs.
        catalog: the drug catalog the pairs refer to.
    """

    graph: SignedGraph
    synergy: List[Tuple[int, int]]
    antagonism: List[Tuple[int, int]]
    catalog: List[Drug]


def generate_ddi(
    seed: int = 7,
    num_synergy: int = 97,
    num_antagonism: int = 243,
    num_drugs: int | None = None,
) -> DDIDataset:
    """Generate the DDI graph with the paper's pair counts.

    Args:
        seed: RNG seed; the same seed always yields the same graph.
        num_synergy: number of +1 edges (97 in the paper).
        num_antagonism: number of -1 edges (243 in the paper).
        num_drugs: override the drug count (smaller graphs for tests).

    Raises:
        ValueError: if the requested counts cannot fit the pinned edges or
            the number of available pairs.
    """
    catalog = build_catalog()
    if num_drugs is not None:
        if num_drugs < 2:
            raise ValueError("need at least two drugs")
        catalog = [d for d in catalog if d.did < num_drugs]
    n = len(catalog)
    rng = np.random.default_rng(seed)

    taken: Set[Tuple[int, int]] = set()
    synergy: List[Tuple[int, int]] = []
    antagonism: List[Tuple[int, int]] = []

    def try_add(pair: Tuple[int, int], sign: int) -> bool:
        key = edge_key(*pair)
        if key in taken or key[0] == key[1]:
            return False
        taken.add(key)
        (synergy if sign > 0 else antagonism).append(key)
        return True

    for pair in PINNED_SYNERGY:
        if max(pair) < n:
            try_add(pair, +1)
    for pair in PINNED_ANTAGONISM:
        if max(pair) < n:
            try_add(pair, -1)
    if len(synergy) > num_synergy or len(antagonism) > num_antagonism:
        raise ValueError(
            f"pinned edges ({len(synergy)} synergy / {len(antagonism)} "
            f"antagonism) exceed the requested counts"
        )

    by_disease: Dict[str, List[int]] = {}
    for drug in catalog:
        by_disease.setdefault(drug.disease, []).append(drug.did)
    diseases = sorted(by_disease)
    disease_of = {drug.did: drug.disease for drug in catalog}

    def sample_within() -> Tuple[int, int]:
        weights = np.array([len(by_disease[d]) for d in diseases], dtype=float)
        weights = np.where(weights >= 2, weights, 0.0)
        weights /= weights.sum()
        disease = diseases[rng.choice(len(diseases), p=weights)]
        u, v = rng.choice(by_disease[disease], size=2, replace=False)
        return int(u), int(v)

    def sample_across() -> Tuple[int, int]:
        u, v = rng.choice(n, size=2, replace=False)
        return int(u), int(v)

    max_pairs = n * (n - 1) // 2
    if num_synergy + num_antagonism > max_pairs:
        raise ValueError(
            f"{num_synergy + num_antagonism} edges do not fit in {max_pairs} pairs"
        )

    guard = 0
    while len(synergy) < num_synergy:
        # 80% of synergy within a disease class, 20% anywhere.
        pair = sample_within() if rng.random() < 0.8 else sample_across()
        try_add(pair, +1)
        guard += 1
        if guard > 100 * max_pairs:  # pragma: no cover - safety valve
            raise RuntimeError("DDI sampling failed to converge")
    while len(antagonism) < num_antagonism:
        # 70% of antagonism across disease classes.
        pair = sample_across() if rng.random() < 0.7 else sample_within()
        u, v = pair
        if rng.random() < 0.5 and disease_of[u] == disease_of[v]:
            continue  # re-draw some same-class pairs to bias across classes
        try_add(pair, -1)
        guard += 1
        if guard > 100 * max_pairs:  # pragma: no cover - safety valve
            raise RuntimeError("DDI sampling failed to converge")

    graph = SignedGraph(n)
    for u, v in synergy:
        graph.add_edge(u, v, +1)
    for u, v in antagonism:
        graph.add_edge(u, v, -1)
    return DDIDataset(graph=graph, synergy=synergy, antagonism=antagonism, catalog=catalog)


def add_no_interaction_edges(
    graph: SignedGraph, ratio: float, rng: np.random.Generator
) -> SignedGraph:
    """Sample "no interaction" (sign 0) edges, as in Sec. IV-A1.

    ``ratio`` scales the number of zero edges relative to the count of real
    (signed) edges.  Returns a new graph; the input is not modified.
    """
    if ratio < 0:
        raise ValueError("ratio must be non-negative")
    result = graph.copy()
    n = graph.num_nodes
    target = int(round(ratio * graph.num_edges))
    max_free = n * (n - 1) // 2 - graph.num_edges
    target = min(target, max_free)
    added = 0
    while added < target:
        u, v = rng.choice(n, size=2, replace=False)
        u, v = int(u), int(v)
        if result.has_edge(u, v):
            continue
        result.add_edge(u, v, 0)
        added += 1
    return result


def antagonism_only(dataset: DDIDataset) -> SignedGraph:
    """MIMIC-style DDI view: only antagonistic pairs (see Sec. V-E)."""
    graph = SignedGraph(dataset.graph.num_nodes)
    for u, v in dataset.antagonism:
        graph.add_edge(u, v, -1)
    return graph
