"""Synthetic MIMIC-III-style multi-visit EHR data.

MIMIC-III requires credentialed access, so this generator reproduces the
problem *shape* the paper uses in Sec. V-E:

* ~6350 patients, each with at least two visits,
* every visit carries diagnosis codes, procedure codes and medications,
* features = multi-hot diagnoses/procedures of all *previous* visits,
  label = medication set of the *last* visit,
* the accompanying DDI information contains only antagonistic pairs between
  anonymous drugs (which is why the paper reports only the GIN backbone on
  MIMIC — signed models need both signs).

The generative process uses latent condition clusters: each patient gets
1-3 chronic conditions; each condition induces characteristic diagnoses,
procedures and medications that recur (with noise) across visits, so
previous-visit features genuinely predict last-visit medications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import SignedGraph


@dataclass
class MimicVisit:
    """One hospital visit: code sets (indices into the resp. vocabularies)."""

    diagnoses: List[int]
    procedures: List[int]
    medications: List[int]


@dataclass
class MimicDataset:
    """The generated EHR dataset.

    Attributes:
        visits: per-patient visit sequences (length >= 2).
        features: (n, num_diag + num_proc) multi-hot previous-visit features.
        labels: (n, num_drugs) binary last-visit medication matrix.
        ddi: antagonism-only signed graph over the anonymous drugs.
        num_diagnoses / num_procedures / num_drugs: vocabulary sizes.
    """

    visits: List[List[MimicVisit]]
    features: np.ndarray
    labels: np.ndarray
    ddi: SignedGraph
    num_diagnoses: int
    num_procedures: int
    num_drugs: int

    @property
    def num_patients(self) -> int:
        return len(self.visits)


def generate_mimic(
    num_patients: int = 6350,
    num_conditions: int = 25,
    num_diagnoses: int = 200,
    num_procedures: int = 80,
    num_drugs: int = 100,
    num_ddi_pairs: int = 180,
    seed: int = 23,
) -> MimicDataset:
    """Generate the synthetic MIMIC-III cohort.

    Args:
        num_patients: number of patients (paper: 6350).
        num_conditions: latent condition clusters driving code co-occurrence.
        num_diagnoses / num_procedures / num_drugs: vocabulary sizes.
        num_ddi_pairs: number of antagonistic drug pairs to sample.
        seed: RNG seed.
    """
    if num_patients < 1:
        raise ValueError("num_patients must be positive")
    rng = np.random.default_rng(seed)

    # Condition profiles: which codes each latent condition tends to emit.
    diag_per_condition = 6
    proc_per_condition = 3
    med_per_condition = 4
    condition_diag = [
        rng.choice(num_diagnoses, size=diag_per_condition, replace=False)
        for _ in range(num_conditions)
    ]
    condition_proc = [
        rng.choice(num_procedures, size=proc_per_condition, replace=False)
        for _ in range(num_conditions)
    ]
    condition_med = [
        rng.choice(num_drugs, size=med_per_condition, replace=False)
        for _ in range(num_conditions)
    ]

    # Antagonism-only DDI over the anonymous drugs.
    ddi = SignedGraph(num_drugs)
    attempts = 0
    while ddi.num_edges < num_ddi_pairs and attempts < 50 * num_ddi_pairs:
        u, v = rng.choice(num_drugs, size=2, replace=False)
        if not ddi.has_edge(int(u), int(v)):
            ddi.add_edge(int(u), int(v), -1)
        attempts += 1

    # Popularity skew so frequency alone is a meaningful (but beatable) signal.
    condition_weights = 1.0 / np.arange(1, num_conditions + 1)
    condition_weights /= condition_weights.sum()

    visits_all: List[List[MimicVisit]] = []
    features = np.zeros((num_patients, num_diagnoses + num_procedures))
    labels = np.zeros((num_patients, num_drugs), dtype=np.int64)

    for i in range(num_patients):
        k = int(rng.integers(1, 4))
        conditions = rng.choice(num_conditions, size=k, replace=False, p=condition_weights)
        num_visits = int(rng.integers(2, 6))
        patient_visits: List[MimicVisit] = []
        for _v in range(num_visits):
            diag: List[int] = []
            proc: List[int] = []
            meds: List[int] = []
            for c in conditions:
                for code in condition_diag[c]:
                    if rng.random() < 0.6:
                        diag.append(int(code))
                for code in condition_proc[c]:
                    if rng.random() < 0.4:
                        proc.append(int(code))
                for code in condition_med[c]:
                    if rng.random() < 0.7:
                        meds.append(int(code))
            # Noise codes unrelated to the conditions.
            for _ in range(int(rng.integers(0, 3))):
                diag.append(int(rng.integers(0, num_diagnoses)))
            if not meds:  # every visit prescribes something
                meds.append(int(rng.choice(condition_med[conditions[0]])))
            patient_visits.append(
                MimicVisit(
                    diagnoses=sorted(set(diag)),
                    procedures=sorted(set(proc)),
                    medications=sorted(set(meds)),
                )
            )
        visits_all.append(patient_visits)

        # Features: union of codes over all visits but the last.
        for visit in patient_visits[:-1]:
            features[i, visit.diagnoses] = 1.0
            for p in visit.procedures:
                features[i, num_diagnoses + p] = 1.0
        labels[i, patient_visits[-1].medications] = 1

    return MimicDataset(
        visits=visits_all,
        features=features,
        labels=labels,
        ddi=ddi,
        num_diagnoses=num_diagnoses,
        num_procedures=num_procedures,
        num_drugs=num_drugs,
    )


def visit_step_features(
    dataset: MimicDataset, max_visits: Optional[int] = None
) -> List[np.ndarray]:
    """Per-visit multi-hot features for sequence models (SafeDrug, CauseRec).

    Returns a list of (num_patients, num_diag + num_proc) arrays, one per
    visit step, left-padded with zeros for patients with fewer visits; the
    *label* visit is excluded.
    """
    history_lengths = [len(v) - 1 for v in dataset.visits]
    steps = max(history_lengths)
    if max_visits is not None:
        steps = min(steps, max_visits)
    dim = dataset.num_diagnoses + dataset.num_procedures
    out = [np.zeros((dataset.num_patients, dim)) for _ in range(steps)]
    for i, visits in enumerate(dataset.visits):
        history = visits[:-1][-steps:]
        offset = steps - len(history)
        for s, visit in enumerate(history):
            step = out[offset + s]
            step[i, visit.diagnoses] = 1.0
            for p in visit.procedures:
                step[i, dataset.num_diagnoses + p] = 1.0
    return out
