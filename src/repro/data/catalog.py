"""The 86-drug catalog and disease taxonomy of the chronic cohort.

The paper studies 86 medications for the chronic diseases of Fig. 2, with
per-disease medication counts following Fig. 3.  The real cohort is private;
this catalog reconstructs the *published* structure:

* every drug the paper names, at the drug id (DID) the paper uses in its
  case studies (Doxazosin DID 1, Perindopril DID 5, Amlodipine DID 8,
  Indapamide DID 10, Felodipine DID 32, Simvastatin DID 46, Atorvastatin
  DID 47, Metformin DID 48, Isosorbide DID 58/59, Gabapentin DID 61,
  Theophylline DID 83, Enalapril DID 3, plus Prazosin/Terazosin/Phenytoin),
* disease prevalences from Fig. 2,
* drugs-per-disease counts in the spirit of Fig. 3 (hypertension and
  cardiovascular disease have the most medications).

Note: the paper refers to "Isosorbide" both as DID 58 (Case 4) and DID 59
(Fig. 8).  Both are real distinct drugs — Isosorbide Mononitrate and
Isosorbide Dinitrate — so the catalog pins one at each id, which lets every
case study replay at its published id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

NUM_DRUGS = 86

#: Disease prevalences of Fig. 2 (fractions of interview records).
DISEASE_PREVALENCE: Dict[str, float] = {
    "hypertension": 0.49,
    "cardiovascular": 0.22,
    "type2_diabetes": 0.11,
    "gastric_ulcer": 0.06,
    "arthritis": 0.03,
    "prostatic_hyperplasia": 0.02,
    "diabetic_nephropathy": 0.02,
    "myocardial_infarction": 0.01,
    "asthma": 0.01,
    "other": 0.03,
}

#: Diseases that appear in Fig. 3 but are folded into "other" in Fig. 2.
SECONDARY_DISEASES: Tuple[str, ...] = (
    "erosive_esophagitis",
    "seizures",
    "eye_diseases",
    "anxiety_disorder",
    "edema",
    "thromboembolism",
)


@dataclass(frozen=True)
class Drug:
    """One catalog entry.

    Attributes:
        did: drug id, 0..85, stable across the whole reproduction.
        name: generic drug name.
        disease: primary disease class the drug treats (Fig. 3 grouping).
    """

    did: int
    name: str
    disease: str


# Named drugs pinned at the paper's ids (see module docstring).
_PINNED: Dict[int, Tuple[str, str]] = {
    1: ("Doxazosin", "hypertension"),
    2: ("Lisinopril", "hypertension"),
    3: ("Enalapril", "hypertension"),
    5: ("Perindopril", "hypertension"),
    8: ("Amlodipine", "hypertension"),
    10: ("Indapamide", "hypertension"),
    32: ("Felodipine", "hypertension"),
    46: ("Simvastatin", "cardiovascular"),
    47: ("Atorvastatin", "cardiovascular"),
    48: ("Metformin", "type2_diabetes"),
    58: ("Isosorbide Mononitrate", "cardiovascular"),
    59: ("Isosorbide Dinitrate", "cardiovascular"),
    61: ("Gabapentin", "seizures"),
    83: ("Theophylline", "asthma"),
    # Paper names these in Case 3 without fixed DIDs; pinned here for replay.
    0: ("Prazosin", "hypertension"),
    4: ("Terazosin", "hypertension"),
    60: ("Phenytoin", "seizures"),
}

# Remaining drugs fill the Fig. 3 per-disease counts.  Names are common
# generics for each class; counts are chosen so the catalog totals 86 and
# hypertension/cardiovascular dominate, as in Fig. 3.
_FILLERS: List[Tuple[str, str]] = [
    # hypertension (already 8 pinned -> +8 = 16 total)
    ("Metoprolol", "hypertension"),
    ("Atenolol", "hypertension"),
    ("Losartan", "hypertension"),
    ("Valsartan", "hypertension"),
    ("Hydrochlorothiazide", "hypertension"),
    ("Nifedipine", "hypertension"),
    ("Diltiazem", "hypertension"),
    ("Bisoprolol", "hypertension"),
    # cardiovascular (3 pinned -> +11 = 14 total)
    ("Aspirin", "cardiovascular"),
    ("Clopidogrel", "cardiovascular"),
    ("Digoxin", "cardiovascular"),
    ("Nitroglycerin", "cardiovascular"),
    ("Rosuvastatin", "cardiovascular"),
    ("Pravastatin", "cardiovascular"),
    ("Amiodarone", "cardiovascular"),
    ("Ticlopidine", "cardiovascular"),
    ("Dipyridamole", "cardiovascular"),
    ("Propranolol", "cardiovascular"),
    ("Verapamil", "cardiovascular"),
    # arthritis (8)
    ("Ibuprofen", "arthritis"),
    ("Naproxen", "arthritis"),
    ("Diclofenac", "arthritis"),
    ("Celecoxib", "arthritis"),
    ("Indomethacin", "arthritis"),
    ("Allopurinol", "arthritis"),
    ("Colchicine", "arthritis"),
    ("Methotrexate", "arthritis"),
    # erosive esophagitis (6)
    ("Omeprazole", "erosive_esophagitis"),
    ("Lansoprazole", "erosive_esophagitis"),
    ("Pantoprazole", "erosive_esophagitis"),
    ("Esomeprazole", "erosive_esophagitis"),
    ("Rabeprazole", "erosive_esophagitis"),
    ("Sucralfate", "erosive_esophagitis"),
    # type 2 diabetes (1 pinned -> +5 = 6 total)
    ("Gliclazide", "type2_diabetes"),
    ("Glibenclamide", "type2_diabetes"),
    ("Glipizide", "type2_diabetes"),
    ("Acarbose", "type2_diabetes"),
    ("Pioglitazone", "type2_diabetes"),
    # diabetic nephropathy (4)
    ("Ramipril", "diabetic_nephropathy"),
    ("Irbesartan", "diabetic_nephropathy"),
    ("Candesartan", "diabetic_nephropathy"),
    ("Telmisartan", "diabetic_nephropathy"),
    # seizures (2 pinned -> +3 = 5 total)
    ("Carbamazepine", "seizures"),
    ("Valproate", "seizures"),
    ("Lamotrigine", "seizures"),
    # gastric / duodenal ulcer (5)
    ("Ranitidine", "gastric_ulcer"),
    ("Famotidine", "gastric_ulcer"),
    ("Cimetidine", "gastric_ulcer"),
    ("Misoprostol", "gastric_ulcer"),
    ("Bismuth Subsalicylate", "gastric_ulcer"),
    # eye diseases (4)
    ("Timolol", "eye_diseases"),
    ("Latanoprost", "eye_diseases"),
    ("Brimonidine", "eye_diseases"),
    ("Dorzolamide", "eye_diseases"),
    # anxiety disorder (4)
    ("Diazepam", "anxiety_disorder"),
    ("Lorazepam", "anxiety_disorder"),
    ("Sertraline", "anxiety_disorder"),
    ("Paroxetine", "anxiety_disorder"),
    # edema (3)
    ("Furosemide", "edema"),
    ("Spironolactone", "edema"),
    ("Bumetanide", "edema"),
    # prostatic hyperplasia (3)
    ("Finasteride", "prostatic_hyperplasia"),
    ("Tamsulosin", "prostatic_hyperplasia"),
    ("Dutasteride", "prostatic_hyperplasia"),
    # asthma (1 pinned -> +3 = 4 total)
    ("Salbutamol", "asthma"),
    ("Budesonide", "asthma"),
    ("Montelukast", "asthma"),
    # thromboembolism (2)
    ("Warfarin", "thromboembolism"),
    ("Heparin", "thromboembolism"),
]


def build_catalog() -> List[Drug]:
    """Construct the deterministic 86-drug catalog.

    Pinned drugs land at their paper DIDs; fillers take the remaining ids in
    order.  The result is the same on every call.
    """
    names: Dict[int, Tuple[str, str]] = dict(_PINNED)
    free_ids = [i for i in range(NUM_DRUGS) if i not in names]
    if len(_FILLERS) != len(free_ids):
        raise RuntimeError(
            f"catalog arithmetic broken: {len(_FILLERS)} fillers for "
            f"{len(free_ids)} free ids"
        )
    for did, (name, disease) in zip(free_ids, _FILLERS):
        names[did] = (name, disease)
    return [Drug(did, *names[did]) for did in range(NUM_DRUGS)]


def drugs_by_disease(catalog: List[Drug]) -> Dict[str, List[int]]:
    """Map each disease class to its drug ids."""
    mapping: Dict[str, List[int]] = {}
    for drug in catalog:
        mapping.setdefault(drug.disease, []).append(drug.did)
    return mapping


def drug_names(catalog: List[Drug]) -> Dict[int, str]:
    return {drug.did: drug.name for drug in catalog}


def all_diseases() -> List[str]:
    """All disease classes (Fig. 2 majors + Fig. 3 secondaries)."""
    majors = [d for d in DISEASE_PREVALENCE if d != "other"]
    return majors + list(SECONDARY_DISEASES)
