"""Synthetic Drug Repurposing Knowledge Graph + TransE pre-training.

The paper uses 400-dimensional TransE embeddings of its 86 drugs from DRKG
as the drugs' *original features* in the MD module, and shows in the Table
II ablation that they underperform DDIGCN embeddings (DRKG mixes in
gene/protein relations irrelevant to prescription choice).

DRKG is public but large and not available offline, so this module builds a
miniature knowledge graph with the same entity/relation structure — drugs,
diseases, genes; ``treats``, ``targets``, ``associated_with``,
``interacts_with`` — and trains real TransE (Bordes et al., NeurIPS 2013)
on it.  The result plays the same role: embeddings with genuine but
*indirect* structure relative to the medication-suggestion task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .catalog import Drug, build_catalog, drugs_by_disease

RELATIONS = ("treats", "targets", "associated_with", "interacts_with")


@dataclass
class KnowledgeGraph:
    """Triple store over drugs, diseases and genes.

    Entity ids are contiguous: drugs first (0..num_drugs-1), then diseases,
    then genes.  ``triples`` holds (head, relation, tail) index triples.
    """

    num_drugs: int
    num_diseases: int
    num_genes: int
    triples: np.ndarray  # (m, 3) int64
    relation_names: Tuple[str, ...] = RELATIONS

    @property
    def num_entities(self) -> int:
        return self.num_drugs + self.num_diseases + self.num_genes

    @property
    def num_relations(self) -> int:
        return len(self.relation_names)


def build_knowledge_graph(seed: int = 13, genes_per_disease: int = 6) -> KnowledgeGraph:
    """Build the miniature DRKG.

    * ``treats``: each drug treats its catalog disease.
    * ``targets``: each drug targets 1-3 genes of its disease module.
    * ``associated_with``: each disease is associated with its gene module.
    * ``interacts_with``: random gene-gene interactions.
    """
    rng = np.random.default_rng(seed)
    catalog = build_catalog()
    by_disease = drugs_by_disease(catalog)
    diseases = sorted(by_disease)
    num_drugs = len(catalog)
    num_diseases = len(diseases)
    num_genes = num_diseases * genes_per_disease

    disease_id = {d: num_drugs + i for i, d in enumerate(diseases)}
    gene_base = num_drugs + num_diseases
    rel = {name: i for i, name in enumerate(RELATIONS)}

    triples: List[Tuple[int, int, int]] = []
    for i, disease in enumerate(diseases):
        module = [gene_base + i * genes_per_disease + g for g in range(genes_per_disease)]
        for gene in module:
            triples.append((disease_id[disease], rel["associated_with"], gene))
        for did in by_disease[disease]:
            triples.append((did, rel["treats"], disease_id[disease]))
            k = int(rng.integers(1, 4))
            for gene in rng.choice(module, size=k, replace=False):
                triples.append((did, rel["targets"], int(gene)))
    # Gene-gene interactions: ring within each module + random cross links.
    for i in range(num_diseases):
        module = [gene_base + i * genes_per_disease + g for g in range(genes_per_disease)]
        for a, b in zip(module, module[1:]):
            triples.append((a, rel["interacts_with"], b))
    total_genes = num_genes
    for _ in range(total_genes):
        a, b = rng.choice(total_genes, size=2, replace=False)
        triples.append((gene_base + int(a), rel["interacts_with"], gene_base + int(b)))

    return KnowledgeGraph(
        num_drugs=num_drugs,
        num_diseases=num_diseases,
        num_genes=num_genes,
        triples=np.asarray(triples, dtype=np.int64),
    )


class TransE:
    """TransE (Bordes et al., 2013): score(h, r, t) = ||e_h + e_r - e_t||.

    Trained with margin ranking against corrupted triples and SGD, with
    entity embeddings re-normalized to the unit ball each step — the
    original paper's recipe, in plain numpy (no autograd needed: the
    gradients of the L2 score are closed-form).
    """

    def __init__(self, kg: KnowledgeGraph, dim: int = 400, seed: int = 17) -> None:
        if dim < 1:
            raise ValueError("embedding dim must be positive")
        self.kg = kg
        self.dim = dim
        rng = np.random.default_rng(seed)
        bound = 6.0 / np.sqrt(dim)
        self.entities = rng.uniform(-bound, bound, size=(kg.num_entities, dim))
        self.relations = rng.uniform(-bound, bound, size=(kg.num_relations, dim))
        self.relations /= np.maximum(
            np.linalg.norm(self.relations, axis=1, keepdims=True), 1e-12
        )
        self._rng = rng

    def _scores(self, triples: np.ndarray) -> np.ndarray:
        heads = self.entities[triples[:, 0]]
        rels = self.relations[triples[:, 1]]
        tails = self.entities[triples[:, 2]]
        return np.linalg.norm(heads + rels - tails, axis=1)

    def train(
        self,
        epochs: int = 50,
        lr: float = 0.01,
        margin: float = 1.0,
        batch_size: int = 256,
    ) -> List[float]:
        """Margin-ranking SGD; returns the per-epoch mean hinge loss."""
        triples = self.kg.triples
        m = len(triples)
        history: List[float] = []
        for _ in range(epochs):
            norms = np.linalg.norm(self.entities, axis=1, keepdims=True)
            self.entities /= np.maximum(norms, 1.0)
            order = self._rng.permutation(m)
            epoch_loss = 0.0
            for start in range(0, m, batch_size):
                batch = triples[order[start : start + batch_size]]
                corrupted = batch.copy()
                flip_head = self._rng.random(len(batch)) < 0.5
                random_entities = self._rng.integers(
                    0, self.kg.num_entities, size=len(batch)
                )
                corrupted[flip_head, 0] = random_entities[flip_head]
                corrupted[~flip_head, 2] = random_entities[~flip_head]

                pos_diff = (
                    self.entities[batch[:, 0]]
                    + self.relations[batch[:, 1]]
                    - self.entities[batch[:, 2]]
                )
                neg_diff = (
                    self.entities[corrupted[:, 0]]
                    + self.relations[corrupted[:, 1]]
                    - self.entities[corrupted[:, 2]]
                )
                pos_dist = np.linalg.norm(pos_diff, axis=1)
                neg_dist = np.linalg.norm(neg_diff, axis=1)
                violation = margin + pos_dist - neg_dist > 0
                epoch_loss += float(
                    np.maximum(margin + pos_dist - neg_dist, 0.0).sum()
                )
                if not violation.any():
                    continue
                vi = np.nonzero(violation)[0]
                # d||x||/dx = x / ||x||
                pos_grad = pos_diff[vi] / np.maximum(pos_dist[vi, None], 1e-12)
                neg_grad = neg_diff[vi] / np.maximum(neg_dist[vi, None], 1e-12)
                step = lr
                np.subtract.at(self.entities, batch[vi, 0], step * pos_grad)
                np.add.at(self.entities, batch[vi, 2], step * pos_grad)
                np.subtract.at(self.relations, batch[vi, 1], step * (pos_grad - neg_grad))
                np.add.at(self.entities, corrupted[vi, 0], step * neg_grad)
                np.subtract.at(self.entities, corrupted[vi, 2], step * neg_grad)
            history.append(epoch_loss / m)
        return history

    def drug_embeddings(self) -> np.ndarray:
        """The (num_drugs, dim) block used as original drug features."""
        return self.entities[: self.kg.num_drugs].copy()


def pretrained_drug_embeddings(
    dim: int = 400, epochs: int = 30, seed: int = 13
) -> np.ndarray:
    """Convenience wrapper: build the KG, train TransE, return drug rows.

    Mirrors the paper's use of DRKG TransE embeddings (dim 400).  Smaller
    dims/epochs are fine for tests.
    """
    kg = build_knowledge_graph(seed=seed)
    model = TransE(kg, dim=dim, seed=seed + 1)
    model.train(epochs=epochs)
    return model.drug_embeddings()
